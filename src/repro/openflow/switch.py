"""The OpenFlow switch (datapath).

Models an OVS-style software switch: a single flow table, a packet buffer
for table misses, reserved-port handling (FLOOD / CONTROLLER / IN_PORT), and
the controller protocol (PacketIn/PacketOut/FlowMod/FlowRemoved/stats/echo/
barrier). Per-packet datapath latency is a small constant (``forwarding
-delay``), matching a kernel fast path; the slow path's cost is dominated by
the control-channel round trip, which is modelled in
:class:`~repro.openflow.channel.ControlChannel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.metrics.perf import PERF
from repro.netsim.device import Device
from repro.netsim.packet import EthernetFrame
from repro.openflow.actions import OutputAction, apply_actions_multi
from repro.openflow.channel import ControlChannel
from repro.openflow.constants import (
    OFP_NO_BUFFER,
    OFPFC_ADD,
    OFPFC_DELETE,
    OFPFC_DELETE_STRICT,
    OFPFC_MODIFY,
    OFPP_ALL,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_IN_PORT,
    OFPR_ACTION,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import FieldDict, extract_fields
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Message,
    PacketIn,
    PacketOut,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Simulator

#: cache-miss sentinel (``None`` is a legitimate cached answer: a known drop)
_MISS: Any = object()

#: canonical microflow cache key: the packet's field dict as an items tuple
MicroflowKey = Tuple[Tuple[str, Any], ...]

#: microflow cache capacity; on overflow the cache is flushed wholesale,
#: OVS-style — simple, deterministic, and self-limiting
MICROFLOW_CACHE_CAPACITY = 4096


class OpenFlowSwitch(Device):
    """An OpenFlow 1.3-style datapath.

    Parameters
    ----------
    dpid:
        Datapath id (unique per switch).
    forwarding_delay_s:
        Fast-path per-packet latency (lookup + action execution).
    buffer_capacity:
        Max packets buffered awaiting controller decisions; overflow falls
        back to NO_BUFFER packet-ins carrying the full frame.
    microflow_surgical:
        ``True`` (default) revalidates the microflow cache surgically: a
        table mutation evicts only the cached packets the mutated rule
        could affect, keeping unrelated flows warm across churn. ``False``
        selects the pre-revalidation coarse path — any table mutation
        flushes the whole cache at the next packet — kept as the
        differential oracle for the surgical mode.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        dpid: int,
        channel: Optional[ControlChannel] = None,
        forwarding_delay_s: float = 5e-6,
        buffer_capacity: int = 1024,
        microflow_surgical: bool = True,
    ) -> None:
        super().__init__(sim, name)
        self.dpid = dpid
        self.channel = channel
        self.forwarding_delay_s = forwarding_delay_s
        self.buffer_capacity = buffer_capacity
        self.table = FlowTable(sim, name=f"{name}.table0", on_removed=self._flow_removed)
        self._buffer: Dict[int, Tuple[EthernetFrame, int]] = {}
        self._next_buffer_id = 1
        self._next_xid = 1
        #: diagnostics
        self.packet_ins = 0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.buffer_overflows = 0
        # ---- switch-side controller liveness (off unless enable_liveness()
        # is called: a disabled probe schedules nothing and draws nothing)
        self.controller_alive = True
        self.controller_outages_detected = 0
        self._liveness_interval_s: Optional[float] = None
        self._liveness_miss_limit = 3
        self._echo_outstanding = 0
        self._liveness_handle: Optional[Any] = None
        # ---- microflow cache: canonical packet field-tuple -> winning entry
        # (or None for a known drop). In surgical mode (the default) the
        # cache is revalidated per entry: the flow table reports every
        # install/remove through the ``on_entry_*`` hooks and only the
        # cached packets the mutated rule could match are evicted — an
        # install consults the src/dst groups its exact conditions select,
        # a removal evicts exactly the packets whose cached winner it was.
        # In coarse mode validity is keyed on the table's generation
        # counter instead, so *any* mutation — install, delete, idle/hard
        # expiry, clear — invalidates the whole cache at the next packet.
        # See docs/performance.md ("Revalidation").
        self.microflow_surgical = microflow_surgical
        self._microflow: Dict[MicroflowKey, Optional[FlowEntry]] = {}
        self._microflow_generation = -1
        self.microflow_hits = 0
        self.microflow_misses = 0
        #: surgical-eviction accounting (coarse generation flushes and
        #: capacity flushes count as flushes in either mode)
        self.mf_evictions = 0
        self.mf_flushes = 0
        # Secondary indices over the cache, maintained only in surgical
        # mode: cache keys grouped by the packet's exact ipv4_src/ipv4_dst
        # (mirroring the FlowTable's bucket keys, so a mutated rule's exact
        # conditions select the candidate group directly), plus the reverse
        # map from a winning entry to the keys it answers. Values are
        # insertion-ordered key->None dicts so eviction order is
        # deterministic.
        self._mf_by_src: Dict[Any, Dict[MicroflowKey, None]] = {}
        self._mf_by_dst: Dict[Any, Dict[MicroflowKey, None]] = {}
        self._mf_by_entry: Dict[FlowEntry, Dict[MicroflowKey, None]] = {}
        if microflow_surgical:
            self.table.on_entry_installed = self._mf_rule_installed
            self.table.on_entry_removed = self._mf_rule_removed

    # -------------------------------------------------------------- control

    def connect_controller(self, channel: ControlChannel, controller: Any) -> None:
        """Bind this switch to a controller through ``channel``."""
        self.channel = channel
        channel.bind(self, controller)

    def _alloc_xid(self) -> int:
        xid = self._next_xid
        self._next_xid += 1
        return xid

    # ------------------------------------------------------------- liveness

    def enable_liveness(self, interval_s: float = 1.0, miss_limit: int = 3) -> None:
        """Probe the controller with EchoRequests every ``interval_s``
        simulated seconds; after ``miss_limit`` unanswered probes the
        controller is considered down (``controller_alive`` False). Any
        message from the controller — echo reply or otherwise — proves
        liveness and resets the miss count.

        Off by default: an un-enabled switch schedules no probe events, so
        existing runs stay bit-identical."""
        if interval_s <= 0:
            raise ValueError("liveness interval must be positive")
        if miss_limit < 1:
            raise ValueError("miss limit must be >= 1")
        self._liveness_interval_s = interval_s
        self._liveness_miss_limit = miss_limit
        if self._liveness_handle is None:
            self._liveness_handle = self.sim.schedule(interval_s, self._liveness_tick)

    def _liveness_tick(self) -> None:
        assert self._liveness_interval_s is not None
        self._liveness_handle = self.sim.schedule(self._liveness_interval_s,
                                                  self._liveness_tick)
        if self._echo_outstanding >= self._liveness_miss_limit and self.controller_alive:
            self.controller_alive = False
            self.controller_outages_detected += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit(self.sim.now, "of", "controller-down",
                                    {"switch": self.name,
                                     "missed": self._echo_outstanding})
        if self.channel is not None:
            self._echo_outstanding += 1
            self.channel.to_controller(EchoRequest(payload=self.dpid,
                                                   xid=self._alloc_xid()))

    def _note_controller_liveness(self) -> None:
        """Any controller message resets the probe miss count."""
        self._echo_outstanding = 0
        if not self.controller_alive:
            self.controller_alive = True
            if self.sim.trace.enabled:
                self.sim.trace.emit(self.sim.now, "of", "controller-up",
                                    {"switch": self.name})

    # ------------------------------------------------------------ data path

    def on_frame(self, in_port: int, frame: EthernetFrame) -> None:
        fields = extract_fields(frame, in_port)
        # Microflow fast path: exact-packet memo of the table's answer.
        # ``extract_fields`` builds the dict in one deterministic key order
        # per packet shape, so the items tuple is a canonical cache key.
        # Surgical mode keeps the cache valid incrementally (table hooks
        # evict exactly the affected packets); coarse mode revalidates here
        # against the table's generation counter.
        if (not self.microflow_surgical
                and self._microflow_generation != self.table.generation):
            self._mf_flush()
            self._microflow_generation = self.table.generation
        key = tuple(fields.items())
        entry = self._microflow.get(key, _MISS)
        if entry is _MISS:
            self.microflow_misses += 1
            PERF.microflow_misses += 1
            entry = self.table.lookup(fields)
            if len(self._microflow) >= MICROFLOW_CACHE_CAPACITY:
                self._mf_flush()
            self._microflow[key] = entry
            if self.microflow_surgical:
                self._mf_by_src.setdefault(fields.get("ipv4_src"), {})[key] = None
                self._mf_by_dst.setdefault(fields.get("ipv4_dst"), {})[key] = None
                if entry is not None:
                    self._mf_by_entry.setdefault(entry, {})[key] = None
        else:
            self.microflow_hits += 1
            PERF.microflow_hits += 1
        if entry is None:
            # No table-miss entry installed: OF 1.3 default-drops.
            self.packets_dropped += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit(self.sim.now, "of", "drop-no-match",
                                    {"switch": self.name, "pkt": frame.describe()})
            return
        entry.touch(self.sim.now, frame.wire_bytes)
        self._execute(entry, frame, in_port, fields)

    # ------------------------------------------- microflow cache revalidation

    def _mf_flush(self) -> None:
        """Drop every cached microflow (capacity overflow, coarse mode)."""
        if self._microflow:
            self.mf_flushes += 1
            PERF.microflow_flushes += 1
        # The flush *is* this layer's revalidation action (capacity bound /
        # coarse differential oracle), not a generation-keyed shortcut.
        self._microflow.clear()  # repro: noqa[REP009]
        self._mf_by_src.clear()
        self._mf_by_dst.clear()
        self._mf_by_entry.clear()

    def _mf_rule_installed(self, entry: FlowEntry) -> None:
        """Table hook: a rule was added — evict the cached packets it matches.

        A new rule can only change the cached answer for a packet it
        matches (it may beat the cached winner, or turn a cached drop into
        a hit), and its exact src/dst conditions — the table's bucket key —
        select the candidate group directly. A rule exact in neither
        dimension (e.g. the table-miss entry) can match any packet, so the
        whole cache is flushed.
        """
        if not self._microflow:
            return
        src, dst = entry.bucket_key
        group: Optional[Dict[MicroflowKey, None]]
        if src is not None and dst is not None:
            by_src = self._mf_by_src.get(src)
            by_dst = self._mf_by_dst.get(dst)
            if by_src is None or by_dst is None:
                return
            group = by_src if len(by_src) <= len(by_dst) else by_dst
        elif src is not None:
            group = self._mf_by_src.get(src)
        elif dst is not None:
            group = self._mf_by_dst.get(dst)
        else:
            self._mf_flush()
            return
        if not group:
            return
        match = entry.match
        victims = [key for key in group if match.matches(dict(key))]
        for key in victims:
            self._mf_evict(key)

    def _mf_rule_removed(self, entry: FlowEntry) -> None:
        """Table hook: a rule was removed — evict the packets it answered.

        A removal can only invalidate cached answers whose winner *is* the
        removed entry: a cached drop stays a drop, and a different cached
        winner (higher priority, or earlier at the same priority) still
        wins without it.
        """
        keys = self._mf_by_entry.pop(entry, None)
        if not keys:
            return
        for key in list(keys):
            self._mf_evict(key)

    def _mf_evict(self, key: MicroflowKey) -> None:
        """Drop one cached microflow and unlink it from the indices."""
        entry = self._microflow.pop(key, _MISS)
        if entry is _MISS:
            return
        self.mf_evictions += 1
        PERF.microflow_evictions += 1
        fields = dict(key)
        src_group = self._mf_by_src.get(fields.get("ipv4_src"))
        if src_group is not None:
            src_group.pop(key, None)
            if not src_group:
                del self._mf_by_src[fields.get("ipv4_src")]
        dst_group = self._mf_by_dst.get(fields.get("ipv4_dst"))
        if dst_group is not None:
            dst_group.pop(key, None)
            if not dst_group:
                del self._mf_by_dst[fields.get("ipv4_dst")]
        if entry is not None:
            owned = self._mf_by_entry.get(entry)
            if owned is not None:
                owned.pop(key, None)
                if not owned:
                    del self._mf_by_entry[entry]

    def _execute(self, entry: FlowEntry, frame: EthernetFrame, in_port: int, fields: FieldDict) -> None:
        outputs = apply_actions_multi(frame, entry.actions)
        if not outputs:
            self.packets_dropped += 1  # empty action list == drop
            return
        for out_frame, port in outputs:
            self._output(out_frame, port, in_port, reason=OFPR_ACTION)

    def _output(self, frame: EthernetFrame, port: int, in_port: int, reason: int) -> None:
        if port == OFPP_CONTROLLER:
            self._send_packet_in(frame, in_port, reason)
            return
        if port in (OFPP_FLOOD, OFPP_ALL):
            for port_no in self.port_numbers:
                if port_no != in_port or port == OFPP_ALL:
                    self.sim.schedule(self.forwarding_delay_s, self.transmit, port_no, frame)
            self.packets_forwarded += 1
            return
        if port == OFPP_IN_PORT:
            port = in_port
        self.packets_forwarded += 1
        self.sim.schedule(self.forwarding_delay_s, self.transmit, port, frame)

    # ------------------------------------------------------------ packet-in

    def _send_packet_in(self, frame: EthernetFrame, in_port: int, reason: int) -> None:
        if self.channel is None:
            self.packets_dropped += 1
            return
        self.packet_ins += 1
        fields = extract_fields(frame, in_port)
        if len(self._buffer) < self.buffer_capacity:
            buffer_id = self._next_buffer_id
            self._next_buffer_id += 1
            self._buffer[buffer_id] = (frame, in_port)
            message = PacketIn(buffer_id=buffer_id, reason=reason, in_port=in_port,
                               frame=frame, fields=fields, xid=self._alloc_xid())
        else:
            self.buffer_overflows += 1
            message = PacketIn(buffer_id=OFP_NO_BUFFER, reason=reason, in_port=in_port,
                               frame=frame, fields=fields, xid=self._alloc_xid())
        if self.sim.trace.enabled:
            self.sim.trace.emit(self.sim.now, "of", "packet-in",
                                {"switch": self.name, "buffer": message.buffer_id,
                                 "pkt": frame.describe()})
        self.channel.to_controller(message)

    def buffered_frame(self, buffer_id: int) -> Optional[Tuple[EthernetFrame, int]]:
        return self._buffer.get(buffer_id)

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    # --------------------------------------------------- controller messages

    def on_controller_message(self, message: Message) -> None:
        self._note_controller_liveness()
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, FlowStatsRequest):
            reply = FlowStatsReply(stats=[s for s in self.table.stats()
                                          if message.match.covers(s["match"])],
                                   xid=message.xid)
            self.channel.to_controller(reply)  # type: ignore[union-attr]
        elif isinstance(message, EchoRequest):
            self.channel.to_controller(EchoReply(payload=message.payload, xid=message.xid))  # type: ignore[union-attr]
        elif isinstance(message, EchoReply):
            pass  # our own probe answered; liveness already noted above
        elif isinstance(message, BarrierRequest):
            self.channel.to_controller(BarrierReply(xid=message.xid))  # type: ignore[union-attr]
        else:  # pragma: no cover - unknown message types ignored like OVS
            self.sim.trace.emit(self.sim.now, "of", "unknown-message",
                                {"switch": self.name, "type": type(message).__name__})

    def _handle_flow_mod(self, message: FlowMod) -> None:
        if message.command in (OFPFC_DELETE, OFPFC_DELETE_STRICT):
            self.table.delete(message.match, strict=message.command == OFPFC_DELETE_STRICT,
                              priority=message.priority if message.command == OFPFC_DELETE_STRICT else None,
                              cookie=message.cookie or None)
            return
        if message.command not in (OFPFC_ADD, OFPFC_MODIFY):
            return
        entry = FlowEntry(
            match=message.match,
            priority=message.priority,
            actions=message.actions,
            idle_timeout=message.idle_timeout,
            hard_timeout=message.hard_timeout,
            cookie=message.cookie,
            flags=message.flags,
            now=self.sim.now,
        )
        self.table.install(entry)
        if self.sim.trace.enabled:
            self.sim.trace.emit(self.sim.now, "of", "flow-mod",
                                {"switch": self.name, "match": repr(message.match),
                                 "priority": message.priority})
        if message.buffer_id != OFP_NO_BUFFER:
            buffered = self._buffer.pop(message.buffer_id, None)
            if buffered is not None:
                frame, in_port = buffered
                # Spec: apply the new entry's actions to the buffered packet.
                fields = extract_fields(frame, in_port)
                entry.touch(self.sim.now, frame.wire_bytes)
                self._execute(entry, frame, in_port, fields)

    def _handle_packet_out(self, message: PacketOut) -> None:
        if message.buffer_id != OFP_NO_BUFFER:
            buffered = self._buffer.pop(message.buffer_id, None)
            if buffered is None:
                return  # stale buffer id (already released)
            frame, in_port = buffered
        else:
            if message.frame is None:
                return
            frame, in_port = message.frame, message.in_port
        for out_frame, port in apply_actions_multi(frame, message.actions):
            self._output(out_frame, port, in_port, reason=OFPR_ACTION)

    def _flow_removed(self, entry: FlowEntry, reason: int) -> None:
        if self.channel is None:
            return
        self.channel.to_controller(FlowRemoved(
            match=entry.match,
            priority=entry.priority,
            reason=reason,
            cookie=entry.cookie,
            duration=entry.duration,
            packet_count=entry.packet_count,
            byte_count=entry.byte_count,
            idle_timeout=entry.idle_timeout,
            xid=self._alloc_xid(),
        ))

    # ---------------------------------------------------------------- stats

    @property
    def microflow_packets(self) -> int:
        return self.microflow_hits + self.microflow_misses

    @property
    def microflow_hit_rate(self) -> float:
        """Fraction of datapath packets answered from the microflow cache."""
        packets = self.microflow_packets
        return self.microflow_hits / packets if packets else 0.0

    def stats(self) -> Dict[str, Any]:
        """Datapath diagnostics (counters only; flow stats live on the table)."""
        return {
            "packet_ins": self.packet_ins,
            "packets_forwarded": self.packets_forwarded,
            "packets_dropped": self.packets_dropped,
            "buffer_overflows": self.buffer_overflows,
            "microflow_hits": self.microflow_hits,
            "microflow_misses": self.microflow_misses,
            "microflow_hit_rate": self.microflow_hit_rate,
            "table_lookups": self.table.lookups,
            "table_hits": self.table.hits,
            "flows": len(self.table),
            "shadowed_rules": self.table.shadowed_count(),
            "microflow_entries": len(self._microflow),
            "microflow_surgical": self.microflow_surgical,
            "mf_evictions": self.mf_evictions,
            "mf_flushes": self.mf_flushes,
            "microflow_generation": self._microflow_generation,
            "table_generation": self.table.generation,
            "controller_alive": self.controller_alive,
            "controller_outages_detected": self.controller_outages_detected,
        }

    # -------------------------------------------------------------- helpers

    def install_table_miss(self) -> None:
        """Install the standard priority-0 send-to-controller entry."""
        from repro.openflow.match import Match

        entry = FlowEntry(match=Match(), priority=0,
                          actions=[OutputAction(OFPP_CONTROLLER)], now=self.sim.now)
        self.table.install(entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpenFlowSwitch {self.name} dpid={self.dpid} flows={len(self.table)}>"
