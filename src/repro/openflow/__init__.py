"""OpenFlow 1.3-style SDN substrate.

Implements the subset of OpenFlow the transparent-edge controller uses, with
faithful semantics:

* priority flow tables with (optionally masked) matches, idle/hard timeouts,
  per-entry packet/byte counters, and ``FlowRemoved`` notifications;
* set-field rewrite actions (the mechanism behind transparent redirection),
  output/flood/controller actions;
* packet buffering at the switch with ``buffer_id`` handoff to the
  controller (``PacketIn`` / ``PacketOut`` / ``FlowMod`` with buffer);
* a control channel with configurable latency — the first-packet overhead
  measured in experiment A2 is exactly two traversals of this channel plus
  controller processing.
"""

from repro.openflow.actions import Action, OutputAction, SetFieldAction, apply_actions
from repro.openflow.channel import ControlChannel, ControllerEndpoint
from repro.openflow.constants import (
    OFP_NO_BUFFER,
    OFPFF_SEND_FLOW_REM,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_IN_PORT,
    OFPR_ACTION,
    OFPR_NO_MATCH,
    OFPRR_DELETE,
    OFPRR_HARD_TIMEOUT,
    OFPRR_IDLE_TIMEOUT,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match, extract_fields
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Message,
    PacketIn,
    PacketOut,
)
from repro.openflow.switch import OpenFlowSwitch

__all__ = [
    "OFPP_CONTROLLER",
    "OFPP_FLOOD",
    "OFPP_IN_PORT",
    "OFP_NO_BUFFER",
    "OFPR_NO_MATCH",
    "OFPR_ACTION",
    "OFPRR_IDLE_TIMEOUT",
    "OFPRR_HARD_TIMEOUT",
    "OFPRR_DELETE",
    "OFPFF_SEND_FLOW_REM",
    "Match",
    "extract_fields",
    "Action",
    "OutputAction",
    "SetFieldAction",
    "apply_actions",
    "FlowEntry",
    "FlowTable",
    "Message",
    "PacketIn",
    "PacketOut",
    "FlowMod",
    "FlowRemoved",
    "FlowStatsRequest",
    "FlowStatsReply",
    "EchoRequest",
    "EchoReply",
    "BarrierRequest",
    "BarrierReply",
    "OpenFlowSwitch",
    "ControlChannel",
    "ControllerEndpoint",
]
