"""The control channel between a switch and its controller.

A :class:`ControlChannel` models the TCP session a real OpenFlow switch keeps
to its controller as a FIFO pipe with fixed one-way latency (and optional
bandwidth). Experiment A2's "first-packet overhead" is two traversals of
this channel plus controller processing time, so its latency is a first-class
experiment parameter.

Outage accounting: :meth:`disconnect`/:meth:`reconnect` sever and restore the
pipe. Messages sent while down — and messages that were in flight when the
cut happened — are dropped, but never silently: they are counted per
direction (``drops_up``/``drops_down``) and every outage window is recorded
(``outages``, ``down_since``, ``total_outage_s``), so liveness detectors and
failure reports can see exactly what an outage cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Protocol, runtime_checkable

from repro.openflow.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.switch import OpenFlowSwitch
    from repro.simcore import Simulator


@runtime_checkable
class ControllerEndpoint(Protocol):
    """What the channel needs from a controller implementation."""

    def on_switch_message(self, switch: "OpenFlowSwitch", message: Message) -> None: ...


class ControlChannel:
    """FIFO, latency-delayed, bidirectional control pipe.

    Parameters
    ----------
    latency_s:
        One-way latency. The paper's controller runs on the same edge
        gateway server as OVS, so the canonical topology uses ~0.2 ms.
    bandwidth_bps:
        Optional serialization rate for control messages (None = infinite).
    """

    def __init__(
        self,
        sim: "Simulator",
        latency_s: float = 0.0002,
        bandwidth_bps: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.switch: Optional["OpenFlowSwitch"] = None
        self.controller: Optional[ControllerEndpoint] = None
        self.connected = True
        self._busy_until_up = 0.0
        self._busy_until_down = 0.0
        #: diagnostics
        self.messages_up = 0  # switch -> controller
        self.messages_down = 0  # controller -> switch
        self.messages_lost = 0  # injected control-message losses
        #: messages dropped because the channel was down — sends while
        #: severed plus deliveries whose flight straddled the cut
        self.drops_up = 0  # switch -> controller
        self.drops_down = 0  # controller -> switch
        #: outage bookkeeping (None while the channel is up)
        self.down_since: Optional[float] = None
        self.outages = 0
        self.total_outage_s = 0.0
        self.last_outage_s = 0.0

    def bind(self, switch: "OpenFlowSwitch", controller: ControllerEndpoint) -> None:
        self.switch = switch
        self.controller = controller

    def _delay(self, message: Message, busy_attr: str) -> float:
        start = max(self.sim.now, getattr(self, busy_attr))
        tx = 0.0
        if self.bandwidth_bps is not None:
            tx = message.wire_bytes * 8.0 / self.bandwidth_bps
        setattr(self, busy_attr, start + tx)
        return (start + tx - self.sim.now) + self.latency_s

    def _fault_delay(self) -> Optional[float]:
        """Extra control-message delay from fault injection, or ``None``
        when the message is injected-lost. 0.0 in fault-free runs."""
        if self.sim.faults.roll("channel.loss"):
            self.messages_lost += 1
            return None
        return self.sim.faults.stall("channel.delay")

    def to_controller(self, message: Message) -> None:
        """Deliver ``message`` from the switch to the controller."""
        if not self.connected:
            self.drops_up += 1
            return
        if self.controller is None:
            return
        spike = self._fault_delay()
        if spike is None:
            return  # injected loss: the message vanishes in flight
        self.messages_up += 1
        delay = self._delay(message, "_busy_until_up") + spike
        self.sim.schedule(delay, self._deliver_up, message)

    def _deliver_up(self, message: Message) -> None:
        if not self.connected:
            self.drops_up += 1  # was in flight when the channel went down
            return
        if self.controller is not None and self.switch is not None:
            self.controller.on_switch_message(self.switch, message)

    def to_switch(self, message: Message) -> None:
        """Deliver ``message`` from the controller to the switch."""
        if not self.connected:
            self.drops_down += 1
            return
        if self.switch is None:
            return
        spike = self._fault_delay()
        if spike is None:
            return  # injected loss
        self.messages_down += 1
        delay = self._delay(message, "_busy_until_down") + spike
        self.sim.schedule(delay, self._deliver_down, message)

    def _deliver_down(self, message: Message) -> None:
        if not self.connected:
            self.drops_down += 1  # was in flight when the channel went down
            return
        if self.switch is not None:
            self.switch.on_controller_message(message)

    def disconnect(self) -> None:
        """Sever the channel (failure injection: packets in flight are lost).

        Idempotent — a second ``disconnect`` inside an open window does not
        start a new outage record."""
        if not self.connected:
            return
        self.connected = False
        self.outages += 1
        self.down_since = self.sim.now

    def reconnect(self) -> None:
        """Restore the channel; closes the current outage record."""
        if self.connected:
            return
        self.connected = True
        if self.down_since is not None:
            self.last_outage_s = self.sim.now - self.down_since
            self.total_outage_s += self.last_outage_s
        self.down_since = None

    def stats(self) -> Dict[str, Any]:
        """Channel diagnostics, including outage windows and drop counts."""
        return {
            "connected": self.connected,
            "messages_up": self.messages_up,
            "messages_down": self.messages_down,
            "messages_lost": self.messages_lost,
            "drops_up": self.drops_up,
            "drops_down": self.drops_down,
            "outages": self.outages,
            "total_outage_s": self.total_outage_s,
            "last_outage_s": self.last_outage_s,
            "down_since": self.down_since,
        }
