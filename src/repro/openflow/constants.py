"""OpenFlow protocol constants (OF 1.3 values where they exist)."""

# Reserved output "ports"
OFPP_IN_PORT = 0xFFFFFFF8
OFPP_FLOOD = 0xFFFFFFFB
OFPP_ALL = 0xFFFFFFFC
OFPP_CONTROLLER = 0xFFFFFFFD
OFPP_ANY = 0xFFFFFFFF

#: PacketIn without switch-side buffering (full frame travels to controller)
OFP_NO_BUFFER = 0xFFFFFFFF

# PacketIn reasons
OFPR_NO_MATCH = 0  # table miss
OFPR_ACTION = 1  # explicit output:CONTROLLER action

# FlowRemoved reasons
OFPRR_IDLE_TIMEOUT = 0
OFPRR_HARD_TIMEOUT = 1
OFPRR_DELETE = 2

# FlowMod flags
OFPFF_SEND_FLOW_REM = 1 << 0

# FlowMod commands
OFPFC_ADD = 0
OFPFC_MODIFY = 1
OFPFC_DELETE = 3
OFPFC_DELETE_STRICT = 4

#: Default controller max_len: bytes of the frame included in a PacketIn when
#: the packet is buffered on the switch.
OFP_DEFAULT_MISS_SEND_LEN = 128

#: All match field names the switch can extract / rewrite.
FIELDS = (
    "in_port",
    "eth_src",
    "eth_dst",
    "eth_type",
    "ip_proto",
    "ipv4_src",
    "ipv4_dst",
    "tcp_src",
    "tcp_dst",
    "udp_src",
    "udp_dst",
    "arp_op",
    "arp_spa",
    "arp_tpa",
)

#: Fields a SetFieldAction may rewrite.
REWRITABLE_FIELDS = frozenset(
    {"eth_src", "eth_dst", "ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst", "udp_src", "udp_dst"}
)
