"""OpenFlow match structures and packet-field extraction.

A :class:`Match` is a set of ``field == value`` (or masked ``field & mask ==
value & mask``) conditions over the flat field dictionary produced by
:func:`extract_fields`. An empty match is the wildcard (matches everything),
as in OpenFlow.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.netsim.addresses import MAC, IPv4
from repro.netsim.packet import IP_PROTO_TCP, IP_PROTO_UDP, EthernetFrame, TCPSegment, UDPDatagram
from repro.openflow.constants import FIELDS

FieldDict = Dict[str, Any]


def extract_fields(frame: EthernetFrame, in_port: int) -> FieldDict:
    """Flatten a frame into the OpenFlow match-field dictionary.

    Only fields present in the packet appear as keys (e.g. no ``tcp_src``
    for an ARP), mirroring OXM prerequisite semantics: a match on an absent
    field never matches.
    """
    fields: FieldDict = {
        "in_port": in_port,
        "eth_src": frame.src,
        "eth_dst": frame.dst,
        "eth_type": frame.ethertype,
    }
    arp = frame.arp
    if arp is not None:
        fields["arp_op"] = int(arp.op)
        fields["arp_spa"] = arp.sender_ip
        fields["arp_tpa"] = arp.target_ip
        return fields
    ipv4 = frame.ipv4
    if ipv4 is not None:
        fields["ipv4_src"] = ipv4.src
        fields["ipv4_dst"] = ipv4.dst
        fields["ip_proto"] = ipv4.proto
        if ipv4.proto == IP_PROTO_TCP:
            seg: TCPSegment = ipv4.payload  # type: ignore[assignment]
            fields["tcp_src"] = seg.src_port
            fields["tcp_dst"] = seg.dst_port
        elif ipv4.proto == IP_PROTO_UDP:
            dg: UDPDatagram = ipv4.payload  # type: ignore[assignment]
            fields["udp_src"] = dg.src_port
            fields["udp_dst"] = dg.dst_port
    return fields


def _canonical(value: Any) -> Any:
    """Normalise match values so '10.0.0.1' == IPv4('10.0.0.1') etc."""
    if isinstance(value, str):
        if value.count(".") == 3:
            return IPv4(value)
        if ":" in value:
            return MAC(value)
    return value


class Match:
    """An immutable set of match conditions.

    Construct Ryu-style with keyword arguments::

        Match(eth_type=0x0800, ipv4_dst="1.2.3.4", tcp_dst=80)
        Match(ipv4_src=("10.0.0.0", 24))   # masked: (network, prefix_len)
    """

    __slots__ = ("_exact", "_masked", "_hash")

    def __init__(self, **conditions: Any) -> None:
        exact: Dict[str, Any] = {}
        masked: Dict[str, Tuple[IPv4, int]] = {}
        for field, value in conditions.items():
            if field not in FIELDS:
                raise ValueError(f"unknown match field {field!r}")
            if isinstance(value, tuple):
                if field not in ("ipv4_src", "ipv4_dst", "arp_spa", "arp_tpa"):
                    raise ValueError(f"masked match unsupported for {field!r}")
                network, prefix_len = value
                masked[field] = (IPv4(network) if not isinstance(network, IPv4) else network,
                                 int(prefix_len))
            else:
                exact[field] = _canonical(value)
        self._exact = exact
        self._masked = masked
        self._hash = hash((tuple(sorted(exact.items(), key=lambda kv: kv[0])),
                           tuple(sorted(((k, v[0], v[1]) for k, v in masked.items()),
                                        key=lambda kv: kv[0]))))

    # ------------------------------------------------------------ predicates

    def exact_value(self, field: str) -> Optional[Any]:
        """The exact (unmasked) condition on ``field``, or None.

        Used by the flow table's fast-reject prefilter: comparing one or two
        cached exact values eliminates most entries without running the full
        :meth:`matches` loop (profiled hot path — see DESIGN.md §7).
        """
        return self._exact.get(field)

    def matches(self, fields: FieldDict) -> bool:
        """True when every condition holds for the packet's ``fields``."""
        for field, expected in self._exact.items():
            actual = fields.get(field)
            if actual is None or actual != expected:
                return False
        for field, (network, prefix_len) in self._masked.items():
            actual = fields.get(field)
            if actual is None or not actual.in_subnet(network, prefix_len):
                return False
        return True

    def covers(self, other: "Match") -> bool:
        """True when every packet matching ``other`` also matches ``self``
        (used for OFPFC_DELETE non-strict semantics, conservatively)."""
        for field, expected in self._exact.items():
            if other._exact.get(field) != expected:
                return False
        for field, (network, prefix_len) in self._masked.items():
            o_exact = other._exact.get(field)
            if o_exact is not None:
                if not o_exact.in_subnet(network, prefix_len):
                    return False
                continue
            o_masked = other._masked.get(field)
            if o_masked is None:
                return False
            o_net, o_len = o_masked
            if o_len < prefix_len or not o_net.in_subnet(network, prefix_len):
                return False
        return True

    # ---------------------------------------------------------------- dunder

    @property
    def conditions(self) -> Dict[str, Any]:
        out: Dict[str, Any] = dict(self._exact)
        out.update({k: v for k, v in self._masked.items()})
        return out

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(self.conditions.items())

    def __len__(self) -> int:
        return len(self._exact) + len(self._masked)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Match)
                and self._exact == other._exact
                and self._masked == other._masked)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = [f"{k}={v}" for k, v in self._exact.items()]
        parts += [f"{k}={net}/{plen}" for k, (net, plen) in self._masked.items()]
        return f"Match({', '.join(parts)})" if parts else "Match(*)"
