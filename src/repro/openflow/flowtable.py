"""Flow table with priorities, timeouts, counters, and indexed lookup.

Lookup semantics follow OpenFlow: highest priority wins; among equal
priorities the result is unspecified in the spec — here it is
insertion order, deterministically. Idle timeouts are refreshed by every
matched packet; expiry is implemented with lazily re-armed timers so that a
busy flow costs O(1) per packet (no timer churn).

The table keeps two views of the same rule set:

* ``_entries`` — the list sorted by ``(-priority, seq)``. It is the ground
  truth for iteration order (``entries``, ``stats()``, non-strict delete)
  and the reference the differential tests compare against
  (:meth:`FlowTable.lookup_linear`).
* the **lookup index** — per-priority hash buckets keyed on each entry's
  cached exact ``(ipv4_src, ipv4_dst)`` values, a ``(match, priority)``
  exact-match index for install-overlap/strict-delete, and a per-match
  index for strict deletes without a priority. All three are maintained
  incrementally on install/remove/clear, so :meth:`lookup`,
  :meth:`install`, and strict :meth:`delete` never scan the table.

A packet can only match an entry whose exact src/dst conditions equal the
packet's (or are wildcarded), so the candidate buckets for a lookup are the
four ``(src|None, dst|None)`` combinations; within a priority the winner is
the minimum-``seq`` match across those buckets — byte-identical to the
linear scan's first-match-in-sorted-order answer.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.perf import PERF
from repro.openflow.constants import OFPFF_SEND_FLOW_REM, OFPRR_DELETE, OFPRR_HARD_TIMEOUT, OFPRR_IDLE_TIMEOUT
from repro.openflow.match import FieldDict, Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.actions import Action
    from repro.simcore import Simulator

#: bucket key: the entry's cached exact (ipv4_src, ipv4_dst), None = wildcard
BucketKey = Tuple[Optional[Any], Optional[Any]]


class FlowEntry:
    """One installed flow rule."""

    __slots__ = (
        "match", "priority", "actions", "idle_timeout", "hard_timeout",
        "cookie", "flags", "installed_at", "last_used", "packet_count",
        "byte_count", "_idle_timer", "_hard_timer", "removed",
        "_fast_dst", "_fast_src", "seq", "_sim",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions: List["Action"],
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        flags: int = 0,
        now: float = 0.0,
    ) -> None:
        self.match = match
        # Cached exact conditions, the bucket key of the lookup index (and
        # the fast-reject prefilter of the reference linear scan).
        self._fast_dst = match.exact_value("ipv4_dst")
        self._fast_src = match.exact_value("ipv4_src")
        self.priority = priority
        self.actions = list(actions)
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.flags = flags
        self.installed_at = now
        self.last_used = now
        self.packet_count = 0
        self.byte_count = 0
        self._idle_timer: Optional[Any] = None
        self._hard_timer: Optional[Any] = None
        self.removed = False
        #: insertion sequence within the owning table; assigned by
        #: :meth:`FlowTable.install` and the tiebreaker among equal
        #: priorities (stored on the entry itself — never keyed by ``id()``,
        #: which can be reused after garbage collection).
        self.seq = 0
        self._sim: Optional["Simulator"] = None

    @property
    def duration(self) -> float:
        """OpenFlow duration: seconds since installation (``now -
        installed_at``), matching ``FlowTable.stats()`` and the switch's
        ``FlowRemoved`` messages — *not* the last-used timestamp."""
        if self._sim is not None:
            return self._sim.now - self.installed_at
        return 0.0

    @property
    def bucket_key(self) -> BucketKey:
        return (self._fast_src, self._fast_dst)

    def touch(self, now: float, nbytes: int) -> None:
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_used = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowEntry prio={self.priority} {self.match!r} "
                f"pkts={self.packet_count} idle={self.idle_timeout}>")


def _sort_key(entry: FlowEntry) -> Tuple[int, int]:
    return (-entry.priority, entry.seq)


class FlowTable:
    """A single OpenFlow table (table 0).

    ``on_removed(entry, reason)`` is invoked for entries that carried
    ``OFPFF_SEND_FLOW_REM`` — the switch turns this into a ``FlowRemoved``
    message to the controller.
    """

    def __init__(self, sim: "Simulator", name: str = "table0",
                 on_removed: Optional[Callable[[FlowEntry, int], None]] = None) -> None:
        self.sim = sim
        self.name = name
        self.on_removed = on_removed
        # Kept sorted by (-priority, entry.seq) for deterministic iteration.
        self._entries: List[FlowEntry] = []
        self._insert_seq = 0
        # ---- lookup index (maintained incrementally; see module docstring)
        #: priority -> (src, dst) bucket -> entries in ascending-seq order
        self._buckets: Dict[int, Dict[BucketKey, List[FlowEntry]]] = {}
        #: distinct priorities, descending (lookup walk order)
        self._priorities: List[int] = []
        self._prio_counts: Dict[int, int] = {}
        #: (match, priority) -> entry; unique by install-replacement
        self._match_index: Dict[Tuple[Match, int], FlowEntry] = {}
        #: match -> entries (any priority), for strict delete w/o priority
        self._by_match: Dict[Match, List[FlowEntry]] = {}
        #: bumped on every mutation; microflow caches key their validity on it
        self.generation = 0
        #: mutation observers (set by the owning switch): invoked after an
        #: entry joins/leaves the index, so a microflow cache can evict only
        #: the cached flows the mutated rule could affect instead of flushing
        #: wholesale on the generation bump. Replacement installs fire
        #: ``on_entry_removed`` for the displaced entry, then
        #: ``on_entry_installed`` for its successor.
        self.on_entry_installed: Optional[Callable[[FlowEntry], None]] = None
        self.on_entry_removed: Optional[Callable[[FlowEntry], None]] = None
        #: cumulative diagnostics
        self.lookups = 0
        self.hits = 0

    # -------------------------------------------------------------- install

    def install(self, entry: FlowEntry) -> None:
        """Add ``entry``; an existing entry with identical match+priority is
        replaced (OFPFC_ADD overlap semantics with reset counters)."""
        existing = self._match_index.get((entry.match, entry.priority))
        if existing is not None:
            self._remove_entry(existing, OFPRR_DELETE, notify=False)
        self._insert_seq += 1
        entry.seq = self._insert_seq
        entry.removed = False  # a reinstalled entry is live again
        entry._sim = self.sim
        # The seq lives on the entry itself (not an id()-keyed side table,
        # which a GC'd-and-reallocated entry could silently corrupt), so the
        # sort key is intrinsic and insertion is a plain bisect.
        bisect.insort(self._entries, entry, key=_sort_key)
        self._index_add(entry)
        self.generation += 1
        if self.on_entry_installed is not None:
            self.on_entry_installed(entry)
        entry.installed_at = self.sim.now
        entry.last_used = self.sim.now
        if entry.hard_timeout > 0:
            entry._hard_timer = self.sim.schedule(entry.hard_timeout, self._hard_expire, entry)
        if entry.idle_timeout > 0:
            entry._idle_timer = self.sim.schedule(entry.idle_timeout, self._idle_check, entry)

    def _index_add(self, entry: FlowEntry) -> None:
        priority = entry.priority
        count = self._prio_counts.get(priority, 0)
        if count == 0:
            # keep the walk list descending: bisect on the negated priority
            bisect.insort(self._priorities, priority, key=lambda p: -p)
            self._buckets[priority] = {}
        self._prio_counts[priority] = count + 1
        # seq is strictly increasing, so append preserves ascending-seq order
        self._buckets[priority].setdefault(entry.bucket_key, []).append(entry)
        self._match_index[(entry.match, priority)] = entry
        self._by_match.setdefault(entry.match, []).append(entry)

    def _index_remove(self, entry: FlowEntry) -> None:
        priority = entry.priority
        bucket = self._buckets[priority][entry.bucket_key]
        bucket.remove(entry)
        if not bucket:
            del self._buckets[priority][entry.bucket_key]
        count = self._prio_counts[priority] - 1
        if count == 0:
            del self._prio_counts[priority]
            del self._buckets[priority]
            self._priorities.remove(priority)
        else:
            self._prio_counts[priority] = count
        del self._match_index[(entry.match, priority)]
        peers = self._by_match[entry.match]
        peers.remove(entry)
        if not peers:
            del self._by_match[entry.match]

    # --------------------------------------------------------------- lookup

    def lookup(self, fields: FieldDict) -> Optional[FlowEntry]:
        """Return the highest-priority matching entry, touching nothing.

        Walks priorities in descending order; per priority only the (at
        most four) hash buckets whose exact src/dst conditions are
        compatible with the packet are consulted, and the minimum-seq match
        among them wins — exactly the linear scan's answer
        (:meth:`lookup_linear`, kept as the differential-test reference).
        """
        self.lookups += 1
        PERF.flow_lookups += 1
        pkt_src = fields.get("ipv4_src")
        pkt_dst = fields.get("ipv4_dst")
        keys: Tuple[BucketKey, ...]
        if pkt_src is None:
            if pkt_dst is None:
                keys = ((None, None),)
            else:
                keys = ((None, pkt_dst), (None, None))
        elif pkt_dst is None:
            keys = ((pkt_src, None), (None, None))
        else:
            keys = ((pkt_src, pkt_dst), (pkt_src, None), (None, pkt_dst), (None, None))
        for priority in self._priorities:
            buckets = self._buckets[priority]
            best: Optional[FlowEntry] = None
            best_seq = self._insert_seq + 1
            for key in keys:
                candidates = buckets.get(key)
                if candidates is None:
                    continue
                for entry in candidates:
                    if entry.seq >= best_seq:
                        break  # ascending seq: cannot beat the current best
                    if entry.match.matches(fields):
                        best = entry
                        best_seq = entry.seq
                        break
            if best is not None:
                self.hits += 1
                PERF.flow_hits += 1
                return best
        return None

    def lookup_linear(self, fields: FieldDict) -> Optional[FlowEntry]:
        """Reference linear scan (pre-index semantics), counter-free.

        Kept as the oracle for the randomized differential tests and as the
        baseline the packet-path microbenchmark compares against; not used
        on any hot path.
        """
        pkt_dst = fields.get("ipv4_dst")
        pkt_src = fields.get("ipv4_src")
        for entry in self._entries:
            fast_dst = entry._fast_dst
            if fast_dst is not None and fast_dst != pkt_dst:
                continue
            fast_src = entry._fast_src
            if fast_src is not None and fast_src != pkt_src:
                continue
            if entry.match.matches(fields):
                return entry
        return None

    def match_packet(self, fields: FieldDict, nbytes: int) -> Optional[FlowEntry]:
        """Lookup + counter/idle-refresh side effects for a forwarded packet."""
        entry = self.lookup(fields)
        if entry is not None:
            entry.touch(self.sim.now, nbytes)
        return entry

    # -------------------------------------------------------------- timeouts

    def _idle_check(self, entry: FlowEntry) -> None:
        if entry.removed:
            return
        deadline = entry.last_used + entry.idle_timeout
        if self.sim.now >= deadline - 1e-12:
            self._remove_entry(entry, OFPRR_IDLE_TIMEOUT)
        else:
            # Re-arm for the remaining time (lazy refresh).
            entry._idle_timer = self.sim.schedule(max(0.0, deadline - self.sim.now), self._idle_check, entry)

    def _hard_expire(self, entry: FlowEntry) -> None:
        if not entry.removed:
            self._remove_entry(entry, OFPRR_HARD_TIMEOUT)

    # --------------------------------------------------------------- delete

    def delete(self, match: Match, strict: bool = False,
               priority: Optional[int] = None, cookie: Optional[int] = None) -> int:
        """OFPFC_DELETE(_STRICT): remove matching entries, return count."""
        victims: List[FlowEntry]
        if strict:
            if priority is not None:
                found = self._match_index.get((match, priority))
                victims = [found] if found is not None else []
            else:
                # all priorities with this exact match, in table order
                victims = sorted(self._by_match.get(match, ()), key=_sort_key)
            if cookie is not None:
                victims = [entry for entry in victims if entry.cookie == cookie]
        else:
            victims = []
            for entry in self._entries:
                if cookie is not None and entry.cookie != cookie:
                    continue
                if match.covers(entry.match):
                    victims.append(entry)
        for entry in victims:
            self._remove_entry(entry, OFPRR_DELETE)
        return len(victims)

    def _remove_entry(self, entry: FlowEntry, reason: int, notify: bool = True) -> None:
        entry.removed = True
        if entry._idle_timer is not None:
            entry._idle_timer.cancel()
        if entry._hard_timer is not None:
            entry._hard_timer.cancel()
        # Sort keys are intrinsic and unique, so the entry's slot is found
        # by bisect instead of a linear scan.
        index = bisect.bisect_left(self._entries, _sort_key(entry), key=_sort_key)
        if index < len(self._entries) and self._entries[index] is entry:
            del self._entries[index]
            self._index_remove(entry)
            self.generation += 1
            if self.on_entry_removed is not None:
                self.on_entry_removed(entry)
        if notify and self.on_removed is not None and (entry.flags & OFPFF_SEND_FLOW_REM):
            self.on_removed(entry, reason)

    def clear(self) -> None:
        for entry in list(self._entries):
            self._remove_entry(entry, OFPRR_DELETE, notify=False)

    # ---------------------------------------------------------------- stats

    def shadowed_entries(self) -> List[FlowEntry]:
        """Entries that can never match: fully covered by an earlier rule.

        "Earlier" is lookup order — higher priority, or same priority and
        lower seq. Uses the same four-bucket pruning as :meth:`lookup`
        (a covering rule's exact src/dst is either equal to the covered
        rule's or unconstrained), so the scan stays near-linear on the
        service tables this runs against. The verifier's V5 invariant
        (repro.verify.invariants.shadowing_violations) applies the same
        algorithm to a frozen snapshot; this live variant feeds
        ``OpenFlowSwitch.stats()``.
        """
        buckets: Dict[BucketKey, List[FlowEntry]] = {}
        for entry in self._entries:
            key = (entry.match.exact_value("ipv4_src"),
                   entry.match.exact_value("ipv4_dst"))
            buckets.setdefault(key, []).append(entry)
        shadowed: List[FlowEntry] = []
        for entry in self._entries:
            src = entry.match.exact_value("ipv4_src")
            dst = entry.match.exact_value("ipv4_dst")
            found = False
            for key in ((src, dst), (src, None), (None, dst), (None, None)):
                for candidate in buckets.get(key, ()):  # table order
                    if candidate is entry:
                        continue
                    earlier = (candidate.priority > entry.priority
                               or (candidate.priority == entry.priority
                                   and candidate.seq < entry.seq))
                    if earlier and candidate.match.covers(entry.match):
                        shadowed.append(entry)
                        found = True
                        break
                if found:
                    break
        return shadowed

    def shadowed_count(self) -> int:
        return len(self.shadowed_entries())

    @property
    def entries(self) -> List[FlowEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> List[dict]:
        """Flow-stats snapshot (what a FlowStatsReply carries)."""
        return [
            {
                "match": entry.match,
                "priority": entry.priority,
                "cookie": entry.cookie,
                "flags": entry.flags,
                "actions": list(entry.actions),
                "packet_count": entry.packet_count,
                "byte_count": entry.byte_count,
                "duration": entry.duration,
                "idle_timeout": entry.idle_timeout,
                "hard_timeout": entry.hard_timeout,
            }
            for entry in self._entries
        ]
