"""Flow table with priorities, timeouts, and counters.

Lookup semantics follow OpenFlow: highest priority wins; among equal
priorities the result is unspecified in the spec — here it is
insertion order, deterministically. Idle timeouts are refreshed by every
matched packet; expiry is implemented with lazily re-armed timers so that a
busy flow costs O(1) per packet (no timer churn).
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.openflow.constants import OFPFF_SEND_FLOW_REM, OFPRR_DELETE, OFPRR_HARD_TIMEOUT, OFPRR_IDLE_TIMEOUT
from repro.openflow.match import FieldDict, Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.actions import Action
    from repro.simcore import Simulator


class FlowEntry:
    """One installed flow rule."""

    __slots__ = (
        "match", "priority", "actions", "idle_timeout", "hard_timeout",
        "cookie", "flags", "installed_at", "last_used", "packet_count",
        "byte_count", "_idle_timer", "_hard_timer", "removed",
        "_fast_dst", "_fast_src", "seq", "_sim",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions: List["Action"],
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        flags: int = 0,
        now: float = 0.0,
    ) -> None:
        self.match = match
        # Cached exact conditions for the lookup fast path: comparing these
        # two values rejects almost every non-matching entry in O(1).
        self._fast_dst = match.exact_value("ipv4_dst")
        self._fast_src = match.exact_value("ipv4_src")
        self.priority = priority
        self.actions = list(actions)
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.flags = flags
        self.installed_at = now
        self.last_used = now
        self.packet_count = 0
        self.byte_count = 0
        self._idle_timer = None
        self._hard_timer = None
        self.removed = False
        #: insertion sequence within the owning table; assigned by
        #: :meth:`FlowTable.install` and the tiebreaker among equal
        #: priorities (stored on the entry itself — never keyed by ``id()``,
        #: which can be reused after garbage collection).
        self.seq = 0
        self._sim: Optional["Simulator"] = None

    @property
    def duration(self) -> float:
        """OpenFlow duration: seconds since installation (``now -
        installed_at``), matching ``FlowTable.stats()`` and the switch's
        ``FlowRemoved`` messages — *not* the last-used timestamp."""
        if self._sim is not None:
            return self._sim.now - self.installed_at
        return 0.0

    def touch(self, now: float, nbytes: int) -> None:
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_used = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowEntry prio={self.priority} {self.match!r} "
                f"pkts={self.packet_count} idle={self.idle_timeout}>")


class FlowTable:
    """A single OpenFlow table (table 0).

    ``on_removed(entry, reason)`` is invoked for entries that carried
    ``OFPFF_SEND_FLOW_REM`` — the switch turns this into a ``FlowRemoved``
    message to the controller.
    """

    def __init__(self, sim: "Simulator", name: str = "table0",
                 on_removed: Optional[Callable[[FlowEntry, int], None]] = None) -> None:
        self.sim = sim
        self.name = name
        self.on_removed = on_removed
        # Kept sorted by (-priority, entry.seq) for deterministic lookup.
        self._entries: List[FlowEntry] = []
        self._insert_seq = 0
        #: cumulative diagnostics
        self.lookups = 0
        self.hits = 0

    # -------------------------------------------------------------- install

    def install(self, entry: FlowEntry) -> None:
        """Add ``entry``; an existing entry with identical match+priority is
        replaced (OFPFC_ADD overlap semantics with reset counters)."""
        for existing in self._entries:
            if existing.priority == entry.priority and existing.match == entry.match:
                self._remove_entry(existing, OFPRR_DELETE, notify=False)
                break
        self._insert_seq += 1
        entry.seq = self._insert_seq
        entry._sim = self.sim
        # The seq lives on the entry itself (not an id()-keyed side table,
        # which a GC'd-and-reallocated entry could silently corrupt), so the
        # sort key is intrinsic and insertion is a plain bisect.
        bisect.insort(self._entries, entry,
                      key=lambda e: (-e.priority, e.seq))
        entry.installed_at = self.sim.now
        entry.last_used = self.sim.now
        if entry.hard_timeout > 0:
            entry._hard_timer = self.sim.schedule(entry.hard_timeout, self._hard_expire, entry)
        if entry.idle_timeout > 0:
            entry._idle_timer = self.sim.schedule(entry.idle_timeout, self._idle_check, entry)

    # --------------------------------------------------------------- lookup

    def lookup(self, fields: FieldDict) -> Optional[FlowEntry]:
        """Return the highest-priority matching entry, touching nothing.

        The loop prefilters on the cached exact ipv4_src/ipv4_dst values —
        profiling the trace replay showed the full ``Match.matches`` walk
        dominating simulation wall time; two identity-ish compares reject
        ~95 % of entries first.
        """
        self.lookups += 1
        pkt_dst = fields.get("ipv4_dst")
        pkt_src = fields.get("ipv4_src")
        for entry in self._entries:
            fast_dst = entry._fast_dst
            if fast_dst is not None and fast_dst != pkt_dst:
                continue
            fast_src = entry._fast_src
            if fast_src is not None and fast_src != pkt_src:
                continue
            if entry.match.matches(fields):
                self.hits += 1
                return entry
        return None

    def match_packet(self, fields: FieldDict, nbytes: int) -> Optional[FlowEntry]:
        """Lookup + counter/idle-refresh side effects for a forwarded packet."""
        entry = self.lookup(fields)
        if entry is not None:
            entry.touch(self.sim.now, nbytes)
        return entry

    # -------------------------------------------------------------- timeouts

    def _idle_check(self, entry: FlowEntry) -> None:
        if entry.removed:
            return
        deadline = entry.last_used + entry.idle_timeout
        if self.sim.now >= deadline - 1e-12:
            self._remove_entry(entry, OFPRR_IDLE_TIMEOUT)
        else:
            # Re-arm for the remaining time (lazy refresh).
            entry._idle_timer = self.sim.schedule(max(0.0, deadline - self.sim.now), self._idle_check, entry)

    def _hard_expire(self, entry: FlowEntry) -> None:
        if not entry.removed:
            self._remove_entry(entry, OFPRR_HARD_TIMEOUT)

    # --------------------------------------------------------------- delete

    def delete(self, match: Match, strict: bool = False,
               priority: Optional[int] = None, cookie: Optional[int] = None) -> int:
        """OFPFC_DELETE(_STRICT): remove matching entries, return count."""
        victims = []
        for entry in self._entries:
            if cookie is not None and entry.cookie != cookie:
                continue
            if strict:
                if entry.match == match and (priority is None or entry.priority == priority):
                    victims.append(entry)
            else:
                if match.covers(entry.match):
                    victims.append(entry)
        for entry in victims:
            self._remove_entry(entry, OFPRR_DELETE)
        return len(victims)

    def _remove_entry(self, entry: FlowEntry, reason: int, notify: bool = True) -> None:
        entry.removed = True
        if entry._idle_timer is not None:
            entry._idle_timer.cancel()
        if entry._hard_timer is not None:
            entry._hard_timer.cancel()
        try:
            self._entries.remove(entry)
        except ValueError:  # pragma: no cover - defensive
            pass
        if notify and self.on_removed is not None and (entry.flags & OFPFF_SEND_FLOW_REM):
            self.on_removed(entry, reason)

    def clear(self) -> None:
        for entry in list(self._entries):
            self._remove_entry(entry, OFPRR_DELETE, notify=False)

    # ---------------------------------------------------------------- stats

    @property
    def entries(self) -> List[FlowEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> List[dict]:
        """Flow-stats snapshot (what a FlowStatsReply carries)."""
        return [
            {
                "match": entry.match,
                "priority": entry.priority,
                "cookie": entry.cookie,
                "packet_count": entry.packet_count,
                "byte_count": entry.byte_count,
                "duration": entry.duration,
                "idle_timeout": entry.idle_timeout,
                "hard_timeout": entry.hard_timeout,
            }
            for entry in self._entries
        ]
