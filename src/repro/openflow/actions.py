"""OpenFlow actions: output and set-field (the rewrite primitive).

``apply_actions`` executes an action list against a frame, returning the
(possibly rewritten) frame and the list of output ports — the switch then
performs the actual transmissions. Set-field produces copies; frames are
never mutated in place.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Sequence, Tuple

from repro.netsim.addresses import MAC, IPv4
from repro.netsim.packet import EthernetFrame, TCPSegment, UDPDatagram
from repro.openflow.constants import REWRITABLE_FIELDS


class Action:
    """Marker base class."""

    __slots__ = ()


class OutputAction(Action):
    """Emit the frame (as rewritten so far) out of ``port`` — may be a real
    port number or one of the reserved OFPP_* ports."""

    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OutputAction) and self.port == other.port

    def __hash__(self) -> int:
        return hash(("out", self.port))

    def __repr__(self) -> str:
        return f"Output({self.port:#x})" if self.port > 0xFF else f"Output({self.port})"


class SetFieldAction(Action):
    """Rewrite one header field (``eth_src/dst``, ``ipv4_src/dst``,
    ``tcp_src/dst``, ``udp_src/dst``)."""

    __slots__ = ("field", "value")

    def __init__(self, field: str, value: Any) -> None:
        if field not in REWRITABLE_FIELDS:
            raise ValueError(f"field {field!r} is not rewritable")
        if field.startswith("ipv4") and not isinstance(value, IPv4):
            value = IPv4(value)
        if field.startswith("eth") and not isinstance(value, MAC):
            value = MAC(value)
        if field.startswith(("tcp", "udp")):
            value = int(value)
        self.field = field
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SetFieldAction)
                and self.field == other.field and self.value == other.value)

    def __hash__(self) -> int:
        return hash(("set", self.field, self.value))

    def __repr__(self) -> str:
        return f"SetField({self.field}={self.value})"


def _rewrite(frame: EthernetFrame, field: str, value: Any) -> EthernetFrame:
    if field == "eth_src":
        return dataclasses.replace(frame, src=value)
    if field == "eth_dst":
        return dataclasses.replace(frame, dst=value)

    packet = frame.ipv4
    if packet is None:
        # Set-field on a non-IP frame: no-op (matches OF behaviour where the
        # prerequisite fields are absent).
        return frame

    if field == "ipv4_src":
        return dataclasses.replace(frame, payload=dataclasses.replace(packet, src=value))
    if field == "ipv4_dst":
        return dataclasses.replace(frame, payload=dataclasses.replace(packet, dst=value))

    l4 = packet.payload
    if field in ("tcp_src", "tcp_dst") and isinstance(l4, TCPSegment):
        kwargs = {"src_port": value} if field == "tcp_src" else {"dst_port": value}
        new_l4 = dataclasses.replace(l4, **kwargs)
    elif field in ("udp_src", "udp_dst") and isinstance(l4, UDPDatagram):
        kwargs = {"src_port": value} if field == "udp_src" else {"dst_port": value}
        new_l4 = dataclasses.replace(l4, **kwargs)
    else:
        return frame
    return dataclasses.replace(frame, payload=dataclasses.replace(packet, payload=new_l4))


def apply_actions(
    frame: EthernetFrame, actions: Sequence[Action]
) -> Tuple[EthernetFrame, List[int]]:
    """Run an action list; return the final frame and output port list.

    OpenFlow apply-actions semantics: actions execute in order, so a
    set-field *after* an output does not affect that output. We return the
    frame state at each output; for simplicity all outputs receive the frame
    as rewritten up to that output action — achieved by snapshotting.
    """
    outputs: List[Tuple[EthernetFrame, int]] = []
    current = frame
    for action in actions:
        if isinstance(action, SetFieldAction):
            current = _rewrite(current, action.field, action.value)
        elif isinstance(action, OutputAction):
            outputs.append((current, action.port))
        else:  # pragma: no cover - future action types
            raise TypeError(f"unsupported action {action!r}")
    if not outputs:
        return current, []
    # The common case is a single output; return that frame and port list.
    # Multiple outputs with interleaved rewrites are handled by the switch
    # calling apply_actions_multi instead.
    return outputs[-1][0], [port for _, port in outputs]


def apply_actions_multi(
    frame: EthernetFrame, actions: Sequence[Action]
) -> List[Tuple[EthernetFrame, int]]:
    """Like :func:`apply_actions` but yields the exact (frame, port) pairs,
    preserving per-output rewrite state."""
    outputs: List[Tuple[EthernetFrame, int]] = []
    current = frame
    for action in actions:
        if isinstance(action, SetFieldAction):
            current = _rewrite(current, action.field, action.value)
        elif isinstance(action, OutputAction):
            outputs.append((current, action.port))
        else:  # pragma: no cover
            raise TypeError(f"unsupported action {action!r}")
    return outputs
