"""OpenFlow actions: output and set-field (the rewrite primitive).

``apply_actions`` executes an action list against a frame, returning the
(possibly rewritten) frame and the list of output ports — the switch then
performs the actual transmissions. Set-field produces copies; frames are
never mutated in place.

Contiguous set-field actions are **fused**: pending field writes accumulate
in a small dict and materialize as one multi-layer
:meth:`~repro.netsim.packet.EthernetFrame.rewrite_headers` copy at each
output boundary (apply-actions semantics: an output emits the frame as
rewritten *so far*). A 4-field NAT rewrite then allocates one object per
mutated layer instead of one full ``dataclasses.replace`` chain per field.
``apply_actions_multi_reference`` keeps the per-field replace chain verbatim
as the differential-testing oracle and the allocation benchmark baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.netsim.addresses import MAC, IPv4
from repro.netsim.packet import EthernetFrame, TCPSegment, UDPDatagram
from repro.openflow.constants import REWRITABLE_FIELDS


class Action:
    """Marker base class."""

    __slots__ = ()


class OutputAction(Action):
    """Emit the frame (as rewritten so far) out of ``port`` — may be a real
    port number or one of the reserved OFPP_* ports."""

    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OutputAction) and self.port == other.port

    def __hash__(self) -> int:
        return hash(("out", self.port))

    def __repr__(self) -> str:
        return f"Output({self.port:#x})" if self.port > 0xFF else f"Output({self.port})"


class SetFieldAction(Action):
    """Rewrite one header field (``eth_src/dst``, ``ipv4_src/dst``,
    ``tcp_src/dst``, ``udp_src/dst``)."""

    __slots__ = ("field", "value")

    def __init__(self, field: str, value: Any) -> None:
        if field not in REWRITABLE_FIELDS:
            raise ValueError(f"field {field!r} is not rewritable")
        if field.startswith("ipv4") and not isinstance(value, IPv4):
            value = IPv4(value)
        if field.startswith("eth") and not isinstance(value, MAC):
            value = MAC(value)
        if field.startswith(("tcp", "udp")):
            value = int(value)
        self.field = field
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SetFieldAction)
                and self.field == other.field and self.value == other.value)

    def __hash__(self) -> int:
        return hash(("set", self.field, self.value))

    def __repr__(self) -> str:
        return f"SetField({self.field}={self.value})"


def _rewrite(frame: EthernetFrame, field: str, value: Any) -> EthernetFrame:
    """Single-field rewrite through the lean per-layer copy helpers."""
    return _apply_fields(frame, {field: value})


def _apply_fields(frame: EthernetFrame, pending: Dict[str, Any]) -> EthernetFrame:
    """Materialize a batch of pending set-field writes as one fused rewrite.

    Per-field OpenFlow prerequisite semantics: IPv4/L4 fields are dropped
    individually when their layer is absent (``tcp_dst`` on a UDP packet is a
    no-op while ``eth_dst`` in the same batch still applies).
    """
    eth_src = pending.get("eth_src")
    eth_dst = pending.get("eth_dst")
    ipv4_src: Optional[IPv4] = None
    ipv4_dst: Optional[IPv4] = None
    l4_src: Optional[int] = None
    l4_dst: Optional[int] = None
    packet = frame.ipv4
    if packet is not None:
        ipv4_src = pending.get("ipv4_src")
        ipv4_dst = pending.get("ipv4_dst")
        l4 = packet.payload
        if isinstance(l4, TCPSegment):
            l4_src = pending.get("tcp_src")
            l4_dst = pending.get("tcp_dst")
        elif isinstance(l4, UDPDatagram):
            l4_src = pending.get("udp_src")
            l4_dst = pending.get("udp_dst")
    return frame.rewrite_headers(eth_src=eth_src, eth_dst=eth_dst,
                                 ipv4_src=ipv4_src, ipv4_dst=ipv4_dst,
                                 l4_src=l4_src, l4_dst=l4_dst)


def apply_actions(
    frame: EthernetFrame, actions: Sequence[Action]
) -> Tuple[EthernetFrame, List[int]]:
    """Run an action list; return the final frame and output port list.

    OpenFlow apply-actions semantics: actions execute in order, so a
    set-field *after* an output does not affect that output. We return the
    frame state at each output; for simplicity all outputs receive the frame
    as rewritten up to that output action — achieved by snapshotting.
    """
    outputs: List[Tuple[EthernetFrame, int]] = []
    current = frame
    pending: Dict[str, Any] = {}
    for action in actions:
        if isinstance(action, SetFieldAction):
            pending[action.field] = action.value
        elif isinstance(action, OutputAction):
            if pending:
                current = _apply_fields(current, pending)
                pending = {}
            outputs.append((current, action.port))
        else:  # pragma: no cover - future action types
            raise TypeError(f"unsupported action {action!r}")
    if not outputs:
        # No output: return the frame with every rewrite applied (matching
        # the sequential reference semantics).
        if pending:
            current = _apply_fields(current, pending)
        return current, []
    # The common case is a single output; return that frame and port list.
    # Multiple outputs with interleaved rewrites are handled by the switch
    # calling apply_actions_multi instead. Trailing set-fields after the
    # last output never reached an output and are discarded, exactly like
    # the reference implementation's return value.
    return outputs[-1][0], [port for _, port in outputs]


def apply_actions_multi(
    frame: EthernetFrame, actions: Sequence[Action]
) -> List[Tuple[EthernetFrame, int]]:
    """Like :func:`apply_actions` but yields the exact (frame, port) pairs,
    preserving per-output rewrite state."""
    outputs: List[Tuple[EthernetFrame, int]] = []
    current = frame
    pending: Dict[str, Any] = {}
    for action in actions:
        if isinstance(action, SetFieldAction):
            pending[action.field] = action.value
        elif isinstance(action, OutputAction):
            if pending:
                current = _apply_fields(current, pending)
                pending = {}
            outputs.append((current, action.port))
        else:  # pragma: no cover
            raise TypeError(f"unsupported action {action!r}")
    return outputs


# --------------------------------------------------------------------------
# Reference implementation (pre-fusing): one dataclasses.replace chain per
# set-field. Kept verbatim as the differential-testing oracle
# (tests/openflow/test_rewrite_fused.py) and the allocation benchmark
# baseline (repro.bench packet_rewrite).
# --------------------------------------------------------------------------


def _rewrite_reference(frame: EthernetFrame, field: str, value: Any) -> EthernetFrame:
    if field == "eth_src":
        return dataclasses.replace(frame, src=value)
    if field == "eth_dst":
        return dataclasses.replace(frame, dst=value)

    packet = frame.ipv4
    if packet is None:
        # Set-field on a non-IP frame: no-op (matches OF behaviour where the
        # prerequisite fields are absent).
        return frame

    if field == "ipv4_src":
        return dataclasses.replace(frame, payload=dataclasses.replace(packet, src=value))
    if field == "ipv4_dst":
        return dataclasses.replace(frame, payload=dataclasses.replace(packet, dst=value))

    l4 = packet.payload
    if field in ("tcp_src", "tcp_dst") and isinstance(l4, TCPSegment):
        kwargs = {"src_port": value} if field == "tcp_src" else {"dst_port": value}
        new_l4 = dataclasses.replace(l4, **kwargs)
    elif field in ("udp_src", "udp_dst") and isinstance(l4, UDPDatagram):
        kwargs = {"src_port": value} if field == "udp_src" else {"dst_port": value}
        new_l4 = dataclasses.replace(l4, **kwargs)
    else:
        return frame
    return dataclasses.replace(frame, payload=dataclasses.replace(packet, payload=new_l4))


def apply_actions_multi_reference(
    frame: EthernetFrame, actions: Sequence[Action]
) -> List[Tuple[EthernetFrame, int]]:
    """The pre-fusing ``apply_actions_multi``: sequential per-field rewrites."""
    outputs: List[Tuple[EthernetFrame, int]] = []
    current = frame
    for action in actions:
        if isinstance(action, SetFieldAction):
            current = _rewrite_reference(current, action.field, action.value)
        elif isinstance(action, OutputAction):
            outputs.append((current, action.port))
        else:  # pragma: no cover
            raise TypeError(f"unsupported action {action!r}")
    return outputs
