"""Controller ↔ switch protocol messages.

These are simulation-level message objects, not wire encodings; sizes are
attached so the control channel can model serialization if given a finite
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional

from repro.netsim.packet import EthernetFrame
from repro.openflow.constants import OFP_NO_BUFFER, OFPFC_ADD
from repro.openflow.match import FieldDict, Match

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.actions import Action


@dataclass
class Message:
    """Base class; ``xid`` pairs requests with replies."""

    xid: int = field(default=0, kw_only=True)

    @property
    def wire_bytes(self) -> int:
        return 64  # nominal control-message size


@dataclass
class PacketIn(Message):
    """Switch → controller: a packet needing a decision.

    When the switch buffered the packet, ``buffer_id`` identifies it and the
    controller may answer with a buffer-referencing FlowMod/PacketOut; with
    ``OFP_NO_BUFFER`` the full frame travels in the message.
    """

    buffer_id: int = OFP_NO_BUFFER
    reason: int = 0
    in_port: int = 0
    frame: Optional[EthernetFrame] = None
    fields: FieldDict = field(default_factory=dict)
    table_miss: bool = True

    @property
    def wire_bytes(self) -> int:
        if self.buffer_id != OFP_NO_BUFFER:
            return 64 + 128  # truncated packet copy (miss_send_len)
        return 64 + (self.frame.wire_bytes if self.frame is not None else 0)


@dataclass
class PacketOut(Message):
    """Controller → switch: release/emit a packet with given actions."""

    buffer_id: int = OFP_NO_BUFFER
    in_port: int = 0
    actions: List["Action"] = field(default_factory=list)
    frame: Optional[EthernetFrame] = None  # used when buffer_id == NO_BUFFER

    @property
    def wire_bytes(self) -> int:
        base = 64 + 8 * len(self.actions)
        if self.buffer_id == OFP_NO_BUFFER and self.frame is not None:
            base += self.frame.wire_bytes
        return base


@dataclass
class FlowMod(Message):
    """Controller → switch: install/modify/delete a flow entry."""

    match: Match = field(default_factory=Match)
    priority: int = 1
    actions: List["Action"] = field(default_factory=list)
    command: int = OFPFC_ADD
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0
    flags: int = 0
    buffer_id: int = OFP_NO_BUFFER

    @property
    def wire_bytes(self) -> int:
        return 96 + 8 * len(self.actions)


@dataclass
class FlowRemoved(Message):
    """Switch → controller: a SEND_FLOW_REM entry expired / was deleted."""

    match: Match = field(default_factory=Match)
    priority: int = 0
    reason: int = 0
    cookie: int = 0
    duration: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    idle_timeout: float = 0.0


@dataclass
class FlowStatsRequest(Message):
    match: Match = field(default_factory=Match)


@dataclass
class FlowStatsReply(Message):
    stats: List[dict] = field(default_factory=list)

    @property
    def wire_bytes(self) -> int:
        return 64 + 56 * len(self.stats)


@dataclass
class EchoRequest(Message):
    payload: Any = None


@dataclass
class EchoReply(Message):
    payload: Any = None


@dataclass
class BarrierRequest(Message):
    pass


@dataclass
class BarrierReply(Message):
    pass
