"""transparent-edge — Transparent Access to 5G Edge Computing Services.

A reproduction of the Transparent Edge system: SDN-based transparent
redirection of cloud-addressed requests to edge services, with distributed
on-demand deployment to Docker / Kubernetes (and, as the paper's future
work, serverless WASM) clusters — all on a deterministic discrete-event
simulation substrate built in this package.

Typical entry points:

>>> from repro.experiments import build_testbed
>>> tb = build_testbed(seed=42, n_clients=2, cluster_types=("docker",))
>>> svc = tb.register_catalog_service("nginx")
>>> request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
>>> tb.run(until=30.0)

Sub-packages
------------
``repro.analysis``
    Determinism linter (REP001–REP006), runtime sanitizer, and the
    PYTHONHASHSEED byte-diff harness (stdlib-only; see docs/analysis.md).
``repro.simcore``
    Deterministic event loop, processes, signals, RNG streams, tracing.
``repro.netsim``
    Ethernet/ARP/IPv4/TCP network simulation (links, host stacks).
``repro.openflow``
    OpenFlow 1.3-style switch, flow tables, control channel.
``repro.ryuapp``
    Ryu-style controller application framework.
``repro.edge``
    containerd / Docker / Kubernetes / registries / serverless substrate.
``repro.core``
    The paper's contribution: service registry, annotation, FlowMemory,
    schedulers, deployment engine, dispatcher, and the SDN controller.
``repro.workloads``
    Timed clients (timecurl) and bigFlows-like trace synthesis.
``repro.metrics``
    Summary statistics and table/series renderers.
``repro.experiments``
    Testbed builders and one driver per paper table/figure/ablation.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "simcore",
    "netsim",
    "openflow",
    "ryuapp",
    "edge",
    "core",
    "workloads",
    "metrics",
    "experiments",
    "__version__",
]
