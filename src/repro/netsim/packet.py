"""Typed packet model: Ethernet / ARP / IPv4 / TCP / UDP + HTTP payloads.

Packets are frozen, slotted dataclasses, layered by composition
(``EthernetFrame.payload`` is an :class:`ArpPacket` or :class:`IPv4Packet`,
and so on). The OpenFlow rewrite actions produce *copies*, never mutate in
place — a frame in flight may be referenced from several queues (switch
buffer, controller, trace log).

Each layer exposes a ``rewrite()`` helper that produces a copy with selected
fields changed while bypassing ``__init__``/``dataclasses.replace`` —
``object.__new__`` plus direct slot stores. On the forwarding hot path a
multi-field NAT rewrite then costs one new object per *mutated* layer
instead of a full ``replace()`` reconstruction per field.

Application payloads are Python objects carried by value with an explicit
byte size; the size (plus per-layer header overhead) drives link
serialization delay, which is what makes e.g. the 83 KiB ResNet POST body
slower than a 62-byte GET.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
from typing import Any, Optional, Union

from repro.netsim.addresses import MAC, IPv4

ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806

IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

ETH_HEADER_BYTES = 18  # header + FCS
ARP_BODY_BYTES = 28
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

#: Maximum TCP payload per segment (standard Ethernet MSS).
TCP_MSS = 1460

_new = object.__new__
_set = object.__setattr__


class TCPFlags(enum.IntFlag):
    """The TCP flag bits the simulation models."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass(frozen=True, slots=True)
class HTTPRequest:
    """An HTTP request as carried by the application layer.

    ``body_bytes`` is the payload size used for serialization delay (e.g. the
    83 KiB cat picture POSTed to the ResNet service); ``body`` may carry an
    arbitrary Python object for the server handler to inspect.
    """

    method: str = "GET"
    path: str = "/"
    host: str = ""
    body_bytes: int = 0
    body: Any = None
    headers_bytes: int = 120  # typical curl request header size

    @property
    def wire_bytes(self) -> int:
        return self.headers_bytes + self.body_bytes


@dataclass(frozen=True, slots=True)
class HTTPResponse:
    """An HTTP response."""

    status: int = 200
    body_bytes: int = 0
    body: Any = None
    headers_bytes: int = 160

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def wire_bytes(self) -> int:
        return self.headers_bytes + self.body_bytes


@dataclass(frozen=True, slots=True)
class TCPSegment:
    """One TCP segment.

    ``payload`` is an application message (or a reassembly fragment marker),
    ``payload_bytes`` its on-wire size contribution for this segment.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags.NONE
    payload: Any = None
    payload_bytes: int = 0
    #: Marks the final fragment of a multi-segment application message.
    last_fragment: bool = True

    @property
    def wire_bytes(self) -> int:
        return TCP_HEADER_BYTES + self.payload_bytes

    def has(self, flag: TCPFlags) -> bool:
        return bool(self.flags & flag)

    def rewrite(self, src_port: Optional[int] = None,
                dst_port: Optional[int] = None) -> "TCPSegment":
        """Copy with the given port(s) changed; other fields shared."""
        new = _new(TCPSegment)
        _set(new, "src_port", self.src_port if src_port is None else src_port)
        _set(new, "dst_port", self.dst_port if dst_port is None else dst_port)
        _set(new, "seq", self.seq)
        _set(new, "ack", self.ack)
        _set(new, "flags", self.flags)
        _set(new, "payload", self.payload)
        _set(new, "payload_bytes", self.payload_bytes)
        _set(new, "last_fragment", self.last_fragment)
        return new


@dataclass(frozen=True, slots=True)
class UDPDatagram:
    """One UDP datagram."""

    src_port: int
    dst_port: int
    payload: Any = None
    payload_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return UDP_HEADER_BYTES + self.payload_bytes

    def rewrite(self, src_port: Optional[int] = None,
                dst_port: Optional[int] = None) -> "UDPDatagram":
        """Copy with the given port(s) changed; other fields shared."""
        new = _new(UDPDatagram)
        _set(new, "src_port", self.src_port if src_port is None else src_port)
        _set(new, "dst_port", self.dst_port if dst_port is None else dst_port)
        _set(new, "payload", self.payload)
        _set(new, "payload_bytes", self.payload_bytes)
        return new


@dataclass(frozen=True, slots=True)
class IPv4Packet:
    """An IPv4 packet carrying TCP or UDP."""

    src: IPv4
    dst: IPv4
    proto: int
    payload: Union[TCPSegment, UDPDatagram]
    ttl: int = 64

    @property
    def wire_bytes(self) -> int:
        return IP_HEADER_BYTES + self.payload.wire_bytes

    def rewrite(self, src: Optional[IPv4] = None, dst: Optional[IPv4] = None,
                payload: Optional[Union[TCPSegment, UDPDatagram]] = None,
                ttl: Optional[int] = None) -> "IPv4Packet":
        """Copy with the given header field(s)/payload changed."""
        new = _new(IPv4Packet)
        _set(new, "src", self.src if src is None else src)
        _set(new, "dst", self.dst if dst is None else dst)
        _set(new, "proto", self.proto)
        _set(new, "payload", self.payload if payload is None else payload)
        _set(new, "ttl", self.ttl if ttl is None else ttl)
        return new

    def decrement_ttl(self) -> "IPv4Packet":
        return self.rewrite(ttl=self.ttl - 1)


class ArpOp(enum.IntEnum):
    REQUEST = 1
    REPLY = 2


@dataclass(frozen=True, slots=True)
class ArpPacket:
    """An ARP request or reply."""

    op: ArpOp
    sender_mac: MAC
    sender_ip: IPv4
    target_mac: MAC
    target_ip: IPv4

    @property
    def wire_bytes(self) -> int:
        return ARP_BODY_BYTES


@dataclass(frozen=True, slots=True)
class EthernetFrame:
    """The layer-2 frame that actually traverses links."""

    src: MAC
    dst: MAC
    ethertype: int
    payload: Union[ArpPacket, IPv4Packet]
    #: Monotonic id assigned by the sender's stack; used for tracing and for
    #: OpenFlow packet buffering (buffer_id derivation).
    frame_id: int = field(default=0, compare=False)

    @property
    def wire_bytes(self) -> int:
        return ETH_HEADER_BYTES + self.payload.wire_bytes

    def rewrite(self, src: Optional[MAC] = None, dst: Optional[MAC] = None,
                payload: Optional[Union[ArpPacket, IPv4Packet]] = None,
                ) -> "EthernetFrame":
        """Copy with the given header field(s)/payload changed.

        ``frame_id`` is preserved — the rewritten frame is the *same* packet
        in flight, not a newly transmitted one.
        """
        new = _new(EthernetFrame)
        _set(new, "src", self.src if src is None else src)
        _set(new, "dst", self.dst if dst is None else dst)
        _set(new, "ethertype", self.ethertype)
        _set(new, "payload", self.payload if payload is None else payload)
        _set(new, "frame_id", self.frame_id)
        return new

    def rewrite_headers(self,
                        eth_src: Optional[MAC] = None,
                        eth_dst: Optional[MAC] = None,
                        ipv4_src: Optional[IPv4] = None,
                        ipv4_dst: Optional[IPv4] = None,
                        l4_src: Optional[int] = None,
                        l4_dst: Optional[int] = None) -> "EthernetFrame":
        """Fused multi-layer rewrite: copy each mutated layer exactly once.

        OpenFlow prerequisite semantics apply — IPv4 fields are ignored on a
        non-IP frame, port fields are ignored when the L4 payload is absent
        (an ARP frame has neither). A call with no effective changes returns
        ``self`` unchanged.
        """
        payload = self.payload
        if isinstance(payload, IPv4Packet):
            new_l4: Optional[Union[TCPSegment, UDPDatagram]] = None
            if (l4_src is not None or l4_dst is not None) and isinstance(
                    payload.payload, (TCPSegment, UDPDatagram)):
                new_l4 = payload.payload.rewrite(src_port=l4_src, dst_port=l4_dst)
            if ipv4_src is not None or ipv4_dst is not None or new_l4 is not None:
                new_payload: Optional[Union[ArpPacket, IPv4Packet]] = payload.rewrite(
                    src=ipv4_src, dst=ipv4_dst, payload=new_l4)
            else:
                new_payload = None
        else:
            new_payload = None
        if eth_src is None and eth_dst is None and new_payload is None:
            return self
        return self.rewrite(src=eth_src, dst=eth_dst, payload=new_payload)

    # ------------------------------------------------------- layer accessors

    @property
    def ipv4(self) -> Optional[IPv4Packet]:
        return self.payload if isinstance(self.payload, IPv4Packet) else None

    @property
    def arp(self) -> Optional[ArpPacket]:
        return self.payload if isinstance(self.payload, ArpPacket) else None

    @property
    def tcp(self) -> Optional[TCPSegment]:
        ipv4 = self.ipv4
        if ipv4 is not None and isinstance(ipv4.payload, TCPSegment):
            return ipv4.payload
        return None

    @property
    def udp(self) -> Optional[UDPDatagram]:
        ipv4 = self.ipv4
        if ipv4 is not None and isinstance(ipv4.payload, UDPDatagram):
            return ipv4.payload
        return None

    def describe(self) -> str:
        """Compact single-line rendering for traces and debugging."""
        if self.arp is not None:
            a = self.arp
            kind = "who-has" if a.op == ArpOp.REQUEST else "is-at"
            return f"ARP {kind} {a.target_ip} tell {a.sender_ip}"
        tcp = self.tcp
        if tcp is not None:
            ipv4 = self.ipv4
            assert ipv4 is not None
            flags = (tcp.flags.name or str(int(tcp.flags))) if tcp.flags else "-"
            return (
                f"TCP {ipv4.src}:{tcp.src_port} > {ipv4.dst}:{tcp.dst_port}"
                f" [{flags}] seq={tcp.seq} ack={tcp.ack} len={tcp.payload_bytes}"
            )
        udp = self.udp
        if udp is not None:
            ipv4 = self.ipv4
            assert ipv4 is not None
            return f"UDP {ipv4.src}:{udp.src_port} > {ipv4.dst}:{udp.dst_port} len={udp.payload_bytes}"
        return f"ETH {self.src} > {self.dst} type={self.ethertype:#06x}"
