"""End-host network stack: ARP, gateway routing, TCP-like streams, UDP.

The stack is deliberately message-oriented above layer 4: an application
sends *messages* (e.g. :class:`~repro.netsim.packet.HTTPRequest`) with an
explicit byte size; the stack segments them into MSS-sized TCP segments,
reassembles on the receiver, and delivers the original object. Reliability
machinery is limited to what the measured scenarios exercise:

* 3-way handshake with client-side SYN retransmission (exponential backoff,
  like Linux ``tcp_syn_retries``) — this is what keeps a request alive while
  the SDN controller holds the first packet during an on-demand deployment;
* RST on closed ports — the reason the controller must port-probe a freshly
  scaled-up service before installing flows (paper, §VI);
* FIN/ACK teardown.

In-order, loss-free delivery is guaranteed by the link layer (FIFO links),
so data retransmission/windowing is intentionally not modelled.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.netsim.addresses import BROADCAST_MAC, MAC, IPv4
from repro.netsim.device import Device
from repro.netsim.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    TCP_MSS,
    ArpOp,
    ArpPacket,
    EthernetFrame,
    IPv4Packet,
    TCPFlags,
    TCPSegment,
    UDPDatagram,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Signal, Simulator


class NetworkStateError(RuntimeError):
    """An operation was attempted in an invalid host/connection state.

    Subclasses :class:`RuntimeError` for backwards compatibility with
    pre-typed-hierarchy callers.
    """


class ConnectionRefused(Exception):
    """Peer answered the SYN with RST (closed port)."""


class ConnectTimeout(Exception):
    """All SYN (re)transmissions went unanswered."""


class TCPState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"


ConnKey = Tuple[int, IPv4, int]  # (local_port, remote_ip, remote_port)

#: Initial SYN retransmission timeout and retry budget (Linux-ish defaults,
#: scaled down: 1 s, doubling, 6 attempts ≈ 63 s worst case).
SYN_RTO_INITIAL = 1.0
SYN_RETRIES = 6

EPHEMERAL_PORT_START = 40000

#: ARP request retransmission interval and budget.
ARP_RETRY_INTERVAL = 1.0
ARP_MAX_RETRIES = 60


class Connection:
    """One TCP connection endpoint.

    Application-facing API:

    * ``yield conn.request(msg, size)`` — send a message, wait for the reply
      message (client request/response idiom);
    * ``conn.send(msg, size)`` — fire-and-forget message send;
    * ``conn.on_message`` — server-side callback ``(conn, message) -> None``;
    * ``conn.close()`` — FIN teardown;
    * ``conn.established`` / ``conn.closed`` — signals.
    """

    def __init__(
        self,
        host: "Host",
        local_port: int,
        remote_ip: IPv4,
        remote_port: int,
        *,
        is_client: bool,
    ):
        self.host = host
        self.sim = host.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.is_client = is_client
        self.state = TCPState.CLOSED
        self.snd_nxt = 0
        self.rcv_nxt = 0
        #: completes with self once ESTABLISHED / fails on refusal or timeout
        self.established: "Signal" = host.sim.signal(f"{host.name}:conn-est:{local_port}")
        #: completes when fully closed
        self.closed: "Signal" = host.sim.signal(f"{host.name}:conn-closed:{local_port}")
        #: server-side message callback (set by the listener's handler factory)
        self.on_message: Optional[Callable[["Connection", Any], None]] = None
        self._response_waiters: list["Signal"] = []
        self._rx_fragments_bytes = 0
        self._syn_attempts = 0
        self._syn_timer = None
        #: time the first SYN left (curl's t=0 for time_connect/time_total)
        self.syn_sent_at: Optional[float] = None
        self.established_at: Optional[float] = None

    # ----------------------------------------------------------------- key

    @property
    def key(self) -> ConnKey:
        return (self.local_port, self.remote_ip, self.remote_port)

    # ------------------------------------------------------------ handshake

    def _start_connect(self) -> None:
        self.state = TCPState.SYN_SENT
        self.syn_sent_at = self.sim.now
        self._send_syn()

    def _send_syn(self) -> None:
        self._syn_attempts += 1
        if self._syn_attempts > SYN_RETRIES:
            self.state = TCPState.CLOSED
            self.host._forget_connection(self)
            if not self.established.done:
                self.established.fail(ConnectTimeout(
                    f"{self.host.name}: connect to {self.remote_ip}:{self.remote_port} timed out"))
            return
        self._emit(TCPFlags.SYN)
        rto = SYN_RTO_INITIAL * (2 ** (self._syn_attempts - 1))
        self._syn_timer = self.sim.schedule(rto, self._syn_retransmit)

    def _syn_retransmit(self) -> None:
        if self.state is TCPState.SYN_SENT:
            self.host.stats["syn_retransmits"] += 1
            self._send_syn()

    def _cancel_syn_timer(self) -> None:
        if self._syn_timer is not None:
            self._syn_timer.cancel()
            self._syn_timer = None

    # ------------------------------------------------------------- send path

    def send(self, message: Any, size_bytes: int = 0) -> None:
        """Send one application message, segmented at the MSS.

        All fragments carry ``payload=None`` except the last, which carries
        the message object itself (reassembly is just byte counting because
        links are FIFO and loss-free).
        """
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise NetworkStateError(f"send() on {self.state.value} connection")
        remaining = max(0, int(size_bytes))
        while True:
            chunk = min(remaining, TCP_MSS)
            remaining -= chunk
            last = remaining == 0
            self._emit(
                TCPFlags.ACK | (TCPFlags.PSH if last else TCPFlags.NONE),
                payload=message if last else None,
                payload_bytes=chunk,
                last_fragment=last,
            )
            self.snd_nxt += max(chunk, 1 if last and size_bytes == 0 else chunk)
            if last:
                break

    def request(self, message: Any, size_bytes: int = 0) -> "Signal":
        """Send ``message`` and return a signal completing with the next
        message received on this connection (request/response idiom)."""
        waiter = self.sim.signal(f"{self.host.name}:response:{self.local_port}")
        self._response_waiters.append(waiter)
        self.send(message, size_bytes)
        return waiter

    def next_message(self) -> "Signal":
        """Signal completing with the next received message (no send)."""
        waiter = self.sim.signal(f"{self.host.name}:next-msg:{self.local_port}")
        self._response_waiters.append(waiter)
        return waiter

    def close(self) -> None:
        """Initiate FIN teardown (idempotent)."""
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT
            self._emit(TCPFlags.FIN | TCPFlags.ACK)
        elif self.state is TCPState.CLOSE_WAIT:
            self._finish_close()
            self._emit(TCPFlags.FIN | TCPFlags.ACK)

    def abort(self) -> None:
        """Send RST and drop state immediately (used by port probes)."""
        if self.state is not TCPState.CLOSED:
            self._emit(TCPFlags.RST)
            self._finish_close()

    def _finish_close(self) -> None:
        self.state = TCPState.CLOSED
        self.host._forget_connection(self)
        self.closed.set_if_unset(None)

    # ------------------------------------------------------------- rx path

    def _on_segment(self, seg: TCPSegment) -> None:
        if seg.has(TCPFlags.RST):
            self._cancel_syn_timer()
            if self.state is TCPState.SYN_SENT and not self.established.done:
                self.established.fail(ConnectionRefused(
                    f"{self.remote_ip}:{self.remote_port} refused connection"))
            self._finish_close()
            return

        if self.state is TCPState.SYN_SENT:
            if seg.has(TCPFlags.SYN) and seg.has(TCPFlags.ACK):
                self._cancel_syn_timer()
                self.state = TCPState.ESTABLISHED
                self.established_at = self.sim.now
                self._emit(TCPFlags.ACK)
                if not self.established.done:
                    self.established.set(self)
            return

        if self.state is TCPState.SYN_RCVD:
            if seg.has(TCPFlags.SYN):
                # duplicate SYN (client retransmitted while our SYN-ACK was
                # in flight or the controller replayed the buffered packet):
                # re-send the SYN-ACK, as a real stack would.
                self._emit(TCPFlags.SYN | TCPFlags.ACK)
                return
            if seg.has(TCPFlags.ACK):
                self.state = TCPState.ESTABLISHED
                self.established_at = self.sim.now
                if not self.established.done:
                    self.established.set(self)
                # fall through: the ACK may carry data
            if seg.payload_bytes == 0 and seg.payload is None:
                return

        if self.state not in (TCPState.ESTABLISHED, TCPState.FIN_WAIT, TCPState.CLOSE_WAIT):
            return

        if seg.has(TCPFlags.FIN):
            if self.state is TCPState.ESTABLISHED:
                self.state = TCPState.CLOSE_WAIT
                self._emit(TCPFlags.ACK)
                # Passive close completes immediately in this model.
                self.close()
            elif self.state is TCPState.FIN_WAIT:
                self._emit(TCPFlags.ACK)
                self._finish_close()
            return

        if seg.payload_bytes > 0 or seg.payload is not None:
            self._rx_fragments_bytes += seg.payload_bytes
            self.rcv_nxt += seg.payload_bytes
            if seg.last_fragment:
                message = seg.payload
                self._rx_fragments_bytes = 0
                self._deliver_message(message)

    def _deliver_message(self, message: Any) -> None:
        if self._response_waiters:
            waiter = self._response_waiters.pop(0)
            if not waiter.done:
                waiter.set(message)
                return
        if self.on_message is not None:
            self.on_message(self, message)
        else:
            self.host.stats["orphan_messages"] += 1

    # ------------------------------------------------------------- plumbing

    def _emit(
        self,
        flags: TCPFlags,
        payload: Any = None,
        payload_bytes: int = 0,
        last_fragment: bool = True,
    ) -> None:
        seg = TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=flags,
            payload=payload,
            payload_bytes=payload_bytes,
            last_fragment=last_fragment,
        )
        self.host.send_ip(self.remote_ip, IP_PROTO_TCP, seg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Connection {self.host.name}:{self.local_port} <-> "
                f"{self.remote_ip}:{self.remote_port} {self.state.value}>")


class Host(Device):
    """A single-NIC end host (UE, edge node, or cloud server).

    Parameters
    ----------
    ip_addr, mac_addr:
        The host's layer-3/layer-2 addresses.
    gateway:
        Default-gateway IP for off-subnet destinations. The transparent-edge
        fabric gives every host the controller's virtual-router IP here.
    prefix_len:
        Subnet prefix; on-subnet destinations are ARPed directly.
    """

    #: frame ids are global so traces can correlate across hosts
    _frame_counter = 0

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        ip_addr: IPv4,
        mac_addr: MAC,
        gateway: Optional[IPv4] = None,
        prefix_len: int = 24,
    ):
        super().__init__(sim, name)
        self.ip = ip_addr
        self.mac = mac_addr
        self.gateway = gateway
        self.prefix_len = prefix_len
        self.arp_cache: Dict[IPv4, MAC] = {}
        self._arp_pending: Dict[IPv4, list] = {}  # next_hop -> [IPv4Packet]
        self._connections: Dict[ConnKey, Connection] = {}
        self._listeners: Dict[int, Callable[[Connection], None]] = {}
        self._udp_listeners: Dict[int, Callable[[IPv4, UDPDatagram], None]] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        self.stats: Dict[str, int] = {
            "syn_retransmits": 0,
            "rst_sent": 0,
            "orphan_messages": 0,
            "arp_requests": 0,
            "dropped_not_mine": 0,
        }

    # --------------------------------------------------------------- wiring

    @property
    def uplink_port(self) -> int:
        """The single NIC's port number (hosts are single-homed)."""
        ports = self.port_numbers
        if not ports:
            raise NetworkStateError(f"{self.name}: no link attached")
        return ports[0]

    # ------------------------------------------------------------ listeners

    def listen(self, port: int, on_connection: Callable[[Connection], None]) -> None:
        """Accept TCP connections on ``port``.

        ``on_connection(conn)`` is invoked when the handshake begins; it
        should set ``conn.on_message`` to receive application messages.
        """
        if port in self._listeners:
            raise ValueError(f"{self.name}: port {port} already listening")
        self._listeners[port] = on_connection

    def unlisten(self, port: int) -> None:
        """Stop accepting on ``port`` (existing connections unaffected)."""
        self._listeners.pop(port, None)

    def listening_on(self, port: int) -> bool:
        return port in self._listeners

    def listen_udp(self, port: int, on_datagram: Callable[[IPv4, UDPDatagram], None]) -> None:
        self._udp_listeners[port] = on_datagram

    # -------------------------------------------------------------- connect

    def connect(self, remote_ip: IPv4, remote_port: int, local_port: Optional[int] = None) -> "Signal":
        """Open a TCP connection; returns the connection's ``established``
        signal (completes with the :class:`Connection`, fails with
        :class:`ConnectionRefused` / :class:`ConnectTimeout`)."""
        if local_port is None:
            local_port = self._alloc_port()
        conn = Connection(self, local_port, remote_ip, remote_port, is_client=True)
        key = conn.key
        if key in self._connections:
            raise ValueError(f"{self.name}: connection {key} already exists")
        self._connections[key] = conn
        conn._start_connect()
        return conn.established

    def _alloc_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = EPHEMERAL_PORT_START
        return port

    def _forget_connection(self, conn: Connection) -> None:
        self._connections.pop(conn.key, None)

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    # ---------------------------------------------------------------- IP tx

    def _next_hop(self, dst: IPv4) -> IPv4:
        if dst.in_subnet(self.ip, self.prefix_len) or self.gateway is None:
            return dst
        return self.gateway

    def send_ip(self, dst: IPv4, proto: int, payload) -> None:
        """Send an IPv4 packet, resolving the next hop's MAC via ARP."""
        packet = IPv4Packet(src=self.ip, dst=dst, proto=proto, payload=payload)
        next_hop = self._next_hop(dst)
        nh_mac = self.arp_cache.get(next_hop)
        if nh_mac is not None:
            self._tx_ip(nh_mac, packet)
            return
        queue = self._arp_pending.get(next_hop)
        if queue is not None:
            queue.append(packet)
            return
        self._arp_pending[next_hop] = [packet]
        self._send_arp_request(next_hop)
        self.sim.schedule(ARP_RETRY_INTERVAL, self._arp_retry, next_hop, 1)

    def _tx_ip(self, dst_mac: MAC, packet: IPv4Packet) -> None:
        Host._frame_counter += 1
        frame = EthernetFrame(
            src=self.mac, dst=dst_mac, ethertype=ETH_TYPE_IP,
            payload=packet, frame_id=Host._frame_counter,
        )
        self.transmit(self.uplink_port, frame)

    def send_udp(self, dst: IPv4, dst_port: int, payload: Any, size_bytes: int = 0,
                 src_port: Optional[int] = None) -> None:
        datagram = UDPDatagram(
            src_port=src_port if src_port is not None else self._alloc_port(),
            dst_port=dst_port, payload=payload, payload_bytes=size_bytes,
        )
        self.send_ip(dst, IP_PROTO_UDP, datagram)

    # ------------------------------------------------------------------ ARP

    def _arp_retry(self, target_ip: IPv4, attempt: int) -> None:
        """Retransmit an unanswered ARP request (real stacks probe ~3 times;
        we keep probing longer because SYN retransmissions keep refilling the
        pending queue during slow on-demand deployments)."""
        if target_ip not in self._arp_pending:
            return  # resolved meanwhile
        if attempt >= ARP_MAX_RETRIES:
            self._arp_pending.pop(target_ip, None)  # drop queued packets
            return
        self._send_arp_request(target_ip)
        self.sim.schedule(ARP_RETRY_INTERVAL, self._arp_retry, target_ip, attempt + 1)

    def _send_arp_request(self, target_ip: IPv4) -> None:
        self.stats["arp_requests"] += 1
        Host._frame_counter += 1
        arp = ArpPacket(
            op=ArpOp.REQUEST,
            sender_mac=self.mac, sender_ip=self.ip,
            target_mac=MAC(0), target_ip=target_ip,
        )
        frame = EthernetFrame(src=self.mac, dst=BROADCAST_MAC, ethertype=ETH_TYPE_ARP,
                              payload=arp, frame_id=Host._frame_counter)
        self.transmit(self.uplink_port, frame)

    def _on_arp(self, arp: ArpPacket) -> None:
        # Learn opportunistically from both requests and replies.
        self.arp_cache[arp.sender_ip] = arp.sender_mac
        pending = self._arp_pending.pop(arp.sender_ip, None)
        if pending:
            for packet in pending:
                self._tx_ip(arp.sender_mac, packet)
        if arp.op == ArpOp.REQUEST and arp.target_ip == self.ip:
            Host._frame_counter += 1
            reply = ArpPacket(
                op=ArpOp.REPLY,
                sender_mac=self.mac, sender_ip=self.ip,
                target_mac=arp.sender_mac, target_ip=arp.sender_ip,
            )
            frame = EthernetFrame(src=self.mac, dst=arp.sender_mac, ethertype=ETH_TYPE_ARP,
                                  payload=reply, frame_id=Host._frame_counter)
            self.transmit(self.uplink_port, frame)

    # ------------------------------------------------------------------ rx

    def on_frame(self, port_no: int, frame: EthernetFrame) -> None:
        if frame.dst != self.mac and not frame.dst.is_broadcast:
            self.stats["dropped_not_mine"] += 1
            return
        arp = frame.arp
        if arp is not None:
            self._on_arp(arp)
            return
        packet = frame.ipv4
        if packet is None:
            return
        if packet.dst != self.ip:
            self.stats["dropped_not_mine"] += 1
            return
        if packet.proto == IP_PROTO_TCP:
            self._on_tcp(packet.src, packet.payload)  # type: ignore[arg-type]
        elif packet.proto == IP_PROTO_UDP:
            dg: UDPDatagram = packet.payload  # type: ignore[assignment]
            listener = self._udp_listeners.get(dg.dst_port)
            if listener is not None:
                listener(packet.src, dg)

    def _on_tcp(self, src_ip: IPv4, seg: TCPSegment) -> None:
        key: ConnKey = (seg.dst_port, src_ip, seg.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn._on_segment(seg)
            return
        if seg.has(TCPFlags.SYN) and not seg.has(TCPFlags.ACK):
            accept = self._listeners.get(seg.dst_port)
            if accept is not None:
                conn = Connection(self, seg.dst_port, src_ip, seg.src_port, is_client=False)
                conn.state = TCPState.SYN_RCVD
                self._connections[key] = conn
                accept(conn)
                conn._emit(TCPFlags.SYN | TCPFlags.ACK)
                return
            # Closed port: refuse.
            self.stats["rst_sent"] += 1
            rst = TCPSegment(src_port=seg.dst_port, dst_port=seg.src_port,
                             flags=TCPFlags.RST | TCPFlags.ACK)
            self.send_ip(src_ip, IP_PROTO_TCP, rst)
            return
        if not seg.has(TCPFlags.RST):
            # Stray non-SYN segment for an unknown connection -> RST.
            self.stats["rst_sent"] += 1
            rst = TCPSegment(src_port=seg.dst_port, dst_port=seg.src_port, flags=TCPFlags.RST)
            self.send_ip(src_ip, IP_PROTO_TCP, rst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} {self.ip} ({self.mac})>"
