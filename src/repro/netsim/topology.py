"""Topology construction helpers.

:class:`Network` owns the simulator plus address allocation and keeps an
inventory of hosts, switches, and links so experiments can build the paper's
fig. 8 topology (20 Raspberry Pi clients — OVS switch on the EGS — Docker /
K8s clusters — cloud uplink) in a few lines. See
:mod:`repro.experiments.topologies` for the canonical builders.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netsim.addresses import MAC, IPv4
from repro.netsim.device import Device
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.simcore import RandomStreams, Simulator, TraceLog


class Network:
    """A simulator plus address pools and a device/link inventory."""

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[TraceLog] = None,
        base_ip: str = "10.0.0.0",
        mac_prefix: int = 0x02_00_00_00_00_00,
    ):
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.sim = Simulator(trace=self.trace)
        self.random = RandomStreams(seed)
        # Fault injection draws from its own named child streams of the run
        # seed; binding alone is inert (no streams exist until a fault point
        # is configured and rolled), so determinism of fault-free runs holds.
        self.sim.faults.bind(self.random.child("faults"))
        self._base_ip = IPv4(base_ip)
        self._next_host_suffix = 1
        self._mac_prefix = mac_prefix
        self._next_mac_suffix = 1
        self.hosts: Dict[str, Host] = {}
        self.devices: Dict[str, Device] = {}
        self.links: list[Link] = []

    # ------------------------------------------------------------ allocation

    def alloc_ip(self) -> IPv4:
        addr = IPv4(self._base_ip.value + self._next_host_suffix)
        self._next_host_suffix += 1
        return addr

    def alloc_mac(self) -> MAC:
        addr = MAC(self._mac_prefix + self._next_mac_suffix)
        self._next_mac_suffix += 1
        return addr

    # ------------------------------------------------------------- building

    def add_host(
        self,
        name: str,
        ip_addr: Optional[IPv4] = None,
        mac_addr: Optional[MAC] = None,
        gateway: Optional[IPv4] = None,
        prefix_len: int = 8,
    ) -> Host:
        """Create and register a host (addresses auto-allocated if omitted)."""
        if name in self.devices:
            raise ValueError(f"duplicate device name {name!r}")
        host = Host(
            self.sim,
            name,
            ip_addr if ip_addr is not None else self.alloc_ip(),
            mac_addr if mac_addr is not None else self.alloc_mac(),
            gateway=gateway,
            prefix_len=prefix_len,
        )
        self.hosts[name] = host
        self.devices[name] = host
        return host

    def add_device(self, device: Device) -> Device:
        """Register an externally-constructed device (e.g. an OpenFlow switch)."""
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        return device

    def connect(
        self,
        a: Device,
        a_port: int,
        b: Device,
        b_port: int,
        latency_s: float = 0.0001,
        bandwidth_bps: Optional[float] = 1e9,
        name: str = "",
    ) -> Link:
        """Wire two device ports with a link."""
        link = Link(self.sim, a, a_port, b, b_port,
                    latency_s=latency_s, bandwidth_bps=bandwidth_bps, name=name)
        self.links.append(link)
        return link

    def connect_host(
        self,
        host: Host,
        switch: Device,
        switch_port: int,
        latency_s: float = 0.0001,
        bandwidth_bps: Optional[float] = 1e9,
    ) -> Link:
        """Wire a single-NIC host (port 0) to ``switch_port`` on a switch."""
        return self.connect(host, 0, switch, switch_port,
                            latency_s=latency_s, bandwidth_bps=bandwidth_bps)

    # -------------------------------------------------------------- running

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    @property
    def now(self) -> float:
        return self.sim.now

    def host_by_ip(self, addr: IPv4) -> Optional[Host]:
        for host in self.hosts.values():
            if host.ip == addr:
                return host
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Network hosts={len(self.hosts)} devices={len(self.devices)} "
                f"links={len(self.links)} t={self.sim.now:.6f}>")
