"""MAC and IPv4 address value types.

Both are thin, hashable, int-backed value objects. Being int-backed keeps
them cheap as dict keys on the hot path (flow-table lookups hash millions of
addresses per benchmark run) while still printing like real addresses.

Instances are **interned**: constructing the same address twice returns the
same object, so a scenario with 100k clients holds one object per distinct
address no matter how many frames reference it, equality degenerates to an
identity check, and the hash is a precomputed int. Pickle round-trips
re-intern (``__reduce__``), so addresses crossing pool-worker boundaries
keep the identity ↔ equality invariant.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Dict, Tuple, Union


@total_ordering
class MAC:
    """48-bit Ethernet address (interned)."""

    __slots__ = ("value", "_hash")

    _interned: Dict[int, "MAC"] = {}

    def __new__(cls, value: Union[int, str, "MAC"]):
        if isinstance(value, MAC):
            return value
        if isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC out of range: {value:#x}")
            parsed = value
        elif isinstance(value, str):
            parts = value.replace("-", ":").split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC {value!r}")
            parsed = 0
            for part in parts:
                octet = int(part, 16)
                if not 0 <= octet <= 0xFF:
                    raise ValueError(f"malformed MAC {value!r}")
                parsed = (parsed << 8) | octet
        else:
            raise TypeError(f"cannot build MAC from {type(value).__name__}")
        self = cls._interned.get(parsed)
        if self is None:
            self = super().__new__(cls)
            self.value = parsed
            # Hash of the raw int: stable across PYTHONHASHSEED (unlike the
            # previous str-tagged tuple hash) and allocation-free to compare.
            self._hash = hash(parsed)
            cls._interned[parsed] = self
        return self

    def __reduce__(self) -> Tuple[type, Tuple[int]]:
        return (MAC, (self.value,))

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, MAC) and self.value == other.value)

    def __lt__(self, other: "MAC") -> bool:
        if not isinstance(other, MAC):
            return NotImplemented
        return self.value < other.value

    def __hash__(self) -> int:
        return self._hash

    def __int__(self) -> int:
        return self.value

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self.value >> 40) & 0x01)

    def __str__(self) -> str:
        return ":".join(f"{(self.value >> shift) & 0xFF:02x}" for shift in range(40, -8, -8))

    def __repr__(self) -> str:
        return f"MAC('{self}')"


@total_ordering
class IPv4:
    """32-bit IPv4 address (interned)."""

    __slots__ = ("value", "_hash")

    _interned: Dict[int, "IPv4"] = {}

    def __new__(cls, value: Union[int, str, "IPv4"]):
        if isinstance(value, IPv4):
            return value
        if isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 out of range: {value:#x}")
            parsed = value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 {value!r}")
            parsed = 0
            for part in parts:
                octet = int(part)
                if not 0 <= octet <= 255:
                    raise ValueError(f"malformed IPv4 {value!r}")
                parsed = (parsed << 8) | octet
        else:
            raise TypeError(f"cannot build IPv4 from {type(value).__name__}")
        self = cls._interned.get(parsed)
        if self is None:
            self = super().__new__(cls)
            self.value = parsed
            self._hash = hash(parsed)
            cls._interned[parsed] = self
        return self

    def __reduce__(self) -> Tuple[type, Tuple[int]]:
        return (IPv4, (self.value,))

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, IPv4) and self.value == other.value)

    def __lt__(self, other: "IPv4") -> bool:
        if not isinstance(other, IPv4):
            return NotImplemented
        return self.value < other.value

    def __hash__(self) -> int:
        return self._hash

    def __int__(self) -> int:
        return self.value

    def in_subnet(self, network: "IPv4", prefix_len: int) -> bool:
        """True when this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self.value & mask) == (network.value & mask)

    def __add__(self, offset: int) -> "IPv4":
        return IPv4(self.value + offset)

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in range(24, -8, -8))

    def __repr__(self) -> str:
        return f"IPv4('{self}')"


def mac(value: Union[int, str, MAC]) -> MAC:
    """Convenience constructor (idempotent)."""
    return value if isinstance(value, MAC) else MAC(value)


def ip(value: Union[int, str, IPv4]) -> IPv4:
    """Convenience constructor (idempotent)."""
    return value if isinstance(value, IPv4) else IPv4(value)


BROADCAST_MAC = MAC((1 << 48) - 1)
ZERO_MAC = MAC(0)
