"""Simulated layer-2/3/4 network substrate.

Provides everything beneath the SDN layer: addressing, a typed packet model
(Ethernet / ARP / IPv4 / TCP / UDP with HTTP-style application payloads),
full-duplex links with latency + serialization delay, and end hosts with an
ARP cache, a gateway-routed IP stack, and a TCP-like reliable stream with a
3-way handshake (the interval curl's ``time_total`` measures starts at the
first SYN).

The OpenFlow switch lives in :mod:`repro.openflow`; it is just another
:class:`~repro.netsim.device.Device` on these links.
"""

from repro.netsim.addresses import BROADCAST_MAC, MAC, ZERO_MAC, IPv4, ip, mac
from repro.netsim.device import Device
from repro.netsim.host import Connection, ConnectionRefused, ConnectTimeout, Host
from repro.netsim.link import Link
from repro.netsim.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    ArpPacket,
    EthernetFrame,
    HTTPRequest,
    HTTPResponse,
    IPv4Packet,
    TCPFlags,
    TCPSegment,
    UDPDatagram,
)
from repro.netsim.topology import Network

__all__ = [
    "MAC",
    "IPv4",
    "mac",
    "ip",
    "BROADCAST_MAC",
    "ZERO_MAC",
    "EthernetFrame",
    "ArpPacket",
    "IPv4Packet",
    "TCPSegment",
    "UDPDatagram",
    "HTTPRequest",
    "HTTPResponse",
    "ETH_TYPE_IP",
    "ETH_TYPE_ARP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "TCPFlags",
    "Link",
    "Device",
    "Host",
    "Connection",
    "ConnectionRefused",
    "ConnectTimeout",
    "Network",
]
