"""Full-duplex point-to-point links with latency and serialization delay.

Delivery time for a frame entering an idle direction is::

    now + frame_bytes * 8 / bandwidth_bps + latency_s

Each direction keeps an independent "transmitter busy until" clock, so a
burst of frames queues FIFO behind the one currently serializing — this is
what turns the 83 KiB ResNet upload into ~57 segments of back-to-back
transmission on the 1 Gbps access link instead of a single lump delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.packet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.device import Device
    from repro.simcore import Simulator


class Link:
    """A bidirectional link between two device ports.

    Parameters
    ----------
    latency_s:
        One-way propagation delay in seconds.
    bandwidth_bps:
        Serialization rate in bits per second. ``None`` means infinite
        (zero serialization delay) — useful for control-channel modelling.
    """

    def __init__(
        self,
        sim: "Simulator",
        a: "Device",
        a_port: int,
        b: "Device",
        b_port: int,
        latency_s: float = 0.0001,
        bandwidth_bps: Optional[float] = 1e9,
        name: str = "",
    ):
        if latency_s < 0:
            raise ValueError("negative latency")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive or None")
        self.sim = sim
        self.a = a
        self.a_port = a_port
        self.b = b
        self.b_port = b_port
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.name = name or f"{a.name}:{a_port}<->{b.name}:{b_port}"
        self.up = True
        # Independent serialization clocks per direction (full duplex),
        # keyed by the sending device (identity hash — never iterated).
        self._busy_until: dict["Device", float] = {a: 0.0, b: 0.0}
        #: delivered frame count (diagnostics)
        self.frames_delivered = 0
        self.bytes_delivered = 0
        a.attach_link(a_port, self)
        b.attach_link(b_port, self)

    # ----------------------------------------------------------- data path

    def other_end(self, device: "Device") -> tuple["Device", int]:
        if device is self.a:
            return self.b, self.b_port
        if device is self.b:
            return self.a, self.a_port
        raise ValueError(f"{device!r} is not an endpoint of {self.name}")

    def tx_time(self, frame: EthernetFrame) -> float:
        if self.bandwidth_bps is None:
            return 0.0
        return frame.wire_bytes * 8.0 / self.bandwidth_bps

    def transmit(self, sender: "Device", frame: EthernetFrame) -> None:
        """Queue ``frame`` for delivery to the opposite endpoint."""
        if not self.up:
            self.sim.trace.emit(self.sim.now, "net", "link-drop",
                                {"link": self.name, "frame": frame.describe()})
            return
        if self.sim.faults.roll("link.loss"):
            self.sim.trace.emit(self.sim.now, "net", "link-fault-drop",
                                {"link": self.name, "frame": frame.describe()})
            return
        receiver, rx_port = self.other_end(sender)
        start = max(self.sim.now, self._busy_until[sender])
        done_serializing = start + self.tx_time(frame)
        self._busy_until[sender] = done_serializing
        arrival_delay = (done_serializing - self.sim.now) + self.latency_s
        self.sim.schedule(arrival_delay, self._deliver, receiver, rx_port, frame)

    def _deliver(self, receiver: "Device", rx_port: int, frame: EthernetFrame) -> None:
        if not self.up:
            return  # went down while in flight
        self.frames_delivered += 1
        self.bytes_delivered += frame.wire_bytes
        receiver.deliver(rx_port, frame)

    # ------------------------------------------------------------- control

    def set_up(self, up: bool) -> None:
        """Bring the link up/down (failure injection in tests)."""
        self.up = up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bw = "inf" if self.bandwidth_bps is None else f"{self.bandwidth_bps / 1e6:.0f}Mbps"
        return f"<Link {self.name} {self.latency_s * 1e3:.3f}ms {bw} {'up' if self.up else 'DOWN'}>"
