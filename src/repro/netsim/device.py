"""Base class for anything with network ports (hosts, switches, routers)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.netsim.packet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.link import Link
    from repro.simcore import Simulator


class Device:
    """A node with numbered ports attached to :class:`~repro.netsim.link.Link`\\ s.

    Subclasses implement :meth:`on_frame` to process arriving frames and call
    :meth:`transmit` to emit frames out of a port.
    """

    def __init__(self, sim: "Simulator", name: str):
        self.sim = sim
        self.name = name
        self.links: Dict[int, "Link"] = {}
        #: per-port receive / transmit frame counters (diagnostics)
        self.rx_frames = 0
        self.tx_frames = 0

    # ------------------------------------------------------------- wiring

    def attach_link(self, port_no: int, link: "Link") -> None:
        if port_no in self.links:
            raise ValueError(f"{self.name}: port {port_no} already wired")
        self.links[port_no] = link

    def port_of_link(self, link: "Link") -> int:
        for port_no, candidate in self.links.items():
            if candidate is link:
                return port_no
        raise KeyError(f"{self.name}: link {link!r} not attached")

    @property
    def port_numbers(self) -> list[int]:
        return sorted(self.links)

    # ------------------------------------------------------------ data path

    def transmit(self, port_no: int, frame: EthernetFrame) -> None:
        """Send ``frame`` out of ``port_no`` (drops silently on an unwired
        port, mirroring a real NIC with no carrier)."""
        link = self.links.get(port_no)
        if link is None:
            self.sim.trace.emit(self.sim.now, "net", "tx-drop",
                                {"device": self.name, "port": port_no})
            return
        self.tx_frames += 1
        link.transmit(self, frame)

    def deliver(self, port_no: int, frame: EthernetFrame) -> None:
        """Called by the link when a frame arrives on ``port_no``."""
        self.rx_frames += 1
        self.on_frame(port_no, frame)

    def on_frame(self, port_no: int, frame: EthernetFrame) -> None:
        """Process an arriving frame. Subclass responsibility."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} ports={self.port_numbers}>"
