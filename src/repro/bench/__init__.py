"""Hot-path benchmark harness — the repo's performance trajectory.

``python -m repro.bench`` runs the microbenchmarks that cover the packet
hot path (indexed flow-table lookup vs. the reference linear scan,
microflow-cached forwarding, flow churn through the exact-match index, raw
event-loop throughput, allocation-lean header rewrites, the memoized
controller slow path, the warm-cache hit rates under unrelated churn —
fine-grained revalidation vs. the coarse flush-everything oracle — the
prefix-trie service registry from 1k to 1M registered services, the
million-frame A6 scale scenario with peak memory, and the
domain-sharded lockstep scenario at 1/2/4 worker
processes) plus end-to-end experiment drivers, and writes a
machine-readable record (``BENCH_<series>.json``, see ``BENCH_SERIES``)
so future PRs can compare against it (``python -m repro.bench --compare
OLD.json``) instead of re-deriving a baseline.

Every benchmark body is a deterministic simulation; only the *measurement*
is host wall time / memory, which never feeds back into any simulated
result.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import platform
import subprocess
import sys
import time
import tracemalloc
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics import perf

__all__ = [
    "bench_packet_path",
    "bench_microflow_forwarding",
    "bench_flow_churn",
    "bench_event_loop",
    "bench_packet_rewrite",
    "bench_controller_slow_path",
    "bench_warm_churn",
    "bench_a6_scale",
    "bench_verify",
    "bench_registry_lookup",
    "bench_domain_scaling",
    "bench_end_to_end",
    "run_benchmarks",
    "write_record",
]

#: The single versioned stamp for benchmark records: the PR series this
#: tree benchmarks as. Bump it (once, here) when a PR establishes a new
#: baseline — the default output name and the record's ``pr`` field both
#: derive from it, so they can never drift apart again.
BENCH_SERIES = 8
DEFAULT_OUT = f"BENCH_{BENCH_SERIES}.json"
#: v2 adds the ``meta`` block (git commit, flow-table entry counts); the
#: reader (`repro.bench.compare.load_record`) still accepts v1 records.
SCHEMA = "repro-bench/2"

#: Peak *tracemalloc* budgets for the A6 scale scenario (MiB). The full
#: configuration pushes ≥1M forwarded frames from >100k unique clients and
#: must stay under its budget — the acceptance bar for the scale path.
A6_FULL_BUDGET_MB = 256.0
A6_SMOKE_BUDGET_MB = 96.0


def _now() -> float:
    return time.perf_counter()  # repro: noqa[REP001] host-side timing only


# ------------------------------------------------------------- fixtures


def _populated_table(entries: int) -> Any:
    """A flow table with ``entries`` same-priority exact-match rules —
    the adversarial case for the old linear scan (every miss walked all
    of them) and the representative one for the paper's data plane
    (per-session microflow rules installed by the controller)."""
    from repro.openflow import FlowEntry, FlowTable, Match, OutputAction
    from repro.simcore import Simulator

    sim = Simulator()
    table = FlowTable(sim)
    for i in range(entries):
        match = Match(eth_type=0x0800, ip_proto=6,
                      ipv4_src=f"10.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}",
                      ipv4_dst=f"172.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}",
                      tcp_dst=80)
        table.install(FlowEntry(match=match, priority=100,
                                actions=[OutputAction(1)]))
    return table


def _packet_fields(entries: int, stride: int = 7) -> List[Dict[str, Any]]:
    from repro.netsim.addresses import IPv4

    fields = []
    for i in range(0, entries, stride):
        fields.append({
            "in_port": 1, "eth_type": 0x0800, "ip_proto": 6,
            "ipv4_src": IPv4(f"10.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}"),
            "ipv4_dst": IPv4(f"172.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}"),
            "tcp_dst": 80,
        })
    return fields


# ----------------------------------------------------------- benchmarks


def bench_packet_path(entries: int = 1000, lookups: int = 1_000_000,
                      linear_lookups: int = 20_000) -> Dict[str, Any]:
    """Indexed ``FlowTable.lookup`` vs. the reference linear scan.

    The linear baseline is sampled with fewer iterations (at 1k entries it
    costs ~100 µs per call) and compared per-lookup; the acceptance bar
    for PR 4 is a ≥ 5× speedup.
    """
    table = _populated_table(entries)
    packets = _packet_fields(entries)
    n_packets = len(packets)

    started = _now()
    for i in range(lookups):
        table.lookup(packets[i % n_packets])
    indexed_s = _now() - started

    started = _now()
    for i in range(linear_lookups):
        table.lookup_linear(packets[i % n_packets])
    linear_s = _now() - started

    indexed_us = indexed_s / lookups * 1e6
    linear_us = linear_s / linear_lookups * 1e6
    return {
        "entries": entries,
        "lookups": lookups,
        "linear_lookups": linear_lookups,
        "indexed_us_per_lookup": round(indexed_us, 3),
        "linear_us_per_lookup": round(linear_us, 3),
        "speedup": round(linear_us / indexed_us, 1) if indexed_us else None,
    }


def bench_microflow_forwarding(flows: int = 256, packets: int = 200_000,
                               drain_every: int = 10_000) -> Dict[str, Any]:
    """Full ``OpenFlowSwitch.on_frame`` cost with a warm microflow cache.

    Replays TCP frames over ``flows`` installed exact-match rules; after
    the first round every packet is a microflow hit. The event queue is
    drained periodically so the forwarding events don't accumulate."""
    from repro.netsim import ETH_TYPE_IP, EthernetFrame, IPv4Packet, TCPSegment, ip, mac
    from repro.netsim.packet import IP_PROTO_TCP
    from repro.openflow import FlowEntry, Match, OutputAction
    from repro.openflow.switch import OpenFlowSwitch
    from repro.simcore import Simulator

    sim = Simulator()
    switch = OpenFlowSwitch(sim, "bench-sw", dpid=1)
    frames = []
    for i in range(flows):
        dst = f"172.16.{i // 256 % 256}.{i % 256}"
        switch.table.install(FlowEntry(
            match=Match(eth_type=0x0800, ip_proto=6, ipv4_dst=dst, tcp_dst=80),
            priority=100, actions=[OutputAction(1)]))
        seg = TCPSegment(src_port=40000, dst_port=80)
        pkt = IPv4Packet(src=ip("10.0.0.1"), dst=ip(dst), proto=IP_PROTO_TCP,
                         payload=seg)
        frames.append(EthernetFrame(src=mac(1), dst=mac(2),
                                    ethertype=ETH_TYPE_IP, payload=pkt))

    started = _now()
    for i in range(packets):
        switch.on_frame(2, frames[i % flows])
        if i % drain_every == drain_every - 1:
            sim.run()
    sim.run()
    elapsed = _now() - started
    return {
        "flows": flows,
        "packets": packets,
        "us_per_packet": round(elapsed / packets * 1e6, 3),
        "microflow_hit_rate": round(switch.microflow_hit_rate, 4),
    }


def bench_flow_churn(resident: int = 1000, cycles: int = 20_000) -> Dict[str, Any]:
    """Install/strict-delete cycles against a full table.

    Exercises exactly what the exact-match index fixed: install-overlap
    detection and ``OFPFC_DELETE_STRICT``, both previously O(n) scans."""
    from repro.openflow import FlowEntry, Match, OutputAction

    table = _populated_table(resident)
    churn_match = Match(eth_type=0x0800, ip_proto=6,
                        ipv4_src="192.168.0.1", ipv4_dst="192.168.1.1",
                        tcp_dst=443)
    started = _now()
    for _ in range(cycles):
        table.install(FlowEntry(match=churn_match, priority=50,
                                actions=[OutputAction(2)]))
        table.delete(churn_match, strict=True, priority=50)
    elapsed = _now() - started
    return {
        "resident_entries": resident,
        "cycles": cycles,
        "us_per_cycle": round(elapsed / cycles * 1e6, 3),
    }


def bench_event_loop(events: int = 100_000) -> Dict[str, Any]:
    """Schedule + run ``events`` no-op events through ``Simulator.run``."""
    from repro.simcore import Simulator

    sim = Simulator()
    callback: Callable[[], None] = lambda: None
    started = _now()
    for i in range(events):
        sim.schedule(i * 1e-6, callback)
    sim.run()
    elapsed = _now() - started
    assert sim.events_executed == events
    return {
        "events": events,
        "us_per_event": round(elapsed / events * 1e6, 3),
    }


# --------------------------------------------- PR 5: allocation benchmarks


@dataclasses.dataclass(frozen=True)
class _LegacyTCP:
    """The seed's (pre-slots) TCP segment: frozen dataclass with ``__dict__``."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    payload: Any = None
    payload_bytes: int = 0
    last_fragment: bool = True


@dataclasses.dataclass(frozen=True)
class _LegacyIPv4:
    src: Any
    dst: Any
    proto: int
    payload: Any
    ttl: int = 64


@dataclasses.dataclass(frozen=True)
class _LegacyFrame:
    src: Any
    dst: Any
    ethertype: int
    payload: Any
    frame_id: int = 0


def _legacy_rewrite(frame: _LegacyFrame, field: str, value: Any) -> _LegacyFrame:
    """The seed's per-field rewrite: one ``dataclasses.replace`` chain each."""
    if field == "eth_src":
        return dataclasses.replace(frame, src=value)
    if field == "eth_dst":
        return dataclasses.replace(frame, dst=value)
    packet = frame.payload
    if field == "ipv4_src":
        return dataclasses.replace(frame, payload=dataclasses.replace(packet, src=value))
    if field == "ipv4_dst":
        return dataclasses.replace(frame, payload=dataclasses.replace(packet, dst=value))
    kwargs = {"src_port": value} if field.endswith("_src") else {"dst_port": value}
    new_l4 = dataclasses.replace(packet.payload, **kwargs)
    return dataclasses.replace(frame, payload=dataclasses.replace(packet, payload=new_l4))


def bench_packet_rewrite(packets: int = 50_000,
                         timing_rounds: int = 200_000) -> Dict[str, Any]:
    """Per-packet allocation bytes and wall time of a 4-field NAT rewrite.

    Compares the seed's packet model (dict-backed frozen dataclasses, one
    ``dataclasses.replace`` chain per set-field — reconstructed locally as
    the ``_Legacy*`` classes) against the current slotted model with the
    fused batch rewrite in :func:`repro.openflow.actions.apply_actions_multi`.

    Allocation is measured with tracemalloc by *retaining* every frame each
    path produces (intermediates included), so the byte count is the true
    per-packet allocation churn, not the net survivor size.
    """
    import gc

    from repro.netsim import ETH_TYPE_IP, EthernetFrame, IPv4Packet, TCPSegment, ip, mac
    from repro.netsim.packet import IP_PROTO_TCP
    from repro.openflow.actions import OutputAction, SetFieldAction, apply_actions_multi

    # The downstream NAT rewrite the controller installs per client flow.
    nat_fields: List[Tuple[str, Any]] = [
        ("ipv4_src", ip("198.51.100.1")),
        ("tcp_src", 80),
        ("eth_src", mac("02:ed:9e:00:00:01")),
        ("eth_dst", mac("02:ba:00:00:00:01")),
    ]
    actions = [SetFieldAction(f, v) for f, v in nat_fields] + [OutputAction(1)]

    seg = TCPSegment(src_port=8080, dst_port=40000, payload_bytes=615)
    pkt = IPv4Packet(src=ip("10.0.0.7"), dst=ip("10.64.0.2"),
                     proto=IP_PROTO_TCP, payload=seg)
    frame = EthernetFrame(src=mac(3), dst=mac(4), ethertype=ETH_TYPE_IP, payload=pkt)

    legacy_seg = _LegacyTCP(src_port=8080, dst_port=40000, payload_bytes=615)
    legacy_pkt = _LegacyIPv4(src=pkt.src, dst=pkt.dst, proto=IP_PROTO_TCP,
                             payload=legacy_seg)
    legacy_frame = _LegacyFrame(src=frame.src, dst=frame.dst,
                                ethertype=ETH_TYPE_IP, payload=legacy_pkt)

    def run_legacy(sink: Callable[[Any], None]) -> None:
        current = legacy_frame
        for field, value in nat_fields:
            current = _legacy_rewrite(current, field, value)
            sink(current)

    def run_fused(sink: Callable[[Any], None]) -> None:
        for out_frame, _port in apply_actions_multi(frame, actions):
            sink(out_frame)

    def alloc_bytes_per_packet(body: Callable[[Callable[[Any], None]], None]) -> float:
        gc.collect()
        debris: List[Any] = []
        sink = debris.append
        tracemalloc.start()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(packets):
            body(sink)
        total = tracemalloc.get_traced_memory()[0] - base
        tracemalloc.stop()
        del debris
        return total / packets

    legacy_bytes = alloc_bytes_per_packet(run_legacy)
    fused_bytes = alloc_bytes_per_packet(run_fused)

    discard: Callable[[Any], None] = lambda _frame: None
    started = _now()
    for _ in range(timing_rounds):
        run_legacy(discard)
    legacy_s = _now() - started
    started = _now()
    for _ in range(timing_rounds):
        run_fused(discard)
    fused_s = _now() - started

    return {
        "packets": packets,
        "set_fields": len(nat_fields),
        "bytes_per_packet_legacy": round(legacy_bytes, 1),
        "bytes_per_packet_fused": round(fused_bytes, 1),
        "alloc_reduction": round(legacy_bytes / fused_bytes, 2) if fused_bytes else None,
        "us_per_rewrite_legacy": round(legacy_s / timing_rounds * 1e6, 3),
        "us_per_rewrite_fused": round(fused_s / timing_rounds * 1e6, 3),
    }


def _slow_path_testbed(memoize: bool) -> Tuple[Any, Any]:
    """A warm testbed plus a reusable packet-in event for its client's SYN."""
    from repro.experiments.topologies import build_testbed
    from repro.openflow import extract_fields
    from repro.openflow.constants import OFP_NO_BUFFER
    from repro.openflow.messages import PacketIn
    from repro.ryuapp.events import EventOFPPacketIn

    tb = build_testbed(seed=51, n_clients=1, cluster_types=("docker",),
                       memory_idle_timeout_s=3600.0)
    tb.controller.cfg.memoize_slow_path = memoize
    svc = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None
    # One real request seeds the host table and the FlowMemory entry, so
    # every synthesized packet-in below re-walks the memorized slow path
    # (the re-miss case A2 measures) without a dispatcher run.
    request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
    tb.run(until=tb.sim.now + 5.0)
    assert request.done and request.result.ok

    from repro.netsim import ETH_TYPE_IP, EthernetFrame, IPv4Packet, TCPSegment
    from repro.netsim.packet import IP_PROTO_TCP, TCPFlags

    client = tb.clients[0]
    seg = TCPSegment(src_port=40001, dst_port=svc.service_id.port,
                     flags=TCPFlags.SYN)
    pkt = IPv4Packet(src=client.ip, dst=svc.service_id.addr,
                     proto=IP_PROTO_TCP, payload=seg)
    frame = EthernetFrame(src=client.mac, dst=tb.controller.cfg.vgw_mac,
                          ethertype=ETH_TYPE_IP, payload=pkt, frame_id=1)
    msg = PacketIn(buffer_id=OFP_NO_BUFFER, in_port=1, frame=frame,
                   fields=extract_fields(frame, 1))
    msg.datapath = tb.manager.datapaths[tb.switch.dpid]  # type: ignore[attr-defined]
    return tb, EventOFPPacketIn(msg)


def bench_controller_slow_path(packet_ins: int = 20_000,
                               drain_every: int = 1_000) -> Dict[str, Any]:
    """Controller cost per repeated-service packet-in, memoized vs. not.

    Times ``TransparentEdgeController.on_packet_in`` directly (no control
    channel, no AppManager queueing) for a SYN whose (client, service) pair
    is already in FlowMemory — the slow path minus the dispatcher. With
    memoization the registry probe, host lookups, and the whole match/action
    install plan come from the generation-checked caches; without it every
    packet-in recomputes them. Events produced by the handler (flow-mods,
    packet-outs) are drained outside the timed sections.
    """
    out: Dict[str, Any] = {"packet_ins": packet_ins}
    for label, memoize in (("memo", True), ("nomemo", False)):
        tb, ev = _slow_path_testbed(memoize)
        handler = tb.controller.on_packet_in
        elapsed = 0.0
        for start in range(0, packet_ins, drain_every):
            burst = min(drain_every, packet_ins - start)
            started = _now()
            for _ in range(burst):
                handler(ev)
            elapsed += _now() - started
            tb.run(until=tb.sim.now + 5.0)
        out[f"us_per_packetin_{label}"] = round(elapsed / packet_ins * 1e6, 3)
        if memoize:
            out["plan_hits"] = tb.controller.stats["slow_path_plan_hits"]
            out["plan_misses"] = tb.controller.stats["slow_path_plan_misses"]
    out["speedup"] = round(out["us_per_packetin_nomemo"]
                           / out["us_per_packetin_memo"], 2)
    return out


def bench_warm_churn(packet_ins: int = 20_000, drain_every: int = 1_000,
                     repeats: int = 3, mf_flows: int = 256,
                     mf_packets: int = 200_000,
                     mf_churn_every: int = 64) -> Dict[str, Any]:
    """Warm-cache hit rates under *unrelated* churn, fine vs. coarse.

    The revalidation PR's headline benchmark. Both halves interleave hot
    traffic with mutations that are irrelevant to it, and run each cache
    discipline side by side:

    * **Controller half** — the memoized slow path of
      :func:`bench_controller_slow_path`, but between every timed
      packet-in an unrelated cloud-prefix service registers/deregisters
      and a foreign client's FlowMemory entry is remembered/forgotten.
      Under fine-grained revalidation the install plan's per-key tokens
      (registry token, FlowMemory version, host version, cluster
      generation) are all untouched, so the plan stays warm; the coarse
      epoch pins the global generations and re-misses on every packet.
    * **Switch half** — :func:`bench_microflow_forwarding`'s loop, but an
      unrelated exact-match rule installs+deletes every
      ``mf_churn_every`` packets. Surgical eviction leaves the cached
      microflows alone; the coarse oracle flushes the whole cache, and at
      ``mf_churn_every < mf_flows`` it never rewarms.

    Each timed half runs ``repeats`` times from a fresh testbed and reports
    the best (timeit-style minimum — the work is deterministic, the spread
    is scheduler noise); hit/miss counters are identical across repeats.
    """
    from repro.netsim.addresses import IPv4
    from repro.workloads.cloudprefix import (
        synth_cloud_prefixes, synth_service_ids, synthetic_service)

    repeats = max(1, repeats)
    out: Dict[str, Any] = {"packet_ins": packet_ins, "repeats": repeats}
    # Churn identities live in the synthetic cloud supernets (52/10, 20.64/10,
    # ...), disjoint from the testbed's TEST-NET-2 service and client ranges:
    # the churn is *provably* unrelated to the hot flow.
    churn_sid = synth_service_ids(12, 1, synth_cloud_prefixes(seed=11,
                                                              count=16))[0]
    for label, fine in (("fine", True), ("coarse", False)):
        # Best-of-repeats (timeit-style min over fresh testbeds): the
        # per-packet cost is deterministic work, so the minimum is the
        # measurement and the spread is scheduler/allocator noise.
        best = float("inf")
        hits = misses = 0
        for _rep in range(repeats):
            tb, ev = _slow_path_testbed(memoize=True)
            ctrl = tb.controller
            ctrl.cfg.fine_grained_revalidation = fine
            foreign_client = IPv4("198.18.0.1")  # RFC 2544 range: not a host
            flow = next(iter(ctrl.memory._flows.values()))
            hot_sid = flow.key[1]
            # Seed the foreign FlowMemory entry once; the churn loop then
            # *overwrites* it in place — every overwrite bumps the global
            # generation and the foreign key's version (the mutation the
            # coarse epoch trips over) without scheduling a fresh idle timer
            # per op, which would grow the event heap and tax both modes
            # equally.
            ctrl.memory.remember(foreign_client, hot_sid, flow.cluster,
                                 flow.endpoint)
            hits0 = ctrl.stats["slow_path_plan_hits"]
            misses0 = ctrl.stats["slow_path_plan_misses"]
            handler = ctrl.on_packet_in
            elapsed = 0.0
            registered = False
            # GC pauses land in whichever timed section they like; park
            # collection during the bursts and catch up at the (untimed)
            # drain points so both modes pay it identically.
            gc.disable()
            try:
                for start in range(0, packet_ins, drain_every):
                    burst = min(drain_every, packet_ins - start)
                    for _ in range(burst):
                        if registered:
                            ctrl.registry.deregister(churn_sid)
                        else:
                            ctrl.registry.register_service(
                                synthetic_service(churn_sid))
                        registered = not registered
                        ctrl.memory.remember(foreign_client, hot_sid,
                                             flow.cluster, flow.endpoint)
                        started = _now()
                        handler(ev)
                        elapsed += _now() - started
                    tb.run(until=tb.sim.now + 5.0)
                    gc.collect()
            finally:
                gc.enable()
            best = min(best, elapsed)
            # Hit/miss counts are deterministic across repeats.
            hits = ctrl.stats["slow_path_plan_hits"] - hits0
            misses = ctrl.stats["slow_path_plan_misses"] - misses0
        out[f"us_per_packetin_{label}"] = round(best / packet_ins * 1e6, 3)
        out[f"memo_hit_pct_{label}"] = round(
            hits / max(1, hits + misses) * 100.0, 2)
    out["packetin_speedup"] = round(out["us_per_packetin_coarse"]
                                    / out["us_per_packetin_fine"], 2)

    from repro.netsim import (
        ETH_TYPE_IP, EthernetFrame, IPv4Packet, TCPSegment, ip, mac)
    from repro.netsim.packet import IP_PROTO_TCP
    from repro.openflow import FlowEntry, Match, OutputAction
    from repro.openflow.switch import OpenFlowSwitch
    from repro.simcore import Simulator

    mf: Dict[str, Any] = {"flows": mf_flows, "packets": mf_packets,
                          "churn_every": mf_churn_every}
    for label, surgical in (("surgical", True), ("coarse", False)):
        best = float("inf")
        for _rep in range(repeats):
            sim = Simulator()
            switch = OpenFlowSwitch(sim, "bench-sw", dpid=1,
                                    microflow_surgical=surgical)
            frames = []
            for i in range(mf_flows):
                dst = f"172.16.{i // 256 % 256}.{i % 256}"
                switch.table.install(FlowEntry(
                    match=Match(eth_type=0x0800, ip_proto=6, ipv4_dst=dst,
                                tcp_dst=80),
                    priority=100, actions=[OutputAction(1)]))
                seg = TCPSegment(src_port=40000, dst_port=80)
                pkt = IPv4Packet(src=ip("10.0.0.1"), dst=ip(dst),
                                 proto=IP_PROTO_TCP, payload=seg)
                frames.append(EthernetFrame(src=mac(1), dst=mac(2),
                                            ethertype=ETH_TYPE_IP,
                                            payload=pkt))
            churn_match = Match(eth_type=0x0800, ip_proto=6,
                                ipv4_src="192.0.2.9", ipv4_dst="192.0.2.10",
                                tcp_dst=443)
            started = _now()
            for i in range(mf_packets):
                if i % mf_churn_every == 0:
                    switch.table.install(FlowEntry(match=churn_match,
                                                   priority=50,
                                                   actions=[OutputAction(2)]))
                    switch.table.delete(churn_match, strict=True, priority=50)
                switch.on_frame(2, frames[i % mf_flows])
                if i % 10_000 == 9_999:
                    sim.run()
            sim.run()
            best = min(best, _now() - started)
        mf[f"us_per_packet_{label}"] = round(best / mf_packets * 1e6, 3)
        mf[f"hit_pct_{label}"] = round(switch.microflow_hit_rate * 100.0, 2)
        mf[f"mf_evictions_{label}"] = switch.mf_evictions
        mf[f"mf_flushes_{label}"] = switch.mf_flushes
    mf["packet_speedup"] = round(mf["us_per_packet_coarse"]
                                 / mf["us_per_packet_surgical"], 2)
    out["microflow"] = mf
    return out


def bench_a6_scale(clients: int = 101_000, window: int = 64,
                   budget_mb: float = A6_FULL_BUDGET_MB) -> Dict[str, Any]:
    """The A6 scenario at acceptance scale, with peak-memory accounting.

    Serves ``clients`` unique one-shot clients (10 switch-forwarded frames
    per conversation) through one warm service and records the peak Python
    heap (tracemalloc, the budgeted number) and peak process RSS
    (``getrusage``, informational — it includes tracemalloc's own ~2×
    bookkeeping overhead and never shrinks).
    """
    import resource

    from repro.experiments.parta import a6_cell

    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    tracemalloc.start()
    started = _now()
    row = a6_cell(clients=clients, window=window, seed=97)
    wall_s = _now() - started
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = peak / 1e6
    return {
        "clients": clients,
        "window": window,
        "ok": row["ok"],
        "failed": row["failed"],
        "forwarded_frames": row["forwarded_frames"],
        "mean_ms": row["mean_ms"],
        "p95_ms": row["p95_ms"],
        "wall_s": round(wall_s, 1),
        "frames_per_s": round(float(row["forwarded_frames"]) / wall_s, 0),  # type: ignore[arg-type]
        "peak_tracemalloc_mb": round(peak_mb, 1),
        "peak_rss_mb": round(peak_rss_kb / 1024.0, 1),
        "rss_before_mb": round(rss_before_kb / 1024.0, 1),
        "budget_mb": budget_mb,
        "within_budget": peak_mb <= budget_mb,
    }


def _synthetic_snapshot(rules: int, switches: int = 4) -> Any:
    """A frozen snapshot with ``rules`` exact-match entries spread over
    ``switches`` independent switches — no services, so the verifier cost
    is pure class enumeration + symbolic tracing against table size."""
    from repro.netsim.addresses import IPv4, MAC
    from repro.openflow.actions import OutputAction
    from repro.openflow.constants import OFPP_CONTROLLER
    from repro.openflow.match import Match
    from repro.verify.snapshot import (
        ControlView, HostView, NetworkSnapshot, RuleView, SwitchView)

    switch_views = []
    hosts = []
    per_switch = max(1, rules // switches)
    for dpid in range(1, switches + 1):
        rule_views = [RuleView(match=Match(), priority=0, seq=1, cookie=0,
                               flags=0,
                               actions=(OutputAction(OFPP_CONTROLLER),))]
        for i in range(per_switch):
            match = Match(eth_type=0x0800, ip_proto=6,
                          ipv4_src=f"10.{dpid}.{i // 256 % 256}.{i % 256}",
                          ipv4_dst=f"172.{dpid}.{i // 256 % 256}.{i % 256}",
                          tcp_dst=80)
            rule_views.append(RuleView(match=match, priority=100, seq=i + 2,
                                       cookie=0, flags=0,
                                       actions=(OutputAction(1),)))
        switch_views.append(SwitchView(
            dpid=dpid, name=f"s{dpid}", generation=per_switch,
            microflow_generation=-1, rules=tuple(rule_views),
            stale_cache=()))
        hosts.append(HostView(ip=IPv4(f"192.168.{dpid}.1"), dpid=dpid,
                              port_no=1, mac=MAC(f"02:00:00:00:{dpid:02x}:01")))
    control = ControlView(alive=True, epoch=1, use_flow_memory=False,
                          vgw_ip=IPv4("10.255.255.254"),
                          vgw_mac=MAC("02:ed:9e:00:00:01"),
                          services=(), live_endpoints=(), memory=(),
                          cookie_cluster=())
    return NetworkSnapshot(switches=tuple(switch_views), adjacency=(),
                           hosts=tuple(hosts), control=control)


def _touch_one_switch(snapshot: Any) -> Any:
    """A copy of ``snapshot`` with one switch's table mutated (one extra
    rule, generation bumped) — the incremental checker's common case."""
    from repro.openflow.actions import OutputAction
    from repro.openflow.match import Match
    from repro.verify.snapshot import RuleView

    view = snapshot.switches[0]
    extra = RuleView(
        match=Match(eth_type=0x0800, ip_proto=6, ipv4_src="10.250.0.1",
                    ipv4_dst="172.250.0.1", tcp_dst=80),
        priority=100, seq=len(view.rules) + 2, cookie=0, flags=0,
        actions=(OutputAction(1),))
    touched = dataclasses.replace(
        view, rules=view.rules + (extra,), generation=view.generation + 1)
    return dataclasses.replace(
        snapshot, switches=(touched,) + snapshot.switches[1:])


def bench_verify(sizes: Tuple[int, ...] = (1_000, 10_000, 100_000),
                 switches: int = 4) -> Dict[str, Any]:
    """Full vs incremental data-plane verification cost vs table size.

    For each size: one cold full check, one incremental re-check of the
    unchanged snapshot (pure cache-hit path), and one incremental check
    after a single-switch table mutation (the steady-state case — only the
    touched switch's classes re-trace). docs/verification.md describes the
    cache model; ``tests/verify`` proves incremental output is
    byte-identical to the full checker's.
    """
    from repro.verify import IncrementalVerifier, verify_snapshot

    out: Dict[str, Any] = {"switches": switches, "sizes": {}}
    for size in sizes:
        snapshot = _synthetic_snapshot(size, switches)
        started = _now()
        full_report = verify_snapshot(snapshot)
        full_s = _now() - started

        verifier = IncrementalVerifier()
        verifier.verify(snapshot)  # populate caches (timed run is next)
        started = _now()
        unchanged_report = verifier.verify(snapshot)
        unchanged_s = _now() - started

        touched = _touch_one_switch(snapshot)
        started = _now()
        touched_report = verifier.verify(touched)
        touched_s = _now() - started

        classes = full_report.classes_checked
        out["sizes"][str(size)] = {
            "rules": full_report.rules_checked,
            "classes": classes,
            "violations": len(full_report.violations)
                          + len(unchanged_report.violations)
                          + len(touched_report.violations),
            "full_ms": round(full_s * 1e3, 2),
            "incremental_unchanged_ms": round(unchanged_s * 1e3, 2),
            "incremental_touched_ms": round(touched_s * 1e3, 2),
            "us_per_class_full": round(full_s / classes * 1e6, 3),
            "classes_reused_touched": verifier.classes_reused,
            "classes_traced_touched": verifier.classes_traced,
            "speedup_unchanged": round(full_s / unchanged_s, 1)
                                 if unchanged_s > 0 else float("inf"),
        }
    return out


def bench_registry_lookup(
    sizes: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000),
    lookups: int = 200_000,
    churn_cycles: int = 2_000,
    subnet_services: int = 256,
) -> Dict[str, Any]:
    """Packet-in decision cost vs. registered service count (ROADMAP 3).

    Populates a :class:`~repro.core.registry.ServiceRegistry` with
    cloud-prefix-shaped synthetic services (plus ``subnet_services``
    subnet-registered prefixes) and measures, per size tier:

    * ``us_per_decision_hit`` — ``lookup_prefix`` on registered host
      services: THE packet-in decision. The acceptance bar is that this
      stays *flat within 2×* from the smallest to the largest tier — no
      linear blow-up with registry size (``flat_within_2x`` at the top).
    * ``us_per_lpm_hit`` — covered (non-exact) addresses resolved through
      the trie's longest-prefix walk;
    * ``us_per_miss`` — unregistered destinations (the common plain-L3
      case; negative answers are what the controller's memo caches);
    * ``us_per_register`` / ``us_per_churn_op`` — registration bulk rate
      and steady-state deregister+re-register churn.
    """
    from random import Random

    from repro.core.registry import ServiceRegistry
    from repro.netsim.addresses import IPv4
    from repro.workloads.cloudprefix import (
        bulk_register,
        subnet_service,
        synth_cloud_prefixes,
        synth_service_ids,
        synthetic_service,
    )

    out: Dict[str, Any] = {"sizes": {}}
    decision_costs: Dict[int, float] = {}
    for size in sizes:
        # Prefix count grows with the tier but is capped: the provider
        # supernets hold ~44M addresses and the weighted length mix averages
        # ~4k addresses per prefix, so 4096 prefixes stays comfortably
        # inside while still spreading 1M services cloud-like.
        prefixes = synth_cloud_prefixes(seed=5,
                                        count=max(16, min(size // 64, 4_096)))
        service_ids = synth_service_ids(6, size, prefixes, udp_share=0.2)
        registry = ServiceRegistry()

        started = _now()
        bulk_register(registry, service_ids)
        register_s = _now() - started
        for prefix in prefixes[:subnet_services]:
            candidate = subnet_service(prefix)
            # A sampled host id can land exactly on the prefix's network
            # address and port — identity is the triple, so skip the clash.
            if candidate.service_id not in registry:
                registry.register_service(candidate)

        rng = Random(7)
        sample = [service_ids[rng.randrange(size)] for _ in range(2_000)]
        rounds = max(1, lookups // len(sample))

        # THE decision: registered (addr, port, protocol) -> service.
        started = _now()
        for _ in range(rounds):
            for sid in sample:
                registry.lookup_prefix(sid.addr, sid.port, sid.protocol)
        hit_s = _now() - started
        n_hits = rounds * len(sample)

        # Covered-but-not-exact addresses: the trie LPM walk (offset >= 1
        # so the probe never coincides with the subnet service's own /32
        # identity and short-circuits on the exact dict).
        covered = []
        for prefix in prefixes[:subnet_services]:
            span = 1 << (32 - prefix.prefix_len)
            covered.append(IPv4(prefix.network.value + 1
                                + rng.randrange(max(1, span - 1))))
        started = _now()
        for _ in range(max(1, n_hits // len(covered) // 4)):
            for addr in covered:
                registry.lookup_prefix(addr, 443, "TCP")
        lpm_s = _now() - started
        n_lpm = max(1, n_hits // len(covered) // 4) * len(covered)

        # Unregistered destinations (TEST-NET-3: outside every supernet).
        misses = [IPv4(f"203.0.113.{i % 256}") for i in range(256)]
        started = _now()
        for _ in range(max(1, n_hits // len(misses) // 4)):
            for addr in misses:
                registry.lookup_prefix(addr, 80, "TCP")
        miss_s = _now() - started
        n_miss = max(1, n_hits // len(misses) // 4) * len(misses)

        # Steady-state churn: deregister + re-register a rotating sample.
        started = _now()
        for i in range(churn_cycles):
            sid = service_ids[(i * 127) % size]
            service = registry.deregister(sid)
            assert service is not None
            registry.register_service(synthetic_service(sid))
        churn_s = _now() - started

        decision_costs[size] = hit_s / n_hits * 1e6
        out["sizes"][str(size)] = {
            "registered": len(registry),
            "trie_prefixes": len(registry._trie),
            "trie_nodes": registry._trie.node_count(),
            "us_per_register": round(register_s / size * 1e6, 3),
            "us_per_decision_hit": round(hit_s / n_hits * 1e6, 3),
            "us_per_lpm_hit": round(lpm_s / n_lpm * 1e6, 3),
            "us_per_miss": round(miss_s / n_miss * 1e6, 3),
            "us_per_churn_op": round(churn_s / (2 * churn_cycles) * 1e6, 3),
        }

    smallest, largest = min(decision_costs), max(decision_costs)
    ratio = decision_costs[largest] / decision_costs[smallest]
    out["decision_cost_ratio_max_vs_min"] = round(ratio, 3)
    out["flat_within_2x"] = ratio <= 2.0
    return out


def bench_domain_scaling(n_domains: int = 4, clients_local: int = 600,
                         clients_remote: int = 150, window: int = 64,
                         worker_counts: Tuple[int, ...] = (1, 2, 4),
                         ) -> Dict[str, Any]:
    """Aggregate event throughput of the sharded multi-ingress scenario
    (A7's partition) at 1/2/4 domain worker processes.

    Two things are measured: that the partition *scales* (wall-clock
    speedup of the same logical run over more workers — bounded by the
    host's core count, recorded as ``cpu_count``) and that it stays
    *deterministic* (the rendered table is digest-identical at every
    worker count — ``results_identical``). CI gates on both.
    """
    import hashlib
    import os

    from repro.experiments.domains import run_sharded_ingress, sharded_table
    from repro.metrics import table_to_csv

    out: Dict[str, Any] = {
        "n_domains": n_domains,
        "clients_local": clients_local,
        "clients_remote": clients_remote,
        "window": window,
        "cpu_count": os.cpu_count(),
        "runs": {},
    }
    digests = set()
    walls: Dict[int, float] = {}
    for processes in worker_counts:
        started = _now()
        outcome = run_sharded_ingress(
            n_domains=n_domains, clients_local=clients_local,
            clients_remote=clients_remote, window=window,
            processes=processes)
        wall = _now() - started
        csv = table_to_csv(sharded_table(outcome, clients_local,
                                         clients_remote))
        digests.add(hashlib.sha256(csv.encode("utf-8")).hexdigest())
        walls[processes] = wall
        out["runs"][str(processes)] = {
            "wall_s": round(wall, 3),
            "events": outcome.total_events,
            "epochs": outcome.epochs,
            "envelopes": outcome.envelopes_exchanged,
            "events_per_s": round(outcome.total_events / wall),
        }
    base = walls[worker_counts[0]]
    for processes in worker_counts[1:]:
        out[f"speedup_{processes}_vs_1"] = round(base / walls[processes], 3)
    out["results_identical"] = len(digests) == 1
    return out


def bench_end_to_end() -> Dict[str, Any]:
    """Wall time of representative experiment drivers (serial, in-process),
    with the hot-path work they cost (from :mod:`repro.metrics.perf`)."""
    from repro.experiments import parta, partb

    drivers: List[Any] = [
        ("parta.a3_controller_scaling", parta.a3_controller_scaling),
        ("parta.a4_flowtable_occupancy", parta.a4_flowtable_occupancy),
        ("partb.fig11_scale_up", lambda: partb.fig11_scale_up(repeats=7)),
    ]
    out: Dict[str, Any] = {}
    for name, driver in drivers:
        before = perf.snapshot()
        started = _now()
        driver()
        elapsed = _now() - started
        counters = perf.delta(before)
        out[name] = {
            "wall_s": round(elapsed, 3),
            "sim_events": counters.events_executed,
            "flow_lookups": counters.flow_lookups,
            "microflow_hit_rate": round(counters.microflow_hit_rate, 4),
        }
    return out


# -------------------------------------------------------------- harness


def _git_commit() -> Optional[str]:
    """The current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def _git_dirty() -> Optional[bool]:
    """Whether the working tree had uncommitted changes when the record
    was generated (None outside a git checkout) — a committed baseline
    produced from a dirty tree is not reproducible from its commit.

    Bench records themselves (``BENCH_*.json``) are exempt: regenerating a
    record into the checkout is the one mutation every baseline run makes,
    and it cannot influence the numbers being recorded.
    """
    try:
        out = subprocess.run(["git", "status", "--porcelain"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    relevant = []
    for line in out.stdout.splitlines():
        # porcelain v1: two status columns, a space, then the path
        path = line[3:].split(" -> ")[-1].strip().strip('"')
        name = path.rsplit("/", 1)[-1]
        if name.startswith("BENCH_") and name.endswith(".json"):
            continue
        if line.strip():
            relevant.append(line)
    return bool(relevant)


def run_benchmarks(smoke: bool = False) -> Dict[str, Any]:
    """Run the whole suite; ``smoke`` shrinks iteration counts for CI."""
    if smoke:
        packet = bench_packet_path(lookups=50_000, linear_lookups=2_000)
        microflow = bench_microflow_forwarding(packets=20_000)
        churn = bench_flow_churn(cycles=2_000)
        loop = bench_event_loop(events=20_000)
        rewrite = bench_packet_rewrite(packets=10_000, timing_rounds=20_000)
        slow_path = bench_controller_slow_path(packet_ins=2_000)
        warm_churn = bench_warm_churn(packet_ins=2_000, repeats=2,
                                      mf_packets=20_000)
        a6 = bench_a6_scale(clients=2_000, budget_mb=A6_SMOKE_BUDGET_MB)
        verify = bench_verify(sizes=(500, 2_000))
        registry = bench_registry_lookup(sizes=(1_000, 10_000),
                                         lookups=20_000, churn_cycles=500)
        domains = bench_domain_scaling()
    else:
        packet = bench_packet_path()
        microflow = bench_microflow_forwarding()
        churn = bench_flow_churn()
        loop = bench_event_loop()
        rewrite = bench_packet_rewrite()
        slow_path = bench_controller_slow_path()
        warm_churn = bench_warm_churn()
        a6 = bench_a6_scale()
        verify = bench_verify()
        registry = bench_registry_lookup()
        domains = bench_domain_scaling(clients_local=1200, clients_remote=300)
    return {
        "schema": SCHEMA,
        "pr": BENCH_SERIES,
        "smoke": smoke,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix_s": round(time.time(), 1),  # repro: noqa[REP001] host-side stamp
        # repro-bench/2 metadata: which tree produced the record, and the
        # flow-table population each table-driven benchmark ran against.
        "meta": {
            "git_commit": _git_commit(),
            "git_dirty": _git_dirty(),
            "flow_table_entries": {
                "packet_path": packet["entries"],
                "microflow_forwarding": microflow["flows"],
                "flow_churn": churn["resident_entries"],
            },
        },
        "benchmarks": {
            "packet_path": packet,
            "microflow_forwarding": microflow,
            "flow_churn": churn,
            "event_loop": loop,
            "packet_rewrite": rewrite,
            "controller_slow_path": slow_path,
            "warm_churn": warm_churn,
            "a6_scale": a6,
            "verify": verify,
            "registry_lookup": registry,
            "domain_scaling": domains,
            "end_to_end": bench_end_to_end(),
        },
    }


def write_record(record: Dict[str, Any], path: str = DEFAULT_OUT) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
