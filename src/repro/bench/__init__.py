"""Hot-path benchmark harness — the repo's performance trajectory.

``python -m repro.bench`` runs the microbenchmarks that cover the packet
hot path (indexed flow-table lookup vs. the reference linear scan,
microflow-cached forwarding, flow churn through the exact-match index, raw
event-loop throughput) plus end-to-end experiment drivers, and writes a
machine-readable record (``BENCH_4.json`` by default) so future PRs can
compare against it instead of re-deriving a baseline.

Every benchmark body is a deterministic simulation; only the *measurement*
is host wall time, which never feeds back into any simulated result.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List

from repro.metrics import perf

__all__ = [
    "bench_packet_path",
    "bench_microflow_forwarding",
    "bench_flow_churn",
    "bench_event_loop",
    "bench_end_to_end",
    "run_benchmarks",
    "write_record",
]

DEFAULT_OUT = "BENCH_4.json"
SCHEMA = "repro-bench/1"


def _now() -> float:
    return time.perf_counter()  # repro: noqa[REP001] host-side timing only


# ------------------------------------------------------------- fixtures


def _populated_table(entries: int) -> Any:
    """A flow table with ``entries`` same-priority exact-match rules —
    the adversarial case for the old linear scan (every miss walked all
    of them) and the representative one for the paper's data plane
    (per-session microflow rules installed by the controller)."""
    from repro.openflow import FlowEntry, FlowTable, Match, OutputAction
    from repro.simcore import Simulator

    sim = Simulator()
    table = FlowTable(sim)
    for i in range(entries):
        match = Match(eth_type=0x0800, ip_proto=6,
                      ipv4_src=f"10.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}",
                      ipv4_dst=f"172.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}",
                      tcp_dst=80)
        table.install(FlowEntry(match=match, priority=100,
                                actions=[OutputAction(1)]))
    return table


def _packet_fields(entries: int, stride: int = 7) -> List[Dict[str, Any]]:
    from repro.netsim.addresses import IPv4

    fields = []
    for i in range(0, entries, stride):
        fields.append({
            "in_port": 1, "eth_type": 0x0800, "ip_proto": 6,
            "ipv4_src": IPv4(f"10.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}"),
            "ipv4_dst": IPv4(f"172.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}"),
            "tcp_dst": 80,
        })
    return fields


# ----------------------------------------------------------- benchmarks


def bench_packet_path(entries: int = 1000, lookups: int = 1_000_000,
                      linear_lookups: int = 20_000) -> Dict[str, Any]:
    """Indexed ``FlowTable.lookup`` vs. the reference linear scan.

    The linear baseline is sampled with fewer iterations (at 1k entries it
    costs ~100 µs per call) and compared per-lookup; the acceptance bar
    for PR 4 is a ≥ 5× speedup.
    """
    table = _populated_table(entries)
    packets = _packet_fields(entries)
    n_packets = len(packets)

    started = _now()
    for i in range(lookups):
        table.lookup(packets[i % n_packets])
    indexed_s = _now() - started

    started = _now()
    for i in range(linear_lookups):
        table.lookup_linear(packets[i % n_packets])
    linear_s = _now() - started

    indexed_us = indexed_s / lookups * 1e6
    linear_us = linear_s / linear_lookups * 1e6
    return {
        "entries": entries,
        "lookups": lookups,
        "linear_lookups": linear_lookups,
        "indexed_us_per_lookup": round(indexed_us, 3),
        "linear_us_per_lookup": round(linear_us, 3),
        "speedup": round(linear_us / indexed_us, 1) if indexed_us else None,
    }


def bench_microflow_forwarding(flows: int = 256, packets: int = 200_000,
                               drain_every: int = 10_000) -> Dict[str, Any]:
    """Full ``OpenFlowSwitch.on_frame`` cost with a warm microflow cache.

    Replays TCP frames over ``flows`` installed exact-match rules; after
    the first round every packet is a microflow hit. The event queue is
    drained periodically so the forwarding events don't accumulate."""
    from repro.netsim import ETH_TYPE_IP, EthernetFrame, IPv4Packet, TCPSegment, ip, mac
    from repro.netsim.packet import IP_PROTO_TCP
    from repro.openflow import FlowEntry, Match, OutputAction
    from repro.openflow.switch import OpenFlowSwitch
    from repro.simcore import Simulator

    sim = Simulator()
    switch = OpenFlowSwitch(sim, "bench-sw", dpid=1)
    frames = []
    for i in range(flows):
        dst = f"172.16.{i // 256 % 256}.{i % 256}"
        switch.table.install(FlowEntry(
            match=Match(eth_type=0x0800, ip_proto=6, ipv4_dst=dst, tcp_dst=80),
            priority=100, actions=[OutputAction(1)]))
        seg = TCPSegment(src_port=40000, dst_port=80)
        pkt = IPv4Packet(src=ip("10.0.0.1"), dst=ip(dst), proto=IP_PROTO_TCP,
                         payload=seg)
        frames.append(EthernetFrame(src=mac(1), dst=mac(2),
                                    ethertype=ETH_TYPE_IP, payload=pkt))

    started = _now()
    for i in range(packets):
        switch.on_frame(2, frames[i % flows])
        if i % drain_every == drain_every - 1:
            sim.run()
    sim.run()
    elapsed = _now() - started
    return {
        "flows": flows,
        "packets": packets,
        "us_per_packet": round(elapsed / packets * 1e6, 3),
        "microflow_hit_rate": round(switch.microflow_hit_rate, 4),
    }


def bench_flow_churn(resident: int = 1000, cycles: int = 20_000) -> Dict[str, Any]:
    """Install/strict-delete cycles against a full table.

    Exercises exactly what the exact-match index fixed: install-overlap
    detection and ``OFPFC_DELETE_STRICT``, both previously O(n) scans."""
    from repro.openflow import FlowEntry, Match, OutputAction

    table = _populated_table(resident)
    churn_match = Match(eth_type=0x0800, ip_proto=6,
                        ipv4_src="192.168.0.1", ipv4_dst="192.168.1.1",
                        tcp_dst=443)
    started = _now()
    for _ in range(cycles):
        table.install(FlowEntry(match=churn_match, priority=50,
                                actions=[OutputAction(2)]))
        table.delete(churn_match, strict=True, priority=50)
    elapsed = _now() - started
    return {
        "resident_entries": resident,
        "cycles": cycles,
        "us_per_cycle": round(elapsed / cycles * 1e6, 3),
    }


def bench_event_loop(events: int = 100_000) -> Dict[str, Any]:
    """Schedule + run ``events`` no-op events through ``Simulator.run``."""
    from repro.simcore import Simulator

    sim = Simulator()
    callback: Callable[[], None] = lambda: None
    started = _now()
    for i in range(events):
        sim.schedule(i * 1e-6, callback)
    sim.run()
    elapsed = _now() - started
    assert sim.events_executed == events
    return {
        "events": events,
        "us_per_event": round(elapsed / events * 1e6, 3),
    }


def bench_end_to_end() -> Dict[str, Any]:
    """Wall time of representative experiment drivers (serial, in-process),
    with the hot-path work they cost (from :mod:`repro.metrics.perf`)."""
    from repro.experiments import parta, partb

    drivers: List[Any] = [
        ("parta.a3_controller_scaling", parta.a3_controller_scaling),
        ("parta.a4_flowtable_occupancy", parta.a4_flowtable_occupancy),
        ("partb.fig11_scale_up", lambda: partb.fig11_scale_up(repeats=7)),
    ]
    out: Dict[str, Any] = {}
    for name, driver in drivers:
        before = perf.snapshot()
        started = _now()
        driver()
        elapsed = _now() - started
        counters = perf.delta(before)
        out[name] = {
            "wall_s": round(elapsed, 3),
            "sim_events": counters.events_executed,
            "flow_lookups": counters.flow_lookups,
            "microflow_hit_rate": round(counters.microflow_hit_rate, 4),
        }
    return out


# -------------------------------------------------------------- harness


def run_benchmarks(smoke: bool = False) -> Dict[str, Any]:
    """Run the whole suite; ``smoke`` shrinks iteration counts for CI."""
    if smoke:
        packet = bench_packet_path(lookups=50_000, linear_lookups=2_000)
        microflow = bench_microflow_forwarding(packets=20_000)
        churn = bench_flow_churn(cycles=2_000)
        loop = bench_event_loop(events=20_000)
    else:
        packet = bench_packet_path()
        microflow = bench_microflow_forwarding()
        churn = bench_flow_churn()
        loop = bench_event_loop()
    return {
        "schema": SCHEMA,
        "pr": 4,
        "smoke": smoke,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix_s": round(time.time(), 1),  # repro: noqa[REP001] host-side stamp
        "benchmarks": {
            "packet_path": packet,
            "microflow_forwarding": microflow,
            "flow_churn": churn,
            "event_loop": loop,
            "end_to_end": bench_end_to_end(),
        },
    }


def write_record(record: Dict[str, Any], path: str = DEFAULT_OUT) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
