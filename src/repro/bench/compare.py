"""Compare two bench records: per-benchmark deltas and a regression gate.

``python -m repro.bench --compare OLD.json`` runs the suite and diffs the
fresh record against ``OLD.json``; ``--against NEW.json`` diffs two
existing files without running anything. A regression is any shared
``us_per_*`` (time-per-operation) metric that grew by more than
``--max-regress-pct`` percent — lower is better for those by construction.

The reader is backward compatible: ``repro-bench/1`` records (``BENCH_4``)
have no ``meta`` block and fewer benchmarks; comparison simply covers the
metrics both records share, and reports the added/removed ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

#: schemas this reader understands (newest last)
KNOWN_SCHEMAS = ("repro-bench/1", "repro-bench/2")

#: substring marking a gated lower-is-better metric
GATED_MARKER = "us_per"


def load_record(path: str) -> Dict[str, Any]:
    """Load and validate a bench record of any known schema.

    ``repro-bench/1`` records are normalized to the v2 shape (an empty
    ``meta`` block) so downstream code has one format to handle.
    """
    with open(path, encoding="utf-8") as handle:
        record: Dict[str, Any] = json.load(handle)
    schema = record.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(f"{path}: unknown bench schema {schema!r} "
                         f"(known: {', '.join(KNOWN_SCHEMAS)})")
    record.setdefault("meta", {})
    record.setdefault("benchmarks", {})
    return record


def flatten_metrics(record: Dict[str, Any]) -> Dict[str, float]:
    """``benchmarks`` flattened to dotted-path -> numeric value."""
    out: Dict[str, float] = {}

    def walk(prefix: str, node: Dict[str, Any]) -> None:
        for key, value in sorted(node.items()):
            if isinstance(value, dict):
                walk(f"{prefix}{key}.", value)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                out[prefix + key] = float(value)

    walk("", record["benchmarks"])
    return out


def is_gated(metric: str) -> bool:
    """Whether a metric participates in the regression gate."""
    return GATED_MARKER in metric.rsplit(".", 1)[-1]


def compare(old: Dict[str, Any], new: Dict[str, Any],
            max_regress_pct: float = 20.0) -> Tuple[List[str], List[str]]:
    """Diff two records; returns (report lines, regression descriptions).

    Regressions are empty iff no shared gated metric grew beyond
    ``max_regress_pct`` percent.
    """
    old_metrics = flatten_metrics(old)
    new_metrics = flatten_metrics(new)
    lines: List[str] = []
    regressions: List[str] = []

    lines.append(f"old: schema={old.get('schema')} pr={old.get('pr')} "
                 f"smoke={old.get('smoke')} "
                 f"commit={old.get('meta', {}).get('git_commit')}")
    lines.append(f"new: schema={new.get('schema')} pr={new.get('pr')} "
                 f"smoke={new.get('smoke')} "
                 f"commit={new.get('meta', {}).get('git_commit')}")
    if old.get("smoke") != new.get("smoke"):
        lines.append("warning: comparing smoke and full records — iteration "
                     "counts differ, deltas are indicative only")
    for which, record in (("old", old), ("new", new)):
        if record.get("meta", {}).get("git_dirty"):
            lines.append(f"warning: {which} record was generated from a dirty "
                         "working tree — its commit does not reproduce it")
    lines.append("")

    shared = sorted(set(old_metrics) & set(new_metrics))
    width = max((len(name) for name in shared), default=0)
    for name in shared:
        before, after = old_metrics[name], new_metrics[name]
        if before:
            pct = (after - before) / before * 100.0
            delta = f"{pct:+7.1f}%"
        else:
            delta = "    n/a" if after else "   +0.0%"
        gated = is_gated(name)
        marker = " "
        if gated and before and after > before * (1.0 + max_regress_pct / 100.0):
            marker = "!"
            regressions.append(
                f"{name}: {before:g} -> {after:g} "
                f"({(after - before) / before * 100.0:+.1f}% > "
                f"+{max_regress_pct:g}% allowed)")
        lines.append(f"{marker} {name:<{width}}  {before:>12g} -> {after:>12g}"
                     f"  {delta}{'  [gated]' if gated else ''}")

    added = sorted(set(new_metrics) - set(old_metrics))
    removed = sorted(set(old_metrics) - set(new_metrics))
    if added:
        lines.append("")
        lines.append(f"only in new ({len(added)}): " + ", ".join(added))
    if removed:
        lines.append("")
        lines.append(f"only in old ({len(removed)}): " + ", ".join(removed))
    return lines, regressions


def dirty_meta_failures(record: Dict[str, Any], label: str = "record") -> List[str]:
    """Clean-meta gate: a record whose ``meta.git_dirty`` is true was
    generated from a tree with uncommitted changes, so its ``git_commit``
    does not reproduce its numbers. ``None`` (no meta / outside git) passes
    — only a positive dirty stamp fails the gate."""
    if record.get("meta", {}).get("git_dirty"):
        commit = record.get("meta", {}).get("git_commit")
        return [f"{label}: meta.git_dirty=true (commit={commit}) — "
                "regenerate the record from a clean committed tree"]
    return []


def memory_budget_failures(record: Dict[str, Any]) -> List[str]:
    """Benchmarks in ``record`` that overran their declared memory budget."""
    failures: List[str] = []
    for name, bench in sorted(record["benchmarks"].items()):
        if not isinstance(bench, dict) or "within_budget" not in bench:
            continue
        if not bench["within_budget"]:
            failures.append(
                f"{name}: peak_tracemalloc_mb={bench.get('peak_tracemalloc_mb')} "
                f"> budget_mb={bench.get('budget_mb')}")
    return failures
