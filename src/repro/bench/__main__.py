"""CLI entry point: ``python -m repro.bench [--smoke] [--compare OLD.json]``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.bench import DEFAULT_OUT, run_benchmarks, write_record
from repro.bench.compare import (
    compare,
    dirty_meta_failures,
    load_record,
    memory_budget_failures,
)


def _gate(record: Dict[str, Any], old_path: Optional[str],
          max_regress_pct: float, enforce_memory_budget: bool,
          enforce_clean_meta: bool = False) -> int:
    """Apply the comparison and budget gates; returns the exit code."""
    status = 0
    if enforce_clean_meta:
        failures = dirty_meta_failures(record, "record")
        if old_path is not None:
            failures += dirty_meta_failures(load_record(old_path), "baseline")
        if failures:
            print("\nFAIL: dirty-tree bench record:", file=sys.stderr)
            for item in failures:
                print(f"  {item}", file=sys.stderr)
            status = 1
        else:
            print("bench meta is clean (git_dirty not set)")
    if old_path is not None:
        old = load_record(old_path)
        lines, regressions = compare(old, record, max_regress_pct)
        print(f"\n=== compare vs {old_path} "
              f"(gate: us_per_* within +{max_regress_pct:g}%) ===")
        for line in lines:
            print(line)
        if regressions:
            print(f"\nFAIL: {len(regressions)} regressed metric(s):",
                  file=sys.stderr)
            for item in regressions:
                print(f"  {item}", file=sys.stderr)
            status = 1
        else:
            print("\nno gated regressions")
    if enforce_memory_budget:
        failures = memory_budget_failures(record)
        if failures:
            print("\nFAIL: memory budget exceeded:", file=sys.stderr)
            for item in failures:
                print(f"  {item}", file=sys.stderr)
            status = 1
        else:
            print("memory budgets respected")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the hot-path microbenchmark suite and write a "
                    "machine-readable perf record.")
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk iteration counts (CI-friendly, ~seconds)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=None, metavar="X",
                        help="exit non-zero unless the packet-path speedup "
                             "over the linear scan is at least X")
    parser.add_argument("--compare", type=str, default=None, metavar="OLD.json",
                        help="after running, diff against this older record "
                             "and exit non-zero if any shared us_per_* metric "
                             "regressed past --max-regress-pct")
    parser.add_argument("--against", type=str, default=None, metavar="NEW.json",
                        help="don't run anything: diff --compare OLD.json "
                             "against this record (both must exist)")
    parser.add_argument("--max-regress-pct", type=float, default=20.0,
                        metavar="PCT",
                        help="allowed growth for gated us_per_* metrics "
                             "(default: %(default)s)")
    parser.add_argument("--enforce-memory-budget", action="store_true",
                        help="exit non-zero if any benchmark reports "
                             "within_budget=false")
    parser.add_argument("--enforce-clean-meta", action="store_true",
                        help="exit non-zero if the record (or the --compare "
                             "baseline) was generated from a dirty tree "
                             "(meta.git_dirty=true)")
    parser.add_argument("--series", type=int, default=None, metavar="N",
                        help="stamp the record as PR series N instead of the "
                             "tree's BENCH_SERIES (and default --out to "
                             "BENCH_N.json): regenerates an older committed "
                             "baseline from the current tree")
    args = parser.parse_args(argv)

    if args.against is not None:
        if args.compare is None:
            parser.error("--against NEW.json requires --compare OLD.json")
        record = load_record(args.against)
        return _gate(record, args.compare, args.max_regress_pct,
                     args.enforce_memory_budget, args.enforce_clean_meta)

    record = run_benchmarks(smoke=args.smoke)
    if args.series is not None:
        record["pr"] = args.series
        if args.out == DEFAULT_OUT:
            args.out = f"BENCH_{args.series}.json"
    write_record(record, args.out)
    json.dump(record, sys.stdout, indent=2)
    print()
    print(f"wrote {args.out}")
    status = 0
    if args.min_speedup is not None:
        speedup = record["benchmarks"]["packet_path"]["speedup"]
        if speedup is None or speedup < args.min_speedup:
            print(f"FAIL: packet-path speedup {speedup} < required "
                  f"{args.min_speedup}", file=sys.stderr)
            status = 1
    status = max(status, _gate(record, args.compare, args.max_regress_pct,
                               args.enforce_memory_budget,
                               args.enforce_clean_meta))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
