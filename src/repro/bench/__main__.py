"""CLI entry point: ``python -m repro.bench [--smoke] [--out BENCH_4.json]``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench import DEFAULT_OUT, run_benchmarks, write_record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the hot-path microbenchmark suite and write a "
                    "machine-readable perf record.")
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk iteration counts (CI-friendly, ~seconds)")
    parser.add_argument("--out", type=str, default=DEFAULT_OUT,
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=None, metavar="X",
                        help="exit non-zero unless the packet-path speedup "
                             "over the linear scan is at least X")
    args = parser.parse_args(argv)
    record = run_benchmarks(smoke=args.smoke)
    write_record(record, args.out)
    json.dump(record, sys.stdout, indent=2)
    print()
    print(f"wrote {args.out}")
    if args.min_speedup is not None:
        speedup = record["benchmarks"]["packet_path"]["speedup"]
        if speedup is None or speedup < args.min_speedup:
            print(f"FAIL: packet-path speedup {speedup} < required "
                  f"{args.min_speedup}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
