"""Control-plane recovery metrics (detection, resync, reconciliation).

One :class:`RecoveryLog` per controller runtime (owned by the
:class:`~repro.ryuapp.manager.AppManager`) records two kinds of event:

* **detections** — the heartbeat declared a datapath unreachable.
  ``detection_s`` is the lag between the channel actually going down and
  the heartbeat noticing (``None`` when the channel object exposes no
  outage timestamp — e.g. the controller process itself crashed, so
  nobody was watching).
* **resyncs** — a warm-restarted (or channel-revived) controller finished
  reconciling one datapath's flow state: how long it took, how many flows
  the stats snapshot contained, how many were adopted back into
  FlowMemory, how many were garbage-collected, and how many packet-ins
  were buffered/expired while the resync was in flight.

Everything is plain data so experiment drivers can aggregate across runs;
:meth:`RecoveryLog.summary` flattens the common aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DetectionEvent:
    """The heartbeat declared one datapath dead."""

    dpid: int
    at: float
    #: seconds between the channel going down and detection (None when
    #: the outage start was not observable)
    detection_s: Optional[float]


@dataclass(frozen=True)
class ResyncEvent:
    """One datapath finished flow-state reconciliation."""

    dpid: int
    #: controller epoch the resync ran under
    epoch: int
    started_at: float
    finished_at: float
    #: flow entries in the stats snapshot
    flows_seen: int
    #: prior-epoch flows adopted (kept serving, re-memorized)
    flows_reconciled: int
    #: prior-epoch flows deleted (dead instance / unrecognizable)
    flows_gcd: int
    #: packet-ins buffered during the resync and replayed after it
    packet_ins_buffered: int
    #: packet-ins expired because the resync buffer was full
    packet_ins_dropped: int

    @property
    def resync_s(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class RecoveryLog:
    """Accumulating log of liveness detections and resync completions."""

    detections: List[DetectionEvent] = field(default_factory=list)
    resyncs: List[ResyncEvent] = field(default_factory=list)

    def record_detection(self, dpid: int, at: float,
                         detection_s: Optional[float]) -> None:
        self.detections.append(DetectionEvent(dpid=dpid, at=at,
                                              detection_s=detection_s))

    def record_resync(self, dpid: int, epoch: int, started_at: float,
                      finished_at: float, flows_seen: int,
                      flows_reconciled: int, flows_gcd: int,
                      packet_ins_buffered: int,
                      packet_ins_dropped: int) -> None:
        self.resyncs.append(ResyncEvent(
            dpid=dpid, epoch=epoch, started_at=started_at,
            finished_at=finished_at, flows_seen=flows_seen,
            flows_reconciled=flows_reconciled, flows_gcd=flows_gcd,
            packet_ins_buffered=packet_ins_buffered,
            packet_ins_dropped=packet_ins_dropped))

    # ------------------------------------------------------------ aggregates

    def summary(self) -> Dict[str, float]:
        """Flat aggregates for run reports and experiment CSV rows."""
        detection_samples = [d.detection_s for d in self.detections
                             if d.detection_s is not None]
        resync_samples = [r.resync_s for r in self.resyncs]
        return {
            "detections": float(len(self.detections)),
            "detection_mean_s": (sum(detection_samples) / len(detection_samples)
                                 if detection_samples else 0.0),
            "detection_max_s": max(detection_samples, default=0.0),
            "resyncs": float(len(self.resyncs)),
            "resync_mean_s": (sum(resync_samples) / len(resync_samples)
                              if resync_samples else 0.0),
            "resync_max_s": max(resync_samples, default=0.0),
            "flows_reconciled": float(sum(r.flows_reconciled for r in self.resyncs)),
            "flows_gcd": float(sum(r.flows_gcd for r in self.resyncs)),
            "packet_ins_buffered": float(sum(r.packet_ins_buffered for r in self.resyncs)),
            "packet_ins_dropped": float(sum(r.packet_ins_dropped for r in self.resyncs)),
        }
