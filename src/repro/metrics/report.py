"""ASCII renderers for the regenerated tables and figures.

Experiments return :class:`Table` (rows × columns, for Table I and the
grouped bar charts of figs. 11–16) or :class:`Series` (time series, for the
trace histograms of figs. 9–10); the renderers print them the way the
benchmark harness and EXPERIMENTS.md present results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def format_seconds(value: float) -> str:
    """Human scale: µs/ms/s as appropriate."""
    if value < 0:
        return f"-{format_seconds(-value)}"
    if value < 1e-3:
        return f"{value * 1e6:.0f} µs"
    if value < 1.0:
        return f"{value * 1e3:.1f} ms"
    return f"{value:.2f} s"


@dataclass
class Table:
    """A titled grid: named columns, list-of-dict rows.

    ``time_columns`` names the columns holding seconds (rendered with
    :func:`format_seconds`); ``None`` applies a name heuristic.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    note: str = ""
    time_columns: Optional[set] = None

    def is_time_column(self, name: str) -> bool:
        if self.time_columns is not None:
            return name in self.time_columns
        return (name.endswith("_s") or name.endswith("_median")
                or name in ("median", "p25", "p75", "p95", "max", "min",
                            "mean", "overhead_vs_fast", "time_total"))

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: Any) -> Optional[Dict[str, Any]]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        return None


@dataclass
class Series:
    """A titled (x, y) series (e.g. a per-second histogram)."""

    title: str
    x_label: str
    y_label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    note: str = ""

    def add(self, x: float, y: float) -> None:
        self.x.append(x)
        self.y.append(y)

    @property
    def total(self) -> float:
        return float(sum(self.y))

    @property
    def peak(self) -> float:
        return float(max(self.y)) if self.y else 0.0


def _cell(value: Any, is_time: bool) -> str:
    if isinstance(value, float):
        if is_time and 0 < abs(value) < 1e4:
            return format_seconds(value)
        return f"{value:g}"
    return str(value)


def render_table(table: Table) -> str:
    """Fixed-width ASCII rendering."""
    headers = table.columns
    grid = [[_cell(row.get(col, ""), table.is_time_column(col)) for col in headers]
            for row in table.rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in grid)) if grid else len(headers[i])
              for i in range(len(headers))]
    lines = [table.title, "=" * len(table.title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    if table.note:
        lines.append(f"note: {table.note}")
    return "\n".join(lines)


def table_to_csv(table: Table) -> str:
    """CSV rendering (raw values, no unit formatting) for downstream
    plotting tools."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=table.columns,
                            extrasaction="ignore")
    writer.writeheader()
    for row in table.rows:
        writer.writerow({col: row.get(col, "") for col in table.columns})
    return buffer.getvalue()


def series_to_csv(series: Series) -> str:
    """CSV rendering of an (x, y) series."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([series.x_label, series.y_label])
    for x, y in zip(series.x, series.y, strict=True):
        writer.writerow([x, y])
    return buffer.getvalue()


def render_series(series: Series, width: int = 60) -> str:
    """Sparkline-style histogram rendering."""
    lines = [series.title, "=" * len(series.title),
             f"{series.x_label} -> {series.y_label} "
             f"(total={series.total:g}, peak={series.peak:g})"]
    peak = series.peak or 1.0
    # Bucket down to `width` columns if needed.
    n = len(series.y)
    if n == 0:
        return "\n".join(lines + ["(empty)"])
    step = max(1, n // width)
    for start in range(0, n, step):
        chunk = series.y[start:start + step]
        value = max(chunk)
        bar = "#" * max(0, round(value / peak * 40))
        lines.append(f"{series.x[start]:>8g} | {bar} {value:g}")
    if series.note:
        lines.append(f"note: {series.note}")
    return "\n".join(lines)
