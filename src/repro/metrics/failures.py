"""Failure accounting: one flat counter snapshot across the platform.

The resilience machinery (retries, circuit breakers, cloud fallback — see
docs/faults.md) spreads its bookkeeping over the objects that own it: the
deployment engine counts retries, the dispatcher counts breaker opens and
degraded dispatches, the controller counts released-toward-cloud packet
bursts, the container runtimes count injected crashes. This module flattens
all of that into one dict for experiment drivers and operator tooling.

Everything is duck-typed (``getattr`` with defaults) so the module depends
on no core classes and tolerates partial platforms (e.g. a bare dispatcher
without a controller in unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class FailureCounters:
    """Snapshot of the platform's failure/resilience counters."""

    #: dispatches that degraded toward the cloud after a failed deployment
    dispatch_failures: int = 0
    #: deployment attempts that were retried with backoff
    retries: int = 0
    #: bring-ups that exhausted every attempt
    deploy_exhausted: int = 0
    #: circuit-breaker open transitions across all clusters
    breaker_opens: int = 0
    #: dispatches answered by the cloud instead of an edge
    cloud_fallbacks: int = 0
    #: dead endpoints evicted from FlowMemory (+ their switch flows)
    instances_evicted: int = 0
    #: injected registry pull failures observed by container runtimes
    pull_failures: int = 0
    #: containers crashed (injected or runtime-initiated)
    containers_crashed: int = 0
    #: edge-cluster outage events
    cluster_outages: int = 0
    #: control-channel messages dropped switch->controller (outage windows)
    control_msgs_dropped_up: int = 0
    #: control-channel messages dropped controller->switch
    control_msgs_dropped_down: int = 0
    #: controller process crashes (injected or scheduled)
    controller_crashes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dispatch_failures": self.dispatch_failures,
            "retries": self.retries,
            "deploy_exhausted": self.deploy_exhausted,
            "breaker_opens": self.breaker_opens,
            "cloud_fallbacks": self.cloud_fallbacks,
            "instances_evicted": self.instances_evicted,
            "pull_failures": self.pull_failures,
            "containers_crashed": self.containers_crashed,
            "cluster_outages": self.cluster_outages,
            "control_msgs_dropped_up": self.control_msgs_dropped_up,
            "control_msgs_dropped_down": self.control_msgs_dropped_down,
            "controller_crashes": self.controller_crashes,
        }


def snapshot_failures(controller: Any = None,
                      dispatcher: Any = None,
                      engine: Any = None,
                      clusters: Optional[list] = None) -> FailureCounters:
    """Collect a :class:`FailureCounters` from whatever parts are given.

    Pass a controller and the rest is reached through it; or pass the
    pieces individually (any may be None)."""
    if controller is not None:
        if dispatcher is None:
            dispatcher = getattr(controller, "dispatcher", None)
        if clusters is None and dispatcher is not None:
            clusters = getattr(dispatcher, "clusters", None)
    if engine is None and dispatcher is not None:
        engine = getattr(dispatcher, "engine", None)

    stats = getattr(controller, "stats", {}) if controller is not None else {}
    pull_failures = 0
    crashed = 0
    outages = 0
    for cluster in clusters or []:
        runtime = getattr(cluster, "runtime", None)
        pull_failures += getattr(runtime, "pull_failures", 0)
        crashed += getattr(runtime, "containers_crashed", 0)
        outages += getattr(cluster, "outages", 0)
    manager = getattr(controller, "manager", None) if controller is not None else None
    dropped_up = 0
    dropped_down = 0
    for datapath in getattr(manager, "datapaths", {}).values():
        channel = getattr(datapath, "channel", None)
        dropped_up += getattr(channel, "drops_up", 0)
        dropped_down += getattr(channel, "drops_down", 0)
    return FailureCounters(
        dispatch_failures=stats.get(
            "dispatch_failures", getattr(dispatcher, "deploy_failures", 0)),
        retries=getattr(engine, "retries", 0),
        deploy_exhausted=getattr(engine, "failures", 0),
        breaker_opens=getattr(dispatcher, "breaker_opens", 0),
        cloud_fallbacks=getattr(dispatcher, "cloud_fallbacks", 0),
        instances_evicted=stats.get("instances_evicted", 0),
        pull_failures=pull_failures,
        containers_crashed=crashed,
        cluster_outages=outages,
        control_msgs_dropped_up=dropped_up,
        control_msgs_dropped_down=dropped_down,
        controller_crashes=getattr(manager, "crashes", 0),
    )
