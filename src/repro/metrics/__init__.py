"""Measurement: summary statistics and figure/table renderers."""

from repro.metrics.stats import Summary, summarize
from repro.metrics.report import (
    Table,
    Series,
    render_table,
    render_series,
    format_seconds,
    table_to_csv,
    series_to_csv,
)

__all__ = [
    "Summary",
    "summarize",
    "Table",
    "Series",
    "render_table",
    "render_series",
    "format_seconds",
    "table_to_csv",
    "series_to_csv",
]
