"""Measurement: summary statistics, figure/table renderers, failure counters."""

from repro.metrics import perf
from repro.metrics.failures import FailureCounters, snapshot_failures
from repro.metrics.recovery import DetectionEvent, RecoveryLog, ResyncEvent
from repro.metrics.report import (
    Series,
    Table,
    format_seconds,
    render_series,
    render_table,
    series_to_csv,
    table_to_csv,
)
from repro.metrics.perf import PERF, PerfCounters
from repro.metrics.runtime import ArtifactTiming, RunReport
from repro.metrics.stats import Summary, summarize

__all__ = [
    "perf",
    "PERF",
    "PerfCounters",
    "Summary",
    "summarize",
    "ArtifactTiming",
    "RunReport",
    "FailureCounters",
    "snapshot_failures",
    "RecoveryLog",
    "DetectionEvent",
    "ResyncEvent",
    "Table",
    "Series",
    "render_table",
    "render_series",
    "format_seconds",
    "table_to_csv",
    "series_to_csv",
]
