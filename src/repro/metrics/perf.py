"""Process-global hot-path performance counters.

The substrate's hot paths (event loop, flow-table lookup, per-switch
microflow cache) each keep *per-instance* counters for tests and stats
replies. This module aggregates the same increments into one
process-global :class:`PerfCounters` so the experiment runner can report,
per regenerated artifact, how much simulation work it cost — without
holding references to every simulator, table, and switch a driver builds.

The counters are observability only: nothing in any simulation reads them
back, so they cannot perturb determinism. Worker processes carry their own
instance; :mod:`repro.experiments.pool` snapshots it around each cell and
ships the delta back to the parent with the cell result.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PerfCounters", "PERF", "snapshot", "delta"]


@dataclass
class PerfCounters:
    """Additive counters for the simulation hot paths.

    ``+``/``-`` compose snapshots: ``after - before`` is the cost of the
    work in between, and worker deltas sum into a run total with ``+``.
    """

    events_executed: int = 0
    flow_lookups: int = 0
    flow_hits: int = 0
    microflow_hits: int = 0
    microflow_misses: int = 0

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            events_executed=self.events_executed + other.events_executed,
            flow_lookups=self.flow_lookups + other.flow_lookups,
            flow_hits=self.flow_hits + other.flow_hits,
            microflow_hits=self.microflow_hits + other.microflow_hits,
            microflow_misses=self.microflow_misses + other.microflow_misses,
        )

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            events_executed=self.events_executed - other.events_executed,
            flow_lookups=self.flow_lookups - other.flow_lookups,
            flow_hits=self.flow_hits - other.flow_hits,
            microflow_hits=self.microflow_hits - other.microflow_hits,
            microflow_misses=self.microflow_misses - other.microflow_misses,
        )

    @property
    def microflow_packets(self) -> int:
        return self.microflow_hits + self.microflow_misses

    @property
    def microflow_hit_rate(self) -> float:
        """Fraction of datapath packets answered by a microflow cache."""
        packets = self.microflow_packets
        return self.microflow_hits / packets if packets else 0.0

    def as_dict(self) -> dict:
        return {
            "events_executed": self.events_executed,
            "flow_lookups": self.flow_lookups,
            "flow_hits": self.flow_hits,
            "microflow_hits": self.microflow_hits,
            "microflow_misses": self.microflow_misses,
            "microflow_hit_rate": self.microflow_hit_rate,
        }


#: the live counters for this process; hot paths increment fields directly
PERF = PerfCounters()


def snapshot() -> PerfCounters:
    """Copy of the current process-global counters."""
    return PerfCounters(
        events_executed=PERF.events_executed,
        flow_lookups=PERF.flow_lookups,
        flow_hits=PERF.flow_hits,
        microflow_hits=PERF.microflow_hits,
        microflow_misses=PERF.microflow_misses,
    )


def delta(before: PerfCounters) -> PerfCounters:
    """Counters accumulated since ``before`` was snapshotted."""
    return snapshot() - before
