"""Process-global hot-path performance counters.

The substrate's hot paths (event loop, flow-table lookup, per-switch
microflow cache) each keep *per-instance* counters for tests and stats
replies. This module aggregates the same increments into one
process-global :class:`PerfCounters` so the experiment runner can report,
per regenerated artifact, how much simulation work it cost — without
holding references to every simulator, table, and switch a driver builds.

The counters are observability only: nothing in any simulation reads them
back, so they cannot perturb determinism. Worker processes carry their own
instance; :mod:`repro.experiments.pool` snapshots it around each cell and
ships the delta back to the parent with the cell result.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PerfCounters", "PERF", "snapshot", "delta"]


@dataclass
class PerfCounters:
    """Additive counters for the simulation hot paths.

    ``+``/``-`` compose snapshots: ``after - before`` is the cost of the
    work in between, and worker deltas sum into a run total with ``+``.

    The ``microflow_evictions``/``microflow_flushes`` and ``memo_*``
    fields account for the fine-grained revalidation layer: surgical
    per-key evictions vs wholesale flushes on the switch caches, and
    token revalidations vs invalidations/flushes on the controller memos
    (see docs/performance.md, "Revalidation").
    """

    events_executed: int = 0
    flow_lookups: int = 0
    flow_hits: int = 0
    microflow_hits: int = 0
    microflow_misses: int = 0
    microflow_evictions: int = 0
    microflow_flushes: int = 0
    memo_revalidations: int = 0
    memo_invalidations: int = 0
    memo_flushes: int = 0

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(**{
            f.name: getattr(self, f.name) - getattr(other, f.name)
            for f in fields(self)
        })

    @property
    def microflow_packets(self) -> int:
        return self.microflow_hits + self.microflow_misses

    @property
    def microflow_hit_rate(self) -> float:
        """Fraction of datapath packets answered by a microflow cache."""
        packets = self.microflow_packets
        return self.microflow_hits / packets if packets else 0.0

    def as_dict(self) -> dict:
        record: dict = {f.name: getattr(self, f.name) for f in fields(self)}
        record["microflow_hit_rate"] = self.microflow_hit_rate
        return record


#: the live counters for this process; hot paths increment fields directly
PERF = PerfCounters()


def snapshot() -> PerfCounters:
    """Copy of the current process-global counters."""
    return PerfCounters(**{f.name: getattr(PERF, f.name) for f in fields(PERF)})


def delta(before: PerfCounters) -> PerfCounters:
    """Counters accumulated since ``before`` was snapshotted."""
    return snapshot() - before
