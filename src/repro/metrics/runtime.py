"""Per-artifact runtime accounting for the experiment runner.

The runner records, for every regenerated artifact, its wall time, CPU
time (parent process plus worker-pool children), how many cells it fanned
out, and whether the on-disk cache answered. :class:`RunReport` aggregates
those into the summary table the runner prints after the artifacts — the
observability half of the parallel/cache execution layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.metrics.perf import PerfCounters
from repro.metrics.report import Table, render_table

__all__ = ["ArtifactTiming", "RunReport"]


@dataclass(frozen=True)
class ArtifactTiming:
    """Runtime record for one regenerated artifact.

    ``perf`` carries the hot-path work the artifact cost — simulator events
    executed, flow-table lookups/hits, microflow cache hit rate — summed
    over the parent process and any pool workers, so a perf regression
    (e.g. a lookup suddenly missing the index) is visible on every run.
    """

    part: str
    name: str
    wall_s: float
    cpu_s: float
    cells: int = 0
    cache_hit: bool = False
    perf: PerfCounters = field(default_factory=PerfCounters)


@dataclass
class RunReport:
    """Aggregated runtime/cache accounting for one runner invocation."""

    jobs: int = 1
    timings: List[ArtifactTiming] = field(default_factory=list)
    cache_enabled: bool = False
    cache_stores: int = 0

    def add(self, timing: ArtifactTiming) -> None:
        self.timings.append(timing)

    @property
    def artifacts(self) -> int:
        return len(self.timings)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for t in self.timings if not t.cache_hit)

    @property
    def total_wall_s(self) -> float:
        return sum(t.wall_s for t in self.timings)

    @property
    def total_cpu_s(self) -> float:
        return sum(t.cpu_s for t in self.timings)

    @property
    def total_cells(self) -> int:
        return sum(t.cells for t in self.timings)

    @property
    def total_perf(self) -> PerfCounters:
        total = PerfCounters()
        for timing in self.timings:
            total = total + timing.perf
        return total

    def as_table(self) -> Table:
        table = Table(
            title="Runner summary — wall/CPU/hot-path work per artifact",
            columns=["part", "artifact", "wall_s", "cpu_s", "cells", "cache",
                     "events", "lookups", "mf_hit_pct", "mf_evict", "mf_flush"],
            time_columns={"wall_s", "cpu_s"},
        )
        for timing in self.timings:
            table.add(part=timing.part, artifact=timing.name,
                      wall_s=timing.wall_s, cpu_s=timing.cpu_s,
                      cells=timing.cells,
                      cache="hit" if timing.cache_hit else "miss",
                      events=timing.perf.events_executed,
                      lookups=timing.perf.flow_lookups,
                      mf_hit_pct=round(100.0 * timing.perf.microflow_hit_rate, 1),
                      mf_evict=timing.perf.microflow_evictions,
                      mf_flush=timing.perf.microflow_flushes)
        cache_note = (f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
                      f"/ {self.cache_stores} stores" if self.cache_enabled
                      else "cache: disabled")
        perf = self.total_perf
        table.note = (f"jobs={self.jobs}; {self.artifacts} artifacts in "
                      f"{self.total_wall_s:.1f}s wall / {self.total_cpu_s:.1f}s CPU; "
                      f"{self.total_cells} cells; {cache_note}; "
                      f"{perf.events_executed} sim events, "
                      f"{perf.flow_lookups} table lookups, "
                      f"microflow hit rate {100.0 * perf.microflow_hit_rate:.1f}% "
                      f"({perf.microflow_evictions} surgical evictions, "
                      f"{perf.microflow_flushes} flushes); "
                      f"memo revalidation: {perf.memo_revalidations} kept, "
                      f"{perf.memo_invalidations} invalidated, "
                      f"{perf.memo_flushes} flushes")
        return table

    def render(self) -> str:
        return render_table(self.as_table())
