"""Summary statistics over timing samples.

The paper reports medians (figs. 11–16); :class:`Summary` carries the median
plus the spread statistics a careful reproduction should look at.

:class:`StreamingStats` is the constant-memory counterpart for the
million-request scale path: Welford mean/variance (exact) plus a fixed-size
log-spaced latency histogram (deterministic, bin-resolution quantiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    median: float
    mean: float
    p25: float
    p75: float
    p95: float
    minimum: float
    maximum: float
    std: float

    def __str__(self) -> str:
        return (f"n={self.count} median={self.median:.6f} mean={self.mean:.6f} "
                f"p95={self.p95:.6f} min={self.minimum:.6f} max={self.maximum:.6f}")


def summarize(samples: Iterable[float]) -> Summary:
    """Summarize a non-empty sample (raises ValueError on empty input)."""
    array = np.asarray(list(samples), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(array.size),
        median=float(np.median(array)),
        mean=float(array.mean()),
        p25=float(np.percentile(array, 25)),
        p75=float(np.percentile(array, 75)),
        p95=float(np.percentile(array, 95)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        # Sample standard deviation (ddof=1): these are repeats drawn from a
        # seeded population, and with quick-mode n=7 the population formula
        # (ddof=0) understates spread noticeably. n=1 has no spread estimate.
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
    )


class StreamingStats:
    """Constant-memory sample aggregation.

    Exact: count, mean, sample std (Welford, ddof=1 to match
    :func:`summarize`), min, max. Approximate: quantiles, answered from a
    fixed log-spaced histogram spanning ``LOW``..``HIGH`` seconds at
    ``BINS_PER_DECADE`` bins per decade — worst-case relative error is one
    bin width (``10**(1/32) - 1`` ≈ 7.5%), and the answer is deterministic
    for a given sample sequence. Values outside the span land in under/
    overflow bins and are answered with the exact min/max.

    Memory is O(1): three floats, two ints, and a 256-slot count array —
    regardless of how many samples stream through.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum",
                 "_bins", "_underflow", "_overflow")

    #: histogram span (seconds): 10 µs .. 1000 s, 8 decades
    LOW = 1e-5
    HIGH = 1e3
    BINS_PER_DECADE = 32
    N_BINS = 8 * BINS_PER_DECADE

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._bins = [0] * self.N_BINS
        self._underflow = 0
        self._overflow = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value < self.LOW:
            self._underflow += 1
        elif value >= self.HIGH:
            self._overflow += 1
        else:
            index = int(math.log10(value / self.LOW) * self.BINS_PER_DECADE)
            # Guard the float boundary (log10 rounding at bin edges).
            if index >= self.N_BINS:
                index = self.N_BINS - 1
            self._bins[index] += 1

    def merge(self, other: "StreamingStats") -> None:
        """Fold ``other`` into this accumulator (parallel Welford).

        The moment combination is Chan et al.'s pairwise update — exact
        up to float rounding — and the histograms/extremes add directly,
        so quantiles answered after a merge are identical to streaming
        the same samples through one accumulator. Deterministic for a
        fixed merge order (the domain-sharded scale path merges
        per-domain stats in domain-id order).
        """
        if other.count == 0:
            return
        if self.count == 0:
            total, mean, m2 = other.count, other.mean, other._m2
        else:
            delta = other.mean - self.mean
            total = self.count + other.count
            mean = self.mean + delta * other.count / total
            m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        self.count, self.mean, self._m2 = total, mean, m2
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        for index, hits in enumerate(other._bins):
            self._bins[index] += hits
        self._underflow += other._underflow
        self._overflow += other._overflow

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 below two samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def _bin_value(self, index: int) -> float:
        """Geometric midpoint of bin ``index``."""
        lo = self.LOW * 10 ** (index / self.BINS_PER_DECADE)
        hi = self.LOW * 10 ** ((index + 1) / self.BINS_PER_DECADE)
        return math.sqrt(lo * hi)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the histogram (deterministic)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            raise ValueError("cannot take a quantile of an empty sample")
        target = q * (self.count - 1)
        cumulative = self._underflow
        value = self.minimum
        if cumulative <= target:
            for index, hits in enumerate(self._bins):
                if not hits:
                    continue
                cumulative += hits
                if cumulative > target:
                    value = self._bin_value(index)
                    break
            else:
                value = self.maximum
        # Exact extremes always bound the answer.
        return min(max(value, self.minimum), self.maximum)

    def summary(self) -> Summary:
        """A :class:`Summary` with exact moments and histogram quantiles."""
        if self.count == 0:
            raise ValueError("cannot summarize an empty sample")
        return Summary(
            count=self.count,
            median=self.quantile(0.5),
            mean=self.mean,
            p25=self.quantile(0.25),
            p75=self.quantile(0.75),
            p95=self.quantile(0.95),
            minimum=self.minimum,
            maximum=self.maximum,
            std=self.std,
        )
