"""Summary statistics over timing samples.

The paper reports medians (figs. 11–16); :class:`Summary` carries the median
plus the spread statistics a careful reproduction should look at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    median: float
    mean: float
    p25: float
    p75: float
    p95: float
    minimum: float
    maximum: float
    std: float

    def __str__(self) -> str:
        return (f"n={self.count} median={self.median:.6f} mean={self.mean:.6f} "
                f"p95={self.p95:.6f} min={self.minimum:.6f} max={self.maximum:.6f}")


def summarize(samples: Iterable[float]) -> Summary:
    """Summarize a non-empty sample (raises ValueError on empty input)."""
    array = np.asarray(list(samples), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(array.size),
        median=float(np.median(array)),
        mean=float(array.mean()),
        p25=float(np.percentile(array, 25)),
        p75=float(np.percentile(array, 75)),
        p95=float(np.percentile(array, 95)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        # Sample standard deviation (ddof=1): these are repeats drawn from a
        # seeded population, and with quick-mode n=7 the population formula
        # (ddof=0) understates spread noticeably. n=1 has no spread estimate.
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
    )
