"""Static and runtime determinism analysis for the simulation substrate.

The reproduction's headline property — same seed, bit-identical run — is
enforced nowhere by Python itself: one ``time.time()``, one bare
``random.random()``, or one iteration over a ``set`` that leaks into
scheduling order silently breaks it. This package keeps every PR honest:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — a pluggable
  AST lint framework with repo-specific rules (``REP001``..``REP006``),
  inline ``# repro: noqa[RULE]`` suppressions, and pyproject configuration.
  Run it as ``python -m repro.analysis src/repro``.
* :mod:`repro.analysis.sanitizer` — cheap runtime invariant checks the test
  suite can switch on (``REPRO_SANITIZE=1``): event-loop ordering audit,
  FlowMemory referential integrity, and an RNG draw-count ledger.
* :mod:`repro.analysis.determinism` — a harness that runs a small scenario
  twice under two different ``PYTHONHASHSEED`` values and byte-diffs the
  traces, turning "bit-identical" from a claim into a gate.
"""

from repro.analysis.engine import (
    AnalysisConfig,
    FileReport,
    Violation,
    check_paths,
    check_source,
    load_config,
)
from repro.analysis.rules import RULES, Rule, all_rules, get_rule
from repro.analysis.sanitizer import Sanitizer, SanitizerError, active_sanitizer, sanitized

__all__ = [
    "AnalysisConfig",
    "FileReport",
    "RULES",
    "Rule",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "active_sanitizer",
    "all_rules",
    "check_paths",
    "check_source",
    "get_rule",
    "load_config",
    "sanitized",
]
