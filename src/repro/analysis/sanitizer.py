"""Runtime sanitizer: always-on-in-tests invariant checks.

The static rules catch what is visible in the source; this layer catches
what only shows up while a simulation runs. It is installed by patching the
substrate classes (no hot-path cost when off, zero imports from ``simcore``
at module scope are needed by the patched code itself), and enabled either
programmatically::

    from repro.analysis import sanitized
    with sanitized() as san:
        run_experiment()
        assert san.rng_ledger["workload.arrivals"] > 0

or for a whole test run via ``REPRO_SANITIZE=1`` (see tests/conftest.py).

Checks
------
* **Event-loop order audit** — every event executed by a
  :class:`~repro.simcore.loop.Simulator` must be strictly later in
  ``(time, seq)`` than the previous one (FIFO same-time ordering is
  load-bearing) and never before the current clock.
* **Finite delays** — ``schedule()`` rejects NaN/inf delays, which the
  plain heap would silently misplace.
* **FlowMemory referential integrity** — after every mutation, each entry's
  key matches its flow, timestamps are sane, and a ``forget_endpoint`` leaves
  no dangling references to the endpoint.
* **RNG draw-count ledger** — every draw on a named stream is counted, so a
  determinism diff can name the stream that diverged instead of just
  "the traces differ".
* **Post-resync data-plane verification** — after every completed
  crash-recovery/revival resync round, the static verifier
  (:mod:`repro.verify`, docs/verification.md) re-checks invariants V1–V5
  over the controller's reconciled view. The check fires a short grace
  delay after the barrier so GC FlowMods still in flight on the channel
  can land first, and runs with ``strict_cookies=False`` (a FlowRemoved
  lost to the outage is legitimate until the next resync reclaims it).
"""

from __future__ import annotations

import contextlib
import functools
import math
import os
from typing import Any, Callable, Dict, Iterator, Optional, Tuple
import weakref


class SanitizerError(AssertionError):
    """A runtime determinism/integrity invariant was violated."""


#: grace delay between a completed resync barrier and its verification:
#: the GC FlowMods the stats handler emitted are still in flight on the
#: control channel at barrier time (one-way latency ~0.2 ms, but outage
#: replays can stack) — verifying instantly would flag rules the
#: controller already deleted.
VERIFY_GRACE_S = 0.25


_active: Optional["Sanitizer"] = None


def active_sanitizer() -> Optional["Sanitizer"]:
    """The currently installed sanitizer, or None."""
    return _active


class Sanitizer:
    """Installable bundle of runtime invariant checks.

    One instance may be installed at a time; :meth:`install` is idempotent
    per instance and :meth:`uninstall` restores the original methods.
    """

    def __init__(self) -> None:
        self.installed = False
        #: stream name -> number of draws (any Generator method call)
        self.rng_ledger: Dict[str, int] = {}
        #: diagnostic counters per check
        self.checks_run: Dict[str, int] = {
            "event_order": 0, "schedule": 0, "flowmemory": 0, "verify": 0}
        self._originals: Dict[Tuple[type, str], Any] = {}
        #: sim -> (time, seq) of the last executed event
        self._last_event: "weakref.WeakKeyDictionary[Any, Tuple[float, int]]" = (
            weakref.WeakKeyDictionary())
        #: RandomStreams -> {name: proxy} so stream identity stays stable
        self._proxies: "weakref.WeakKeyDictionary[Any, Dict[str, Any]]" = (
            weakref.WeakKeyDictionary())

    # ------------------------------------------------------------- install

    def _patch(self, cls: type, name: str, wrapper: Callable[..., Any]) -> None:
        self._originals[(cls, name)] = getattr(cls, name)
        setattr(cls, name, wrapper)

    def install(self) -> "Sanitizer":
        global _active
        if self.installed:
            return self
        if _active is not None:
            raise SanitizerError("another Sanitizer is already installed")
        from repro.core.controller import TransparentEdgeController
        from repro.core.flowmemory import FlowMemory
        from repro.simcore.loop import Simulator
        from repro.simcore.rng import RandomStreams

        self._install_simulator(Simulator)
        self._install_rng(RandomStreams)
        self._install_flowmemory(FlowMemory)
        self._install_controller(TransparentEdgeController)
        self.installed = True
        _active = self
        return self

    def uninstall(self) -> None:
        global _active
        if not self.installed:
            return
        for (cls, name), original in self._originals.items():
            setattr(cls, name, original)
        self._originals.clear()
        self.installed = False
        if _active is self:
            _active = None

    # ----------------------------------------------------- simulator checks

    def _install_simulator(self, simulator_cls: type) -> None:
        sanitizer = self
        orig_schedule = simulator_cls.schedule
        orig_pop = simulator_cls._pop_alive

        def schedule(sim: Any, delay: float, callback: Callable[..., Any],
                     *args: Any) -> Any:
            sanitizer.checks_run["schedule"] += 1
            if not math.isfinite(delay):
                raise SanitizerError(
                    f"schedule() with non-finite delay {delay!r} — the event "
                    f"heap would order it arbitrarily")
            return orig_schedule(sim, delay, callback, *args)

        def _pop_alive(sim: Any) -> Any:
            handle = orig_pop(sim)
            if handle is not None:
                sanitizer.checks_run["event_order"] += 1
                key = (handle.time, handle.seq)
                last = sanitizer._last_event.get(sim)
                if last is not None and key <= last:
                    raise SanitizerError(
                        f"event order audit: popped (t={handle.time!r}, "
                        f"seq={handle.seq}) after (t={last[0]!r}, "
                        f"seq={last[1]}) — FIFO/heap invariant broken")
                if handle.time < sim.now:
                    raise SanitizerError(
                        f"event order audit: event at t={handle.time!r} "
                        f"popped with clock already at t={sim.now!r}")
                sanitizer._last_event[sim] = key
            return handle

        self._patch(simulator_cls, "schedule", schedule)
        self._patch(simulator_cls, "_pop_alive", _pop_alive)

    # ----------------------------------------------------------- RNG ledger

    def _install_rng(self, streams_cls: type) -> None:
        sanitizer = self
        orig_stream = streams_cls.stream

        def stream(streams: Any, name: str) -> Any:
            gen = orig_stream(streams, name)
            cache = sanitizer._proxies.setdefault(streams, {})
            proxy = cache.get(name)
            if proxy is None or proxy._gen is not gen:
                proxy = _LedgerGenerator(gen, name, sanitizer.rng_ledger)
                cache[name] = proxy
            return proxy

        self._patch(streams_cls, "stream", stream)

    def draw_counts(self) -> Dict[str, int]:
        """Snapshot of the per-stream draw ledger (sorted by stream name)."""
        return {name: self.rng_ledger[name] for name in sorted(self.rng_ledger)}

    # ----------------------------------------------------- FlowMemory checks

    def _install_flowmemory(self, memory_cls: type) -> None:
        sanitizer = self

        def checked(method_name: str) -> Callable[..., Any]:
            original = getattr(memory_cls, method_name)

            def wrapper(memory: Any, *args: Any, **kwargs: Any) -> Any:
                result = original(memory, *args, **kwargs)
                sanitizer._check_flowmemory(memory, method_name, args)
                return result

            return wrapper

        for name in ("remember", "forget", "forget_endpoint", "clear",
                     "_idle_check"):
            self._patch(memory_cls, name, checked(name))

    def _check_flowmemory(self, memory: Any, mutation: str,
                          args: Tuple[Any, ...]) -> None:
        self.checks_run["flowmemory"] += 1
        now = memory.sim.now
        for key, flow in memory._flows.items():
            if flow.key != key:
                raise SanitizerError(
                    f"FlowMemory integrity after {mutation}: entry stored "
                    f"under {key!r} carries key {flow.key!r}")
            if flow.created_at > flow.last_used + 1e-12:
                raise SanitizerError(
                    f"FlowMemory integrity after {mutation}: flow {key!r} "
                    f"created_at {flow.created_at!r} after last_used "
                    f"{flow.last_used!r}")
            if flow.last_used > now + 1e-12:
                raise SanitizerError(
                    f"FlowMemory integrity after {mutation}: flow {key!r} "
                    f"last_used {flow.last_used!r} is in the future "
                    f"(now={now!r})")
        if mutation == "forget_endpoint" and args:
            endpoint = args[0]
            dangling = [key for key, flow in memory._flows.items()
                        if flow.endpoint == endpoint]
            if dangling:
                raise SanitizerError(
                    f"FlowMemory integrity: forget_endpoint({endpoint!r}) "
                    f"left dangling flows {dangling!r}")


    # ------------------------------------------- post-resync verification

    def _install_controller(self, controller_cls: type) -> None:
        sanitizer = self
        orig_barrier = controller_cls.on_barrier_reply

        # functools.wraps copies __dict__, carrying the @set_ev_cls handler
        # marker — without it the AppManager would no longer recognise the
        # patched method as the BarrierReply handler.
        @functools.wraps(orig_barrier)
        def on_barrier_reply(ctrl: Any, ev: Any) -> Any:
            # A round is complete when this barrier pops the last pending
            # per-datapath resync state.
            in_resync = ev.msg.datapath.id in ctrl._resync
            result = orig_barrier(ctrl, ev)
            if in_resync and not ctrl._resync:
                ctrl.sim.schedule(VERIFY_GRACE_S,
                                  sanitizer._verify_after_resync, ctrl)
            return result

        self._patch(controller_cls, "on_barrier_reply", on_barrier_reply)

    def _verify_after_resync(self, ctrl: Any) -> None:
        if not self.installed:
            return  # uninstalled while the grace delay was pending
        if not ctrl.manager.alive or ctrl._resync:
            return  # crashed again / resyncing again; that round re-arms us
        self.checks_run["verify"] += 1
        from repro.verify import verify_control_plane
        report = verify_control_plane(ctrl.manager, ctrl,
                                      strict_cookies=False)
        if not report.ok:
            raise SanitizerError(
                f"post-resync data-plane verification failed:\n"
                f"{report.to_text()}")


class _LedgerGenerator:
    """Counting proxy around a ``numpy.random.Generator``.

    Every method call (a draw, in practice) increments the ledger for the
    stream's name. Attribute reads delegate; state stays in the wrapped
    generator, so determinism is untouched.
    """

    __slots__ = ("_gen", "_name", "_ledger")

    def __init__(self, gen: Any, name: str, ledger: Dict[str, int]):
        object.__setattr__(self, "_gen", gen)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_ledger", ledger)

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._gen, attr)
        if not callable(value):
            return value
        ledger, name = self._ledger, self._name

        def counted(*args: Any, **kwargs: Any) -> Any:
            ledger[name] = ledger.get(name, 0) + 1
            return value(*args, **kwargs)

        return counted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LedgerGenerator {self._name!r} draws={self._ledger.get(self._name, 0)}>"


@contextlib.contextmanager
def sanitized() -> Iterator[Sanitizer]:
    """Context manager: install a fresh sanitizer, uninstall on exit.

    Nests under an already-installed sanitizer (e.g. the session-wide one
    from ``REPRO_SANITIZE=1``): the outer one is suspended for the duration
    so the inner context gets a clean ledger, then reinstated.
    """
    outer = _active
    if outer is not None:
        outer.uninstall()
    sanitizer = Sanitizer().install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
        if outer is not None:
            outer.install()


def install_from_env() -> Optional[Sanitizer]:
    """Install a sanitizer when ``REPRO_SANITIZE=1`` (used by conftest)."""
    if os.environ.get("REPRO_SANITIZE") == "1" and _active is None:
        return Sanitizer().install()
    return None
