"""Lint engine: file discovery, configuration, suppression, reporting.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tomllib``) so
it can run in CI before anything else is importable. Configuration lives in
``pyproject.toml``::

    [tool.repro.analysis]
    include = ["src/repro"]
    exclude = ["tests/fixtures"]
    select = []          # empty = all registered rules
    ignore = []

Inline suppression: a ``# repro: noqa[REP001]`` comment on the flagged line
silences that rule there; ``# repro: noqa`` (no codes) silences every rule on
the line. By convention a suppression carries a short justification after it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.rules import RULES, FileContext, all_rules

try:  # pragma: no cover - tomllib is stdlib from 3.11; 3.10 may lack it
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

#: matches `# repro: noqa` and `# repro: noqa[REP001, REP003]`
NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class FileReport:
    """Lint outcome for one file."""

    path: str
    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    parse_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.parse_error is None


@dataclass
class AnalysisConfig:
    """Effective configuration (pyproject defaults + CLI overrides)."""

    include: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    select: Set[str] = field(default_factory=set)
    ignore: Set[str] = field(default_factory=set)

    def active_codes(self) -> List[str]:
        codes = sorted(self.select) if self.select else sorted(RULES)
        return [c for c in codes if c not in self.ignore]


def load_config(root: str = ".") -> AnalysisConfig:
    """Read ``[tool.repro.analysis]`` from ``pyproject.toml`` under ``root``.

    Missing file/section/parser all degrade to the empty (lint-everything)
    configuration, so the tool works in bare checkouts too.
    """
    config = AnalysisConfig()
    path = os.path.join(root, "pyproject.toml")
    if tomllib is None or not os.path.isfile(path):
        return config
    with open(path, "rb") as fh:
        try:
            data = tomllib.load(fh)
        except tomllib.TOMLDecodeError:
            return config
    section = data.get("tool", {}).get("repro", {}).get("analysis", {})
    config.include = [str(p) for p in section.get("include", [])]
    config.exclude = [str(p) for p in section.get("exclude", [])]
    config.select = {str(c) for c in section.get("select", [])}
    config.ignore = {str(c) for c in section.get("ignore", [])}
    return config


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def suppressions_for(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (None = all codes) for a file."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def _is_suppressed(violation: Violation,
                   suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    codes = suppressions.get(violation.line, False)
    if codes is False:
        return False
    return codes is None or violation.code in codes  # type: ignore[operator]


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


def check_source(source: str, path: str = "<string>",
                 config: Optional[AnalysisConfig] = None) -> FileReport:
    """Lint one source string; the unit every test fixture goes through."""
    config = config if config is not None else AnalysisConfig()
    report = FileReport(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.parse_error = f"{path}:{exc.lineno or 0}:0: parse error: {exc.msg}"
        return report
    ctx = FileContext(path, source, tree)
    suppressions = suppressions_for(source)
    for code in config.active_codes():
        rule = RULES[code]()
        for node, message in rule.check(ctx):
            violation = Violation(
                path=path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
            if _is_suppressed(violation, suppressions):
                report.suppressed += 1
            else:
                report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.line, v.col, v.code))
    return report


def check_file(path: str, config: Optional[AnalysisConfig] = None) -> FileReport:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        report = FileReport(path=path)
        report.parse_error = f"{path}: unreadable: {exc}"
        return report
    return check_source(source, path=path, config=config)


def _excluded(path: str, excludes: Sequence[str]) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(pattern and pattern in normalized for pattern in excludes)


def discover(paths: Iterable[str], excludes: Sequence[str] = ()) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and not _excluded(path, excludes):
                found.add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    if not _excluded(full, excludes):
                        found.add(full)
    return sorted(found)


def check_paths(paths: Iterable[str],
                config: Optional[AnalysisConfig] = None) -> List[FileReport]:
    config = config if config is not None else AnalysisConfig()
    files = discover(paths, excludes=config.exclude)
    return [check_file(path, config=config) for path in files]


# ---------------------------------------------------------------------------
# CLI driver (used by __main__)
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism linter for the repro simulation substrate.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: pyproject "
                             "[tool.repro.analysis].include)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run (default all)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore pyproject.toml [tool.repro.analysis]")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(rule.describe())
        return 0

    config = AnalysisConfig() if args.no_config else load_config()
    if args.select:
        config.select = {c.strip() for c in args.select.split(",") if c.strip()}
    if args.ignore:
        config.ignore |= {c.strip() for c in args.ignore.split(",") if c.strip()}
    unknown = (config.select | config.ignore) - set(RULES)
    if unknown:
        print(f"unknown rule code(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = list(args.paths) or config.include or ["src/repro"]
    reports = check_paths(paths, config=config)
    if not reports:
        print(f"no python files found under: {', '.join(paths)}",
              file=sys.stderr)
        return 2

    total = 0
    suppressed = 0
    broken = 0
    for report in reports:
        if report.parse_error is not None:
            broken += 1
            print(report.parse_error, file=sys.stderr)
        suppressed += report.suppressed
        for violation in report.violations:
            total += 1
            if not args.quiet:
                print(violation.format())
    summary = (f"{len(reports)} files checked: {total} violation(s), "
               f"{suppressed} suppressed")
    print(summary if total == 0 and broken == 0 else summary + " — FAIL")
    return 1 if (total or broken) else 0
