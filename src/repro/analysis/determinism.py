"""Determinism harness: the "bit-identical" claim as an executable gate.

``python -m repro.analysis.determinism`` runs a small Part-A scenario twice,
in child interpreters pinned to two *different* ``PYTHONHASHSEED`` values,
and byte-diffs the resulting fingerprints (full kernel trace + controller
stats + the sanitizer's per-stream RNG draw ledger). Any dependence on hash
ordering — the classic silent determinism bug — shows up as a diff whose
first divergent line names the event or stream that moved.

A deliberately broken scenario (``--scenario hash-order-bug``) iterates a
``set`` of client labels to choose request order; the harness must flag it
(tests/analysis/test_determinism.py keeps the harness itself honest).
"""

from __future__ import annotations

import argparse
import difflib
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: the two hash seeds the gate compares; distinct salts => distinct set order
HASH_SEEDS = ("1", "2")

SCENARIOS = ("parta", "hash-order-bug", "domains")


class DeterminismHarnessError(RuntimeError):
    """A fingerprint child interpreter failed to run at all (as opposed to
    running and producing a divergent fingerprint)."""


# ---------------------------------------------------------------------------
# Scenario (runs inside the child interpreter)
# ---------------------------------------------------------------------------


def _client_order(n_clients: int, buggy: bool) -> List[int]:
    """Request order over clients; the buggy variant routes it through a set
    of labels so the order inherits the interpreter's hash salt."""
    labels = [f"client-{index:02d}" for index in range(n_clients)]
    if not buggy:
        return list(range(n_clients))
    ordered = []
    # The planted hash-order bug the harness exists to catch; exercised by
    # tests/analysis/test_determinism.py and never by production code.
    for label in set(labels):  # repro: noqa[REP003] deliberate planted bug
        ordered.append(labels.index(label))
    return ordered


def _domains_fingerprint() -> str:
    """Fingerprint of a small sharded-ingress run under lockstep: the
    per-domain result rows plus the deterministically merged trace."""
    from repro.experiments.domains import run_sharded_ingress

    outcome = run_sharded_ingress(n_domains=2, seed=11, clients_local=6,
                                  clients_remote=3, window=4,
                                  trace_enabled=True)
    lines: List[str] = ["== summary =="]
    lines.append(f"domains={outcome.n_domains} epochs={outcome.epochs} "
                 f"envelopes={outcome.envelopes_exchanged} "
                 f"events={outcome.total_events}")
    for domain in outcome.outcomes:
        lines.append("== domain %d ==" % domain.domain_id)
        row = domain.result["row"]
        for key in sorted(row):
            lines.append(f"{key}={row[key]}")
    lines.append("== merged trace ==")
    lines.append(outcome.merged_trace_dump())
    return "\n".join(lines) + "\n"


def scenario_fingerprint(scenario: str = "parta") -> str:
    """Run the scenario and return its full textual fingerprint."""
    from repro.analysis.sanitizer import sanitized
    from repro.experiments.topologies import build_testbed
    from repro.simcore.trace import TraceLog

    if scenario == "domains":
        return _domains_fingerprint()
    buggy = scenario == "hash-order-bug"
    n_clients = 8
    with sanitized() as sanitizer:
        trace = TraceLog(enabled=True)
        tb = build_testbed(seed=11, n_clients=n_clients,
                           cluster_types=("docker",),
                           switch_idle_timeout_s=5.0,
                           memory_idle_timeout_s=30.0,
                           auto_scale_down=True,
                           trace=trace)
        svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
        requests = []
        for index in _client_order(n_clients, buggy):
            requests.append(
                tb.client(index).fetch(svc.service_id.addr, svc.service_id.port))
            tb.run(until=tb.sim.now + 0.25)
        tb.run(until=tb.sim.now + 20.0)
        # A second wave exercises the FlowMemory re-miss path.
        for index in _client_order(n_clients, buggy):
            requests.append(
                tb.client(index).fetch(svc.service_id.addr, svc.service_id.port))
        tb.run(until=tb.sim.now + 20.0)

        lines: List[str] = ["== summary =="]
        done = sum(1 for r in requests if r.done)
        ok = sum(1 for r in requests if r.done and r.result.ok)
        lines.append(f"requests done={done} ok={ok} t={tb.sim.now:.6f} "
                     f"events={tb.sim.events_executed}")
        lines.append("== controller stats ==")
        for key in sorted(tb.controller.stats):
            lines.append(f"{key}={tb.controller.stats[key]}")
        lines.append("== rng ledger ==")
        for name, draws in sanitizer.draw_counts().items():
            lines.append(f"{name}={draws}")
        lines.append("== trace ==")
        lines.extend(str(record) for record in trace.records)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Harness (parent side)
# ---------------------------------------------------------------------------


def _child_env(hash_seed: str) -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    # Make sure the child can import repro from the same tree as the parent.
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (src_root + os.pathsep + existing) if existing else src_root
    return env


def run_child(scenario: str, hash_seed: str, timeout_s: float = 300.0) -> str:
    """Run one fingerprint emission in a child pinned to ``hash_seed``."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.determinism",
         "--emit", "--scenario", scenario],
        env=_child_env(hash_seed), capture_output=True, text=True,
        timeout=timeout_s, check=False)
    if proc.returncode != 0:
        raise DeterminismHarnessError(
            f"fingerprint child (PYTHONHASHSEED={hash_seed}) failed "
            f"rc={proc.returncode}:\n{proc.stderr[-2000:]}")
    return proc.stdout


def compare(scenario: str = "parta",
            hash_seeds: Tuple[str, str] = HASH_SEEDS) -> Tuple[bool, str]:
    """Run the scenario under both hash seeds; return (identical, report)."""
    first = run_child(scenario, hash_seeds[0])
    second = run_child(scenario, hash_seeds[1])
    if first == second:
        size = len(first.encode("utf-8"))
        return True, (f"scenario {scenario!r}: byte-identical fingerprints "
                      f"({size} bytes) under PYTHONHASHSEED="
                      f"{hash_seeds[0]} and {hash_seeds[1]}")
    diff = list(difflib.unified_diff(
        first.splitlines(), second.splitlines(),
        fromfile=f"PYTHONHASHSEED={hash_seeds[0]}",
        tofile=f"PYTHONHASHSEED={hash_seeds[1]}", lineterm="", n=2))
    head = "\n".join(diff[:40])
    return False, (f"scenario {scenario!r}: fingerprints DIVERGE under "
                   f"different hash seeds — determinism broken:\n{head}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.determinism",
        description="Run a scenario under two PYTHONHASHSEED values and "
                    "byte-diff the traces.")
    parser.add_argument("--scenario", default="parta", choices=SCENARIOS)
    parser.add_argument("--emit", action="store_true",
                        help="(internal) print this interpreter's fingerprint")
    parser.add_argument("--hash-seeds", default=",".join(HASH_SEEDS),
                        help="two comma-separated PYTHONHASHSEED values")
    args = parser.parse_args(argv)

    if args.emit:
        sys.stdout.write(scenario_fingerprint(args.scenario))
        return 0

    seeds = tuple(s.strip() for s in args.hash_seeds.split(",") if s.strip())
    if len(seeds) != 2 or seeds[0] == seeds[1]:
        print("--hash-seeds needs exactly two distinct values", file=sys.stderr)
        return 2
    identical, report = compare(args.scenario, (seeds[0], seeds[1]))
    print(report)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
