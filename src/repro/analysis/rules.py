"""The determinism rule set (``REP001``..``REP009``).

Each rule is a small AST visitor registered in :data:`RULES`. Rules are
deliberately *repo-specific*: they encode the determinism contract of
:mod:`repro.simcore` (virtual time from ``Simulator.now``, randomness from
:class:`~repro.simcore.rng.RandomStreams`, FIFO same-time ordering), not
general Python style. A finding that is intentional is silenced inline with
``# repro: noqa[REP00x]`` plus, by convention, a short justification.

Adding a rule
-------------
Subclass :class:`Rule`, set ``code``/``name``/``rationale``, implement
:meth:`Rule.check` yielding ``(node, message)`` pairs, and decorate with
:func:`register`. The engine handles discovery, suppression, selection and
reporting; see docs/analysis.md for the full walkthrough.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type


class ImportMap:
    """Resolves local names to canonical dotted module paths.

    Built once per file from its import statements, so rules can recognise
    ``time.time`` whether it was imported as ``import time``,
    ``import time as t`` or ``from time import time``.
    """

    def __init__(self, tree: ast.Module):
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c -> a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(cursor.id)
        parts.reverse()
        root = self._aliases.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)


Finding = Tuple[ast.AST, str]


class Rule:
    """Base class for one lint rule."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        return f"{cls.code} {cls.name}: {cls.rationale}"


#: code -> rule class; populated by :func:`register`
RULES: Dict[str, Type[Rule]] = {}


def register(rule: Type[Rule]) -> Type[Rule]:
    if not rule.code:
        raise ValueError(f"rule {rule.__name__} has no code")
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule


def all_rules() -> List[Type[Rule]]:
    return [RULES[code] for code in sorted(RULES)]


def get_rule(code: str) -> Type[Rule]:
    return RULES[code]


# ---------------------------------------------------------------------------
# REP001 — wall-clock time
# ---------------------------------------------------------------------------


@register
class NoWallClock(Rule):
    """Simulated components must read time from ``Simulator.now``."""

    code = "REP001"
    name = "no-wall-clock"
    rationale = ("wall-clock reads (time.time/monotonic/perf_counter, "
                 "datetime.now) leak host timing into the simulation; "
                 "virtual time must come from Simulator.now")

    BANNED = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.canonical(node.func)
            if target in self.BANNED:
                yield node, (f"wall-clock call `{target}` — use the virtual "
                             f"clock (`Simulator.now`) instead")


# ---------------------------------------------------------------------------
# REP002 — module-level randomness
# ---------------------------------------------------------------------------


@register
class NoGlobalRandom(Rule):
    """All randomness flows through named ``RandomStreams`` streams."""

    code = "REP002"
    name = "no-global-random"
    rationale = ("module-level random/np.random convenience functions share "
                 "hidden global state; one extra draw anywhere perturbs every "
                 "component — draw from RandomStreams named streams")

    #: constructors/types that are fine to reference under numpy.random
    NUMPY_ALLOWED = frozenset({
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    })
    #: under the stdlib `random` module only the seeded class is tolerated
    STDLIB_ALLOWED = frozenset({"random.Random"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.canonical(node.func)
            if target is None:
                continue
            if target.startswith("random.") and target not in self.STDLIB_ALLOWED:
                yield node, (f"global-state randomness `{target}` — draw from "
                             f"a RandomStreams named stream")
            elif (target.startswith("numpy.random.")
                  and target not in self.NUMPY_ALLOWED):
                yield node, (f"numpy global RNG `{target}` — draw from a "
                             f"RandomStreams named stream")


# ---------------------------------------------------------------------------
# REP003 — hash-ordered iteration
# ---------------------------------------------------------------------------


class _IterVisitor(ast.NodeVisitor):
    """Collects the `iter` expression of every for-loop and comprehension."""

    def __init__(self) -> None:
        self.targets: List[ast.AST] = []

    def visit_For(self, node: ast.For) -> None:
        self.targets.append(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.targets.append(node.iter)
        self.generic_visit(node)

    def _comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self.targets.append(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _comp
    visit_SetComp = _comp
    visit_DictComp = _comp
    visit_GeneratorExp = _comp


@register
class NoHashOrderIteration(Rule):
    """Iteration order over sets is hash-salted; sort before iterating."""

    code = "REP003"
    name = "no-hash-order-iteration"
    rationale = ("iterating a set (or .keys() view used for ordering) in "
                 "scheduling-visible code makes event order depend on "
                 "PYTHONHASHSEED; wrap the iterable in sorted(...)")

    SET_METHODS = frozenset({
        "union", "intersection", "difference", "symmetric_difference",
    })

    def _is_hash_ordered(self, expr: ast.AST, ctx: FileContext) -> Optional[str]:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal/comprehension"
        if isinstance(expr, ast.Call):
            target = ctx.imports.canonical(expr.func)
            if target in ("set", "frozenset"):
                return f"a {target}()"
            if isinstance(expr.func, ast.Attribute):
                if expr.func.attr in self.SET_METHODS:
                    return f"a set .{expr.func.attr}() result"
                if expr.func.attr == "keys" and not expr.args:
                    return "a .keys() view"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _IterVisitor()
        visitor.visit(ctx.tree)
        for expr in visitor.targets:
            what = self._is_hash_ordered(expr, ctx)
            if what is not None:
                yield expr, (f"iterating {what} directly — order is "
                             f"hash/insertion dependent; use sorted(...) when "
                             f"the order can reach the event loop")


# ---------------------------------------------------------------------------
# REP004 — float equality on simulated time
# ---------------------------------------------------------------------------


@register
class NoSimTimeEquality(Rule):
    """Simulated timestamps are floats; compare with tolerances, not ==."""

    code = "REP004"
    name = "no-sim-time-equality"
    rationale = ("== / != between floats holding simulated time is brittle "
                 "(accumulated float error); compare with an epsilon or "
                 "restructure around event ordering")

    TIME_SUFFIXES = ("_at", "_time", "_deadline")
    TIME_NAMES = frozenset({"now", "_now", "deadline", "sim_time"})

    def _is_timeish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            terminal = node.attr
        elif isinstance(node, ast.Name):
            terminal = node.id
        else:
            return False
        return (terminal in self.TIME_NAMES
                or terminal.endswith(self.TIME_SUFFIXES))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            # `x is None` style / sentinel comparisons are fine.
            if any(isinstance(op, ast.Constant) and op.value is None
                   for op in operands):
                continue
            for operand in operands:
                if self._is_timeish(operand):
                    yield node, ("equality comparison involving a simulated "
                                 "timestamp — use an epsilon "
                                 "(abs(a - b) < 1e-12) or ordering instead")
                    break


# ---------------------------------------------------------------------------
# REP005 — untyped raises
# ---------------------------------------------------------------------------


@register
class NoBareException(Rule):
    """Raise typed errors so callers can catch precisely."""

    code = "REP005"
    name = "no-bare-exception"
    rationale = ("`raise Exception`/`raise RuntimeError` hides failure "
                 "classes from callers; use a typed error (simcore.errors, "
                 "core.resilience/deployment, or a local subclass)")

    BANNED = frozenset({"Exception", "RuntimeError"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = ctx.imports.canonical(target)
            if name in self.BANNED:
                yield node, (f"`raise {name}` — raise a typed error so "
                             f"callers can catch this failure precisely")


# ---------------------------------------------------------------------------
# REP006 — possibly-negative schedule delays
# ---------------------------------------------------------------------------


@register
class NonNegativeDelay(Rule):
    """``schedule(delay, ...)`` delays must be provably non-negative."""

    code = "REP006"
    name = "non-negative-delay"
    rationale = ("a `deadline - now` delay expression can go negative under "
                 "float error and raise ScheduleInPastError mid-run; wrap in "
                 "max(0.0, ...) or guard explicitly")

    def _delay_arg(self, node: ast.Call) -> Optional[ast.AST]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "schedule":
            if node.args:
                return node.args[0]
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            delay = self._delay_arg(node)
            if delay is None:
                continue
            if isinstance(delay, ast.BinOp) and isinstance(delay.op, ast.Sub):
                yield delay, ("schedule() delay is a bare subtraction — wrap "
                              "in max(0.0, ...) or guard it so float error "
                              "cannot push it negative")
            elif (isinstance(delay, ast.UnaryOp)
                  and isinstance(delay.op, ast.USub)
                  and isinstance(delay.operand, ast.Constant)):
                yield delay, "schedule() delay is a negative constant"
            elif (isinstance(delay, ast.Constant)
                  and isinstance(delay.value, (int, float))
                  and delay.value < 0):
                yield delay, "schedule() delay is a negative constant"


# ---------------------------------------------------------------------------
# REP007 — id()-keyed mappings
# ---------------------------------------------------------------------------


@register
class NoIdKeyedDict(Rule):
    """Key identity maps by the object, not by ``id(object)``."""

    code = "REP007"
    name = "no-id-keyed-dict"
    rationale = ("id() values are memory addresses: they differ run-to-run "
                 "(so any ordering or trace that sees them is "
                 "nondeterministic) and can alias once the object is "
                 "collected and the address reused; key the mapping by the "
                 "object itself (or a stable attribute like .name/.dpid)")

    #: mapping methods whose first positional argument is a key
    KEY_METHODS = frozenset({"get", "setdefault", "pop"})

    def _is_id_call(self, node: ast.AST, ctx: FileContext) -> bool:
        return (isinstance(node, ast.Call)
                and ctx.imports.canonical(node.func) == "id")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and self._is_id_call(key, ctx):
                        yield key, ("dict literal keyed by id(...) — key by "
                                    "the object itself")
            elif isinstance(node, ast.DictComp):
                if self._is_id_call(node.key, ctx):
                    yield node.key, ("dict comprehension keyed by id(...) — "
                                     "key by the object itself")
            elif isinstance(node, ast.Subscript):
                if self._is_id_call(node.slice, ctx):
                    yield node.slice, ("subscript keyed by id(...) — key by "
                                       "the object itself")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self.KEY_METHODS
                        and node.args
                        and self._is_id_call(node.args[0], ctx)):
                    yield node.args[0], (
                        f".{func.attr}() keyed by id(...) — key by the "
                        f"object itself")


# ---------------------------------------------------------------------------
# REP008 — direct Simulator construction in experiment drivers
# ---------------------------------------------------------------------------


@register
class NoDirectSimulatorInExperiments(Rule):
    """Experiment drivers obtain event loops from ``new_simulator``."""

    code = "REP008"
    name = "no-direct-simulator-in-experiments"
    rationale = ("experiment drivers that call Simulator() directly bypass "
                 "the repro.simcore.domains.new_simulator factory, so the "
                 "loop is invisible to domain-sharded accounting and the "
                 "lockstep coordinator; build loops via new_simulator (or a "
                 "Network/testbed, which does so internally)")

    #: canonical paths of the raw event-loop constructor
    BANNED = frozenset({
        "repro.simcore.Simulator",
        "repro.simcore.loop.Simulator",
    })
    #: only driver code is restricted; library/simcore code may construct
    SCOPE = "repro/experiments/"

    def _in_scope(self, path: str) -> bool:
        return self.SCOPE in path.replace("\\", "/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.canonical(node.func)
            if target in self.BANNED:
                yield node, ("direct `Simulator(...)` construction in an "
                             "experiment driver — use "
                             "repro.simcore.domains.new_simulator so the "
                             "loop participates in domain accounting")


# ---------------------------------------------------------------------------
# REP009 — wholesale flushes of generation-keyed memos
# ---------------------------------------------------------------------------


@register
class NoWholesaleMemoFlush(Rule):
    """Generation-keyed memos revalidate per key; they are not ``.clear()``ed."""

    code = "REP009"
    name = "no-wholesale-memo-flush"
    rationale = ("calling .clear() on a cache/memo/microflow mapping outside "
                 "the revalidation layer reintroduces the wholesale-flush "
                 "pathology the fine-grained revalidation work removed (one "
                 "churn event colds every unrelated key); evict per key, or "
                 "route the flush through repro.core.revalidation")

    #: attribute-name markers of generation-keyed memo containers; matched
    #: against whole underscore-separated segments of the name, so `memo`
    #: flags `_service_memo` but not `memory` (FlowMemory is authoritative
    #: state — clearing it is a semantic reset, not a memo flush)
    MARKERS = frozenset({"cache", "caches", "memo", "memos", "microflow"})
    #: the one module allowed to wholesale-flush (it IS the revalidation
    #: layer: capacity bounds and explicit crash resets live there)
    ALLOWED = "repro/core/revalidation.py"
    #: only library code is restricted; tests exercise flushes on purpose
    SCOPE = "src/repro/"

    def _in_scope(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return self.SCOPE in normalized and self.ALLOWED not in normalized

    def _memo_name(self, node: ast.AST) -> Optional[str]:
        """Terminal attribute/name a ``.clear()`` was called on, if it
        looks like a memo container."""
        if isinstance(node, ast.Attribute):
            terminal = node.attr
        elif isinstance(node, ast.Name):
            terminal = node.id
        else:
            return None
        segments = terminal.lower().split("_")
        if any(segment in self.MARKERS for segment in segments):
            return terminal
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "clear":
                continue
            name = self._memo_name(func.value)
            if name is not None:
                yield node, (f"wholesale `.clear()` of memo container "
                             f"`{name}` — evict per key (or go through the "
                             f"revalidation layer in repro.core.revalidation)")


def iter_rule_docs() -> Iterable[str]:
    """One formatted line per registered rule (for ``--list-rules``)."""
    for rule in all_rules():
        yield rule.describe()
