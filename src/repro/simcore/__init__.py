"""Deterministic discrete-event simulation kernel.

This package provides the substrate every other subsystem runs on: a single
event loop ordered by (time, sequence-number), generator-based processes,
waitable signals/timeouts, seeded random-number streams, and a structured
trace log.

Determinism contract
--------------------
* All state changes happen inside callbacks executed by :class:`Simulator`.
* Events scheduled for the same simulated time fire in scheduling order.
* All randomness must come from :class:`RandomStreams` children so that a
  single root seed reproduces an entire run bit-for-bit.
"""

from repro.simcore.errors import (
    DeadlockError,
    ProcessKilled,
    ProcessStateError,
    ScheduleInPastError,
    SignalStateError,
    SimulationError,
    SimulatorReentryError,
    WaitTimeout,
)
from repro.simcore.faults import (
    FaultInjected,
    FaultPlane,
    FaultPoint,
    FaultSchedule,
    TimedFault,
    channel_outage,
    cluster_outage,
    controller_outage,
    link_flap,
)
from repro.simcore.loop import EventHandle, Simulator
from repro.simcore.process import AllOf, AnyOf, Process, Timeout, Waitable
from repro.simcore.rng import RandomStreams
from repro.simcore.signal import Signal
from repro.simcore.trace import TraceLog, TraceRecord

__all__ = [
    "Simulator",
    "EventHandle",
    "FaultInjected",
    "FaultPlane",
    "FaultPoint",
    "FaultSchedule",
    "TimedFault",
    "channel_outage",
    "cluster_outage",
    "controller_outage",
    "link_flap",
    "Signal",
    "Process",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Waitable",
    "RandomStreams",
    "TraceLog",
    "TraceRecord",
    "SimulationError",
    "DeadlockError",
    "ProcessKilled",
    "ProcessStateError",
    "ScheduleInPastError",
    "SignalStateError",
    "SimulatorReentryError",
    "WaitTimeout",
]
