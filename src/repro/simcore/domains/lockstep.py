"""Conservative-lockstep coordination of per-ingress simulation domains.

The classic conservative parallel-DES scheme, specialised to this
substrate: every domain runs its own :class:`~repro.simcore.Simulator`
and the coordinator advances all of them in *barrier epochs* of exactly
one lookahead ``L`` (the minimum cross-domain link latency, from the
:class:`~repro.simcore.domains.partition.DomainPartition`). A frame
captured by a :class:`~repro.simcore.domains.gateway.DomainGateway`
during epoch ``k`` (simulated times ``(t0+kL, t0+(k+1)L]``) has arrival
time ``capture + L > t0+(k+1)L``, i.e. strictly after the next barrier —
so exchanging envelopes only at barriers can never deliver a frame into
a domain's past. :meth:`DomainGateway.inject` still checks, and raises
:class:`~repro.simcore.domains.gateway.CausalityError` if the math is
ever violated.

Determinism is by construction, not by luck:

* envelopes exchanged at a barrier are merged in the total order
  ``(arrival_at, src_domain, seq)`` before being routed, so injection
  order per domain is independent of worker count/completion order;
* each domain's slice of the process-global ``Host`` frame counter is
  saved/restored around every build/advance, so frame ids are
  domain-local whether domains share a process (serial executor) or
  not (process executor);
* per-domain :class:`~repro.metrics.perf.PerfCounters` are measured as
  snapshot deltas around each domain's own work, and merged — like
  traces and results — in domain-id order.

The outcome of a run is therefore **byte-identical** across
``processes=1`` (serial, in-process) and ``processes=N`` (persistent
worker processes over pipes, reusing the start-method choice of
:mod:`repro.experiments.pool`) — the same bar ``--jobs N`` set in PR 3.
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Protocol, Tuple

from repro.metrics import perf
from repro.metrics.perf import PerfCounters
from repro.netsim.host import Host
from repro.simcore.domains.envelope import (
    Envelope,
    decode_envelopes,
    encode_envelopes,
    envelope_order,
)
from repro.simcore.domains.partition import DomainPartition, DomainSpec
from repro.simcore.trace import TraceRecord

__all__ = ["DomainOutcome", "DomainRuntime", "DomainWorkerError",
           "LockstepCoordinator", "LockstepOutcome", "LockstepProtocolError",
           "LockstepStallError", "ProcessExecutor", "SerialExecutor"]


class LockstepProtocolError(RuntimeError):
    """The partition/coordinator contract was violated (misrouted
    envelope, domain clock past ``t0`` after build, ...)."""


class LockstepStallError(RuntimeError):
    """The epoch loop hit its guard with domains still not done."""


class DomainWorkerError(RuntimeError):
    """A domain worker process failed; carries the worker traceback."""


@dataclass
class DomainOutcome:
    """Everything one domain reports back after a lockstep run."""

    domain_id: int
    name: str
    #: plain-data result from the model's ``finalize()``
    result: Dict[str, Any]
    now: float
    events_executed: int
    perf: PerfCounters
    trace_records: List[TraceRecord] = field(default_factory=list)
    envelopes_in: int = 0
    envelopes_out: int = 0


@dataclass
class LockstepOutcome:
    """The deterministic merge of a whole lockstep run."""

    outcomes: List[DomainOutcome]
    epochs: int
    envelopes_exchanged: int
    lookahead_s: float

    @property
    def n_domains(self) -> int:
        return len(self.outcomes)

    @property
    def total_events(self) -> int:
        return sum(outcome.events_executed for outcome in self.outcomes)

    @property
    def total_perf(self) -> PerfCounters:
        total = PerfCounters()
        for outcome in self.outcomes:  # domain-id order
            total = total + outcome.perf
        return total

    def merged_trace(self) -> Iterator[Tuple[float, int, int, TraceRecord]]:
        """All trace records in the canonical global order
        ``(time, domain_id, record_index)``."""
        def stream(outcome: DomainOutcome) -> Iterator[Tuple[float, int, int, TraceRecord]]:
            # A real function binds `outcome` per stream (a genexp in the
            # list comprehension would close over the loop variable and
            # label every record with the last domain's id).
            return ((record.time, outcome.domain_id, index, record)
                    for index, record in enumerate(outcome.trace_records))

        return heapq.merge(*(stream(outcome) for outcome in self.outcomes),
                           key=lambda item: item[:3])

    def merged_trace_dump(self) -> str:
        """Rendered merged trace, each line prefixed with its domain."""
        return "\n".join(f"d{domain_id} {record}"
                         for _, domain_id, _, record in self.merged_trace())


class DomainRuntime:
    """One built domain plus the state that must be sharded around it."""

    def __init__(self, spec: DomainSpec, n_domains: int) -> None:
        from repro.simcore.domains import created_simulators

        self.spec = spec
        # Build with a fresh, domain-local frame-counter slice so frame
        # ids never depend on which other domains share this process.
        saved = Host._frame_counter
        Host._frame_counter = 0
        created_simulators()  # discard loops created outside any domain
        before = perf.snapshot()
        try:
            self.model = spec.build(n_domains)
        finally:
            self._frame_counter = Host._frame_counter
            Host._frame_counter = saved
        self.perf = perf.delta(before)
        #: helper loops the builder created via the domain-aware factory
        #: (beyond the model's own) — their events count toward this domain
        self.helper_loops = [sim for sim in created_simulators()
                             if sim is not self.model.sim]
        self.envelopes_in = 0
        self.envelopes_out = 0

    @property
    def now(self) -> float:
        return self.model.sim.now

    def advance(self, epoch_end: float,
                inbound: List[Envelope]) -> Tuple[List[Envelope], bool]:
        """Inject this epoch's inbound envelopes, run to the barrier,
        drain the captured outbound; returns ``(outbound, done)``."""
        gateway = self.model.gateway
        if inbound and gateway is None:
            raise LockstepProtocolError(
                f"domain {self.spec.domain_id} has no gateway but received "
                f"{len(inbound)} envelope(s)")
        saved = Host._frame_counter
        Host._frame_counter = self._frame_counter
        before = perf.snapshot()
        try:
            if gateway is not None:
                for envelope in inbound:
                    gateway.inject(envelope)
            self.model.sim.run(until=epoch_end)
        finally:
            self._frame_counter = Host._frame_counter
            Host._frame_counter = saved
            self.perf = self.perf + perf.delta(before)
        outbound = gateway.drain() if gateway is not None else []
        self.envelopes_in += len(inbound)
        self.envelopes_out += len(outbound)
        return outbound, self.model.done()

    def finalize(self) -> DomainOutcome:
        sim = self.model.sim
        events = sim.events_executed + sum(
            helper.events_executed for helper in self.helper_loops)
        return DomainOutcome(
            domain_id=self.spec.domain_id, name=self.spec.name,
            result=self.model.finalize(), now=sim.now,
            events_executed=events, perf=self.perf,
            trace_records=list(sim.trace.records),
            envelopes_in=self.envelopes_in, envelopes_out=self.envelopes_out)


class DomainExecutor(Protocol):
    """Where the domains actually run (in-process or worker processes)."""

    def build(self) -> Dict[int, float]: ...

    def advance(self, epoch_end: float, inbound: List[List[Envelope]],
                ) -> Tuple[List[List[Envelope]], List[bool]]: ...

    def finalize(self) -> List[DomainOutcome]: ...

    def close(self) -> None: ...


class SerialExecutor:
    """All domains in this process, advanced in domain-id order."""

    def __init__(self, partition: DomainPartition) -> None:
        self.partition = partition
        self._runtimes: List[DomainRuntime] = []

    def build(self) -> Dict[int, float]:
        self._runtimes = [DomainRuntime(spec, self.partition.n_domains)
                          for spec in self.partition.specs]
        return {runtime.spec.domain_id: runtime.now
                for runtime in self._runtimes}

    def advance(self, epoch_end: float, inbound: List[List[Envelope]],
                ) -> Tuple[List[List[Envelope]], List[bool]]:
        outbound: List[List[Envelope]] = []
        done: List[bool] = []
        for runtime in self._runtimes:
            out, finished = runtime.advance(
                epoch_end, inbound[runtime.spec.domain_id])
            outbound.append(out)
            done.append(finished)
        return outbound, done

    def finalize(self) -> List[DomainOutcome]:
        return [runtime.finalize() for runtime in self._runtimes]

    def close(self) -> None:
        self._runtimes = []


# ---------------------------------------------------------------------------
# Process executor: persistent, stateful domain workers over pipes
# ---------------------------------------------------------------------------


def _start_method() -> str:
    """Same preference as :mod:`repro.experiments.pool`: fork where the
    platform has it (cheap, inherits the warm import state), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _domain_worker_main(conn: Any, specs: Tuple[DomainSpec, ...],
                        n_domains: int) -> None:
    """Worker loop: build the assigned domains once, then serve
    advance/finalize requests until told to close.

    Unlike :class:`~repro.experiments.pool.CellPool` workers (stateless,
    one cell per task), domain workers are *stateful*: the built domains
    live here across every epoch of the run.
    """
    try:
        runtimes = [DomainRuntime(spec, n_domains) for spec in specs]
        conn.send(("ready", {runtime.spec.domain_id: runtime.now
                             for runtime in runtimes}))
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _, epoch_end, blobs = message
                reply: Dict[int, Tuple[bytes, bool]] = {}
                for runtime in runtimes:
                    domain_id = runtime.spec.domain_id
                    inbound = decode_envelopes(blobs[domain_id])
                    outbound, finished = runtime.advance(epoch_end, inbound)
                    reply[domain_id] = (encode_envelopes(outbound), finished)
                conn.send(("advanced", reply))
            elif message[0] == "finalize":
                conn.send(("finalized",
                           [runtime.finalize() for runtime in runtimes]))
            elif message[0] == "close":
                return
            else:  # pragma: no cover - parent never sends anything else
                raise LockstepProtocolError(f"unknown message {message[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


class ProcessExecutor:
    """Domains sharded round-robin over persistent worker processes."""

    def __init__(self, partition: DomainPartition, processes: int) -> None:
        self.partition = partition
        self.processes = max(1, min(int(processes), partition.n_domains))
        #: (process, parent pipe end, owned domain ids) per worker
        self._workers: List[Tuple[Any, Any, List[int]]] = []

    def _recv(self, conn: Any, expect: str) -> Any:
        try:
            message = conn.recv()
        except EOFError as exc:
            raise DomainWorkerError("domain worker died mid-run") from exc
        if message[0] == "error":
            raise DomainWorkerError(f"domain worker failed:\n{message[1]}")
        if message[0] != expect:  # pragma: no cover - defensive
            raise LockstepProtocolError(
                f"expected {expect!r} from worker, got {message[0]!r}")
        return message[1]

    def build(self) -> Dict[int, float]:
        context = multiprocessing.get_context(_start_method())
        assigned: List[List[DomainSpec]] = [[] for _ in range(self.processes)]
        for spec in self.partition.specs:
            assigned[spec.domain_id % self.processes].append(spec)
        for specs in assigned:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_domain_worker_main,
                args=(child_conn, tuple(specs), self.partition.n_domains),
                daemon=True)
            process.start()
            child_conn.close()
            self._workers.append(
                (process, parent_conn, [spec.domain_id for spec in specs]))
        nows: Dict[int, float] = {}
        for _, conn, _ in self._workers:
            nows.update(self._recv(conn, "ready"))
        return nows

    def advance(self, epoch_end: float, inbound: List[List[Envelope]],
                ) -> Tuple[List[List[Envelope]], List[bool]]:
        # Send every worker its slice first, then collect — workers run
        # their epochs concurrently.
        for _, conn, domain_ids in self._workers:
            conn.send(("advance", epoch_end,
                       {domain_id: encode_envelopes(inbound[domain_id])
                        for domain_id in domain_ids}))
        outbound: List[List[Envelope]] = [[] for _ in self.partition.specs]
        done: List[bool] = [False] * self.partition.n_domains
        for _, conn, _ in self._workers:
            for domain_id, (blob, finished) in self._recv(conn, "advanced").items():
                outbound[domain_id] = decode_envelopes(blob)
                done[domain_id] = finished
        return outbound, done

    def finalize(self) -> List[DomainOutcome]:
        for _, conn, _ in self._workers:
            conn.send(("finalize",))
        outcomes: List[DomainOutcome] = []
        for _, conn, _ in self._workers:
            outcomes.extend(self._recv(conn, "finalized"))
        outcomes.sort(key=lambda outcome: outcome.domain_id)
        # The workers' hot-path counters are invisible to the parent;
        # fold them into the parent's process-global counters so a run
        # reports the same totals no matter where domains executed.
        for outcome in outcomes:
            _fold_into_global_perf(outcome.perf)
        return outcomes

    def close(self) -> None:
        for process, conn, _ in self._workers:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            conn.close()
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=10)
        self._workers = []


def _fold_into_global_perf(counters: PerfCounters) -> None:
    perf.PERF.events_executed += counters.events_executed
    perf.PERF.flow_lookups += counters.flow_lookups
    perf.PERF.flow_hits += counters.flow_hits
    perf.PERF.microflow_hits += counters.microflow_hits
    perf.PERF.microflow_misses += counters.microflow_misses


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class LockstepCoordinator:
    """Drives a partition through barrier epochs to completion.

    ``processes=1`` uses the :class:`SerialExecutor`; ``processes>1``
    fans the domains over that many persistent workers. Either way the
    :class:`LockstepOutcome` is byte-identical.
    """

    #: generous stall guard: epochs are one lookahead long, so even slow
    #: scenarios finish in thousands of epochs, not millions
    def __init__(self, partition: DomainPartition, processes: int = 1,
                 max_epochs: int = 1_000_000) -> None:
        self.partition = partition
        self.processes = max(1, int(processes))
        self.max_epochs = max_epochs

    def _executor(self) -> DomainExecutor:
        if self.processes <= 1 or self.partition.n_domains <= 1:
            return SerialExecutor(self.partition)
        return ProcessExecutor(self.partition, self.processes)

    def run(self) -> LockstepOutcome:
        partition = self.partition
        executor = self._executor()
        try:
            build_nows = executor.build()
            for domain_id in range(partition.n_domains):
                now = build_nows[domain_id]
                if now > partition.t0 + 1e-12:
                    raise LockstepProtocolError(
                        f"domain {domain_id} built to t={now:.9f}, past the "
                        f"partition's aligned start t0={partition.t0:.9f}")
            pending: List[List[Envelope]] = [[] for _ in partition.specs]
            epoch = 0
            exchanged = 0
            while True:
                if epoch >= self.max_epochs:
                    raise LockstepStallError(
                        f"domains still running after {epoch} epochs "
                        f"(lookahead {partition.lookahead_s}s)")
                epoch_end = partition.t0 + partition.lookahead_s * (epoch + 1)
                outbound, done = executor.advance(epoch_end, pending)
                epoch += 1
                merged = sorted(
                    (envelope for per_domain in outbound for envelope in per_domain),
                    key=envelope_order)
                exchanged += len(merged)
                pending = [[] for _ in partition.specs]
                for envelope in merged:
                    if not 0 <= envelope.dst_domain < partition.n_domains:
                        raise LockstepProtocolError(
                            f"envelope routed to unknown domain "
                            f"{envelope.dst_domain} (have {partition.n_domains})")
                    pending[envelope.dst_domain].append(envelope)
                if all(done) and not merged:
                    break
            outcomes = executor.finalize()
        finally:
            executor.close()
        return LockstepOutcome(outcomes=outcomes, epochs=epoch,
                               envelopes_exchanged=exchanged,
                               lookahead_s=partition.lookahead_s)
