"""Per-ingress simulation domains with conservative lockstep.

This package partitions one scenario into independently seeded
simulation domains — each with its own event loop, switch, controller
slice (FlowMemory, dispatcher load counters, registry view) — and
coordinates them in barrier epochs sized by the cross-domain link
latency. See docs/sharding.md for the partitioning model, the
lookahead/lockstep rules and the determinism contract.

Layering note: this lives under :mod:`repro.simcore` because lockstep is
a kernel-level concern, but it is a *leaf* subpackage — importing
``repro.simcore`` does not import it (that would cycle through
:mod:`repro.netsim`, which imports simcore).

:func:`new_simulator` is the domain-aware event-loop factory experiment
drivers must use instead of constructing :class:`Simulator` directly
(linted by rule REP008): loops created through it while a domain is
being built are registered with that domain, so a driver-side helper
loop can never silently escape domain accounting.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.simcore.domains.envelope import (
    Envelope,
    EnvelopeCodecError,
    decode_envelopes,
    encode_envelopes,
    envelope_order,
)
from repro.simcore.domains.gateway import CausalityError, DomainGateway
from repro.simcore.domains.lockstep import (
    DomainOutcome,
    DomainRuntime,
    DomainWorkerError,
    LockstepCoordinator,
    LockstepOutcome,
    LockstepProtocolError,
    LockstepStallError,
    ProcessExecutor,
    SerialExecutor,
)
from repro.simcore.domains.partition import (
    DomainModel,
    DomainPartition,
    DomainSpec,
    PartitionError,
    derive_domain_seed,
)
from repro.simcore.loop import Simulator
from repro.simcore.trace import TraceLog

__all__ = [
    "CausalityError", "DomainGateway", "DomainModel", "DomainOutcome",
    "DomainPartition", "DomainRuntime", "DomainSpec", "DomainWorkerError",
    "Envelope", "EnvelopeCodecError", "LockstepCoordinator",
    "LockstepOutcome", "LockstepProtocolError", "LockstepStallError",
    "PartitionError", "ProcessExecutor", "SerialExecutor",
    "active_domain_workers", "created_simulators", "decode_envelopes",
    "derive_domain_seed", "domain_workers", "encode_envelopes",
    "envelope_order", "new_simulator",
]


# ---------------------------------------------------------------------------
# Domain-aware Simulator factory (REP008's sanctioned construction path)
# ---------------------------------------------------------------------------

#: loops created by :func:`new_simulator` since the last collection —
#: a building DomainRuntime drains this to attribute helper loops
_CREATED_LOOPS: List[Simulator] = []


def new_simulator(trace: Optional[TraceLog] = None) -> Simulator:
    """Create an event loop through the domain-aware path.

    Experiment drivers use this (or a testbed builder, which owns its
    loop) instead of ``Simulator(...)`` so every loop a scenario creates
    is visible to the domain partitioner/accounting — rule REP008 flags
    direct construction inside :mod:`repro.experiments`.
    """
    sim = Simulator(trace=trace)
    _CREATED_LOOPS.append(sim)
    return sim


def created_simulators() -> List[Simulator]:
    """Drain and return the loops created since the last call."""
    global _CREATED_LOOPS
    created, _CREATED_LOOPS = _CREATED_LOOPS, []
    return created


# ---------------------------------------------------------------------------
# --domains N plumbing (mirrors repro.experiments.pool's active-pool idiom)
# ---------------------------------------------------------------------------

#: how many domain worker processes lockstep scenarios should use;
#: 1 means serial in-process execution (the byte-identical reference)
_ACTIVE_WORKERS: int = 1


def active_domain_workers() -> int:
    return _ACTIVE_WORKERS


@contextmanager
def domain_workers(processes: int) -> Iterator[int]:
    """Route every lockstep scenario inside the block over ``processes``
    domain workers (the runner enters this for ``--domains N``)."""
    global _ACTIVE_WORKERS
    previous = _ACTIVE_WORKERS
    _ACTIVE_WORKERS = max(1, int(processes))
    try:
        yield _ACTIVE_WORKERS
    finally:
        _ACTIVE_WORKERS = previous
