"""Partitioning a simulation into per-ingress domains.

A :class:`DomainPartition` is the *logical* decomposition of a scenario:
``n_domains`` independently seeded :class:`DomainSpec`\\ s plus the
conservative lookahead (the minimum cross-domain link latency) and the
aligned start time ``t0`` every domain must have reached by the end of
its build. The partition is fixed by the scenario/topology — ``--domains
N`` only chooses the *execution vehicle* (serial in-process vs. N worker
processes), which is why output is byte-identical across N.

Builders are top-level callables taking ``(domain_id, n_domains, seed,
**kwargs)`` and returning a :class:`DomainModel`; keeping them picklable
by reference (same contract as :class:`repro.experiments.pool.Cell`)
lets the process executor rebuild each domain inside its worker.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Protocol, Tuple

from repro.simcore.loop import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.domains.gateway import DomainGateway

__all__ = ["DomainModel", "DomainPartition", "DomainSpec",
           "PartitionError", "derive_domain_seed"]


class PartitionError(ValueError):
    """A :class:`DomainPartition` failed structural validation."""


class DomainModel(Protocol):
    """What a domain builder must return.

    ``sim`` is the domain's own event loop; ``gateway`` is its
    cross-domain edge (``None`` for a fully isolated domain). ``done()``
    is the domain's local completion predicate — the coordinator stops
    once every domain is done *and* no envelopes are in flight.
    ``finalize()`` returns plain picklable result data.
    """

    @property
    def sim(self) -> Simulator: ...

    @property
    def gateway(self) -> "Optional[DomainGateway]": ...

    def done(self) -> bool: ...

    def finalize(self) -> Dict[str, Any]: ...


def derive_domain_seed(root_seed: int, domain_id: int) -> int:
    """Stable per-domain 64-bit seed (same BLAKE2b scheme as
    :func:`repro.simcore.rng._digest_seed`, under a ``domain:`` label)."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(root_seed).encode("utf-8"))
    h.update(b"\x00domain:")
    h.update(str(domain_id).encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


@dataclass(frozen=True)
class DomainSpec:
    """One domain: identity, derived seed, and how to build it."""

    domain_id: int
    name: str
    builder: Callable[..., DomainModel]
    seed: int
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def build(self, n_domains: int) -> DomainModel:
        return self.builder(domain_id=self.domain_id, n_domains=n_domains,
                            seed=self.seed, **dict(self.kwargs))


@dataclass(frozen=True)
class DomainPartition:
    """The logical decomposition one scenario runs under."""

    specs: Tuple[DomainSpec, ...]
    #: conservative lookahead == barrier epoch length (seconds); must not
    #: exceed the smallest cross-domain link latency
    lookahead_s: float
    #: aligned lockstep start time — every domain's build must leave its
    #: clock at or before ``t0`` and must not capture envelopes before it
    t0: float = 0.0

    def __post_init__(self) -> None:
        if not self.specs:
            raise PartitionError("a partition needs at least one domain")
        ids = [spec.domain_id for spec in self.specs]
        if ids != list(range(len(self.specs))):
            raise PartitionError(
                f"domain ids must be contiguous from 0 in spec order, got {ids}")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise PartitionError(f"duplicate domain names in {names}")
        if not self.lookahead_s > 0.0:
            raise PartitionError(
                f"lookahead must be positive, got {self.lookahead_s!r}")

    @property
    def n_domains(self) -> int:
        return len(self.specs)

    @classmethod
    def per_ingress(cls, builder: Callable[..., DomainModel], n_domains: int,
                    root_seed: int, lookahead_s: float, t0: float = 0.0,
                    name_prefix: str = "ingress",
                    common_kwargs: Optional[Mapping[str, Any]] = None,
                    ) -> "DomainPartition":
        """The canonical partition: one domain per ingress switch, all
        built by the same builder with per-domain derived seeds."""
        kwargs = dict(common_kwargs or {})
        specs = tuple(
            DomainSpec(domain_id=domain_id,
                       name=f"{name_prefix}-{domain_id}",
                       builder=builder,
                       seed=derive_domain_seed(root_seed, domain_id),
                       kwargs=kwargs)
            for domain_id in range(n_domains))
        return cls(specs=specs, lookahead_s=lookahead_s, t0=t0)
