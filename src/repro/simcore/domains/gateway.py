"""The cross-domain edge of one simulation domain.

A :class:`DomainGateway` is a one-port :class:`~repro.netsim.device.Device`
wired to the domain's ingress switch. Frames the local control plane
routes out of that port are *captured* into time-stamped
:class:`~repro.simcore.domains.envelope.Envelope`\\ s instead of being
delivered anywhere — the lockstep coordinator drains them at the next
barrier and hands them to the destination domain, which *injects* them:
schedules the frame's delivery back through the same port at exactly
``arrival_at`` (capture time + cross-domain latency).

Conservative correctness is enforced, not assumed: injecting an envelope
whose arrival time is already in the domain's past raises
:class:`CausalityError`. With epoch length == lookahead == the minimum
cross-domain latency, a frame captured in epoch ``k`` arrives at or
after the epoch-``k+1`` barrier, so the error is unreachable unless the
coordinator (or a partition's latency math) is wrong.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.netsim.addresses import MAC
from repro.netsim.device import Device
from repro.netsim.packet import EthernetFrame
from repro.simcore.domains.envelope import Envelope
from repro.simcore.loop import Simulator

__all__ = ["CausalityError", "DomainGateway"]

#: slack for float error on the arrival-time causality check
_EPSILON = 1e-12


class CausalityError(RuntimeError):
    """An envelope arrived in a domain's simulated past — the lockstep
    lookahead contract was violated."""


class DomainGateway(Device):
    """Captures egress frames into envelopes; replays inbound envelopes.

    ``classify(frame)`` maps a frame to its destination domain id (or
    ``None`` for "not routable across domains" — such frames are dropped
    with a trace record, like a WAN edge with no route).
    """

    def __init__(self, sim: Simulator, name: str, domain_id: int,
                 classify: Callable[[EthernetFrame], Optional[int]],
                 cross_latency_s: float, mac_addr: MAC) -> None:
        if cross_latency_s <= 0.0:
            raise ValueError(f"cross-domain latency must be positive, "
                             f"got {cross_latency_s!r}")
        super().__init__(sim, name)
        self.domain_id = domain_id
        self.classify = classify
        self.cross_latency_s = cross_latency_s
        #: the MAC the local controller rewrites eth_dst to when routing
        #: toward remote addresses registered as static hosts here
        self.mac = mac_addr
        #: single switch-facing port
        self.uplink_port = 0
        self._outbound: List[Envelope] = []
        self._seq = 0
        self.envelopes_captured = 0
        self.envelopes_injected = 0
        self.frames_unroutable = 0

    # ------------------------------------------------------------- capture

    def on_frame(self, port_no: int, frame: EthernetFrame) -> None:
        dst_domain = self.classify(frame)
        if dst_domain is None:
            self.frames_unroutable += 1
            self.sim.trace.emit(self.sim.now, "domain", "gw-unroutable",
                                {"gateway": self.name, "frame": frame.describe()})
            return
        self._seq += 1
        self.envelopes_captured += 1
        self._outbound.append(Envelope(
            src_domain=self.domain_id, dst_domain=dst_domain, seq=self._seq,
            sent_at=self.sim.now, arrival_at=self.sim.now + self.cross_latency_s,
            frame=frame))

    def drain(self) -> List[Envelope]:
        """Hand the captured envelopes to the coordinator (clears the
        buffer); called once per barrier epoch."""
        out = self._outbound
        self._outbound = []
        return out

    # ------------------------------------------------------------ injection

    def inject(self, envelope: Envelope) -> None:
        """Schedule an inbound envelope's frame for delivery at its
        arrival time (into the switch through the uplink port)."""
        if envelope.arrival_at < self.sim.now - _EPSILON:
            raise CausalityError(
                f"{self.name}: envelope from domain {envelope.src_domain} "
                f"arrives at {envelope.arrival_at:.9f} but local time is "
                f"already {self.sim.now:.9f} (lookahead contract violated)")
        self.sim.schedule(max(0.0, envelope.arrival_at - self.sim.now),
                          self._deliver_inbound, envelope.frame)

    def _deliver_inbound(self, frame: EthernetFrame) -> None:
        self.envelopes_injected += 1
        self.transmit(self.uplink_port, frame)
