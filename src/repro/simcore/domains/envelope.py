"""Time-stamped cross-domain frame envelopes and their wire codec.

A frame leaving one simulation domain for another travels as an
:class:`Envelope`: the frame itself plus the capture time, the
conservatively-computed arrival time (capture + cross-domain link
latency ≥ one lookahead), and a per-gateway sequence number. The
``(arrival_at, src_domain, seq)`` triple is a *total* order over every
envelope exchanged at a barrier — the lockstep coordinator sorts on it
before routing, which is what makes the merge independent of worker
count and completion order.

The codec is the process-executor wire format (one blob per domain per
epoch over a ``multiprocessing`` pipe). It is pickle-based — frames are
plain frozen dataclasses and the interned-address machinery re-interns
on unpickle — with a magic header so a framing bug fails loudly instead
of deserializing garbage.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.netsim.packet import EthernetFrame

__all__ = ["Envelope", "EnvelopeCodecError", "decode_envelopes",
           "encode_envelopes", "envelope_order"]

#: wire-format magic + version ("Repro Domain Envelope, v1")
MAGIC = b"RDE1"


class EnvelopeCodecError(ValueError):
    """An envelope blob failed magic/shape validation on decode."""


@dataclass(frozen=True)
class Envelope:
    """One cross-domain frame in flight between barrier epochs."""

    src_domain: int
    dst_domain: int
    #: per-source-gateway capture sequence (deterministic tiebreaker)
    seq: int
    #: simulated capture time at the source gateway
    sent_at: float
    #: simulated delivery time at the destination gateway
    #: (``sent_at`` + cross-domain latency; always lands at least one
    #: lookahead after the epoch the frame was captured in)
    arrival_at: float
    frame: EthernetFrame


def envelope_order(envelope: Envelope) -> Tuple[float, int, int]:
    """The total order the coordinator merges exchanged envelopes in."""
    return (envelope.arrival_at, envelope.src_domain, envelope.seq)


def encode_envelopes(envelopes: Sequence[Envelope]) -> bytes:
    """Serialize envelopes for a pipe hop (order is preserved)."""
    return MAGIC + pickle.dumps(list(envelopes), protocol=pickle.HIGHEST_PROTOCOL)


def decode_envelopes(blob: bytes) -> List[Envelope]:
    """Inverse of :func:`encode_envelopes`, with loud validation."""
    if blob[:len(MAGIC)] != MAGIC:
        raise EnvelopeCodecError(
            f"bad envelope blob magic {blob[:len(MAGIC)]!r} (want {MAGIC!r})")
    try:
        payload = pickle.loads(blob[len(MAGIC):])
    except Exception as exc:  # pickle raises a zoo of error types
        raise EnvelopeCodecError(f"undecodable envelope blob: {exc}") from exc
    if not isinstance(payload, list) or not all(
            isinstance(item, Envelope) for item in payload):
        raise EnvelopeCodecError("envelope blob did not decode to [Envelope]")
    return payload
