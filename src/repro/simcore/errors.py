"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when ``run_until_deadlock`` detects that
    processes are still alive but no future event can ever wake them."""


class ProcessKilled(SimulationError):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class WaitTimeout(SimulationError):
    """Raised inside a process when a ``wait(..., timeout=...)`` expires."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled with a negative delay."""
