"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when ``run_until_deadlock`` detects that
    processes are still alive but no future event can ever wake them."""


class ProcessKilled(SimulationError):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class WaitTimeout(SimulationError):
    """Raised inside a process when a ``wait(..., timeout=...)`` expires."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled with a negative delay."""


class SimulatorReentryError(SimulationError, RuntimeError):
    """Raised when :meth:`Simulator.run` is entered re-entrantly.

    Subclasses :class:`RuntimeError` for backwards compatibility with callers
    that predate the typed hierarchy.
    """


class SignalStateError(SimulationError, RuntimeError):
    """Raised on invalid :class:`Signal` state transitions: reading a result
    before completion, or completing an already-completed signal."""


class ProcessStateError(SimulationError, RuntimeError):
    """Raised when :attr:`Process.result` is read while the process is
    still running."""
