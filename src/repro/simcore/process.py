"""Generator-based processes and waitable combinators.

A *process* is a Python generator driven by the event loop. Each ``yield``
hands the loop a *waitable*; the process resumes when the waitable completes,
receiving its result as the value of the ``yield`` expression (or having the
waitable's exception raised at the yield point).

Waitable protocol
-----------------
An object is waitable if it provides::

    _wait_subscribe(callback)   # call callback(waitable) once complete
    _wait_result()              # value to send into the generator / may raise

:class:`Timeout`, :class:`~repro.simcore.signal.Signal`, :class:`Process`,
:class:`AllOf` and :class:`AnyOf` all implement it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Protocol, runtime_checkable

from repro.simcore.errors import ProcessKilled, ProcessStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.loop import Simulator


@runtime_checkable
class Waitable(Protocol):
    """Structural type for objects a process may ``yield``."""

    def _wait_subscribe(self, callback: Callable[[Any], None]) -> None: ...

    def _wait_result(self) -> Any: ...


class Timeout:
    """A waitable that completes ``delay`` seconds after creation.

    Completes with ``value`` (default ``None``). Cancelling a pending
    timeout detaches it from the loop; a cancelled timeout never fires.
    """

    __slots__ = ("sim", "delay", "value", "_handle", "_done", "_callbacks")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        self.sim = sim
        self.delay = delay
        self.value = value
        self._done = False
        self._callbacks: list[Callable[["Timeout"], None]] = []
        self._handle = sim.schedule(delay, self._expire)

    def _expire(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def cancel(self) -> None:
        self._handle.cancel()
        self._callbacks = []

    @property
    def done(self) -> bool:
        return self._done

    def _wait_subscribe(self, callback: Callable[["Timeout"], None]) -> None:
        if self._done:
            self.sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def _wait_result(self) -> Any:
        return self.value


class Process:
    """A running generator on the event loop.

    Created via :meth:`Simulator.spawn`. A process is itself waitable, so
    one process can ``yield`` another to join it and receive its return
    value (exceptions propagate to the joiner).
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_result", "_exception", "_joiners", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Iterator[Any], name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._joiners: list[Callable[["Process"], None]] = []
        self._waiting_on: Optional[Any] = None
        sim.trace.emit(sim.now, "process", "spawn", {"name": self.name})
        # Kick off on the loop, not synchronously, so spawn order == first
        # execution order regardless of where spawn() was called from.
        sim.call_soon(self._step_send, None)

    # ----------------------------------------------------------- state

    @property
    def alive(self) -> bool:
        return not self._done

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise ProcessStateError(f"process {self.name!r} still running")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception if self._done else None

    # ----------------------------------------------------------- driving

    def _step_send(self, value: Any) -> None:
        if self._done:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crash captured
            self._finish(exception=exc)
            return
        self._wait_on(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self._done:
            return
        try:
            yielded = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self._finish(exception=err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if not hasattr(yielded, "_wait_subscribe"):
            self._step_throw(TypeError(f"process {self.name!r} yielded non-waitable {yielded!r}"))
            return
        self._waiting_on = yielded
        yielded._wait_subscribe(self._resume)

    def _resume(self, waitable: Any) -> None:
        if self._done or waitable is not self._waiting_on:
            return  # stale wakeup (e.g. after kill)
        self._waiting_on = None
        try:
            value = waitable._wait_result()
        except BaseException as exc:  # noqa: BLE001 - propagate into generator
            self._step_throw(exc)
            return
        self._step_send(value)

    def _finish(self, result: Any = None, exception: Optional[BaseException] = None) -> None:
        self._done = True
        self._result = result
        self._exception = exception
        self._waiting_on = None
        self._gen.close()
        self.sim.trace.emit(
            self.sim.now,
            "process",
            "finish",
            {"name": self.name, "ok": exception is None},
        )
        joiners, self._joiners = self._joiners, []
        for cb in joiners:
            self.sim.call_soon(cb, self)

    # ----------------------------------------------------------- control

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the process at its yield point.

        The process may catch it to clean up; if it does not, it terminates
        with the exception recorded (joiners will see it)."""
        if self._done:
            return
        self._waiting_on = None  # detach from whatever it awaited
        self._step_throw(ProcessKilled(reason or f"process {self.name!r} killed"))

    # Waitable protocol --------------------------------------------------

    def _wait_subscribe(self, callback: Callable[["Process"], None]) -> None:
        if self._done:
            self.sim.call_soon(callback, self)
        else:
            self._joiners.append(callback)

    def _wait_result(self) -> Any:
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "alive"
        return f"<Process {self.name!r} {state}>"


class AllOf:
    """Waitable that completes when *all* child waitables complete.

    Result is the list of child results in construction order. If any child
    fails, the first failure (in completion order) is raised at the yield
    point once all children finished.
    """

    __slots__ = ("sim", "children", "_remaining", "_callbacks", "_first_exc")

    def __init__(self, sim: "Simulator", children: list[Any]) -> None:
        self.sim = sim
        self.children = list(children)
        self._remaining = len(self.children)
        self._callbacks: list[Callable[["AllOf"], None]] = []
        self._first_exc: Optional[BaseException] = None
        if self._remaining == 0:
            sim.call_soon(self._complete)
        else:
            for child in self.children:
                child._wait_subscribe(self._child_done)

    def _child_done(self, child: Any) -> None:
        try:
            child._wait_result()
        except BaseException as exc:  # noqa: BLE001
            if self._first_exc is None:
                self._first_exc = exc
        self._remaining -= 1
        if self._remaining == 0:
            self._complete()

    def _complete(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    @property
    def done(self) -> bool:
        return self._remaining == 0

    def _wait_subscribe(self, callback: Callable[["AllOf"], None]) -> None:
        if self.done:
            self.sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def _wait_result(self) -> Any:
        if self._first_exc is not None:
            raise self._first_exc
        return [c._wait_result() for c in self.children]


class AnyOf:
    """Waitable that completes when the *first* child completes.

    Result is ``(index, value)`` of the winning child; a failing first child
    propagates its exception. Remaining children keep running — callers that
    race a :class:`Timeout` against work should cancel the loser themselves.
    """

    __slots__ = ("sim", "children", "_winner", "_callbacks")

    def __init__(self, sim: "Simulator", children: list[Any]) -> None:
        if not children:
            raise ValueError("AnyOf requires at least one child")
        self.sim = sim
        self.children = list(children)
        self._winner: Optional[int] = None
        self._callbacks: list[Callable[["AnyOf"], None]] = []
        for index, child in enumerate(self.children):
            child._wait_subscribe(lambda c, i=index: self._child_done(i))

    def _child_done(self, index: int) -> None:
        if self._winner is not None:
            return
        self._winner = index
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    @property
    def done(self) -> bool:
        return self._winner is not None

    @property
    def winner(self) -> Optional[int]:
        return self._winner

    def _wait_subscribe(self, callback: Callable[["AnyOf"], None]) -> None:
        if self.done:
            self.sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def _wait_result(self) -> Any:
        assert self._winner is not None
        return (self._winner, self.children[self._winner]._wait_result())
