"""One-shot settable events (futures) for the simulation kernel.

A :class:`Signal` is the kernel's future/promise: it is created unset, is set
(or failed) exactly once, and wakes every subscriber *via the event loop* so
that same-time wakeups preserve global FIFO ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.simcore.errors import SignalStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.loop import Simulator

_UNSET = object()


class Signal:
    """A one-shot waitable value.

    Processes wait on a signal with ``result = yield sig``; callback code
    subscribes with :meth:`subscribe`. Setting an already-set signal raises,
    which catches double-completion bugs early.
    """

    __slots__ = ("sim", "name", "_value", "_exception", "_subscribers")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = _UNSET
        self._exception: Optional[BaseException] = None
        self._subscribers: Optional[list[Callable[["Signal"], None]]] = []

    # ----------------------------------------------------------------- state

    @property
    def done(self) -> bool:
        return self._value is not _UNSET or self._exception is not None

    @property
    def ok(self) -> bool:
        """True when the signal completed successfully."""
        return self._value is not _UNSET

    @property
    def result(self) -> Any:
        """The value set by :meth:`set`; raises the stored exception if the
        signal failed, and :class:`SignalStateError` if it is not done yet."""
        if self._exception is not None:
            raise self._exception
        if self._value is _UNSET:
            raise SignalStateError(f"Signal {self.name!r} is not set yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # ------------------------------------------------------------ completion

    def set(self, value: Any = None) -> None:
        """Complete the signal successfully with ``value``."""
        if self.done:
            raise SignalStateError(f"Signal {self.name!r} already completed")
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        """Complete the signal with an exception; waiters will re-raise it."""
        if self.done:
            raise SignalStateError(f"Signal {self.name!r} already completed")
        self._exception = exc
        self._fire()

    def set_if_unset(self, value: Any = None) -> bool:
        """Complete with ``value`` unless already done; returns whether it
        completed now. Useful for races (e.g. first-of-N readiness probes)."""
        if self.done:
            return False
        self.set(value)
        return True

    def _fire(self) -> None:
        subscribers, self._subscribers = self._subscribers, None
        if subscribers:
            for cb in subscribers:
                # Deliver through the loop to keep FIFO determinism.
                self.sim.call_soon(cb, self)

    # ----------------------------------------------------------- subscribing

    def subscribe(self, callback: Callable[["Signal"], None]) -> None:
        """Invoke ``callback(self)`` once the signal completes.

        If it already completed, the callback is scheduled immediately
        (still via the loop, never synchronously).
        """
        if self._subscribers is None:
            self.sim.call_soon(callback, self)
        else:
            self._subscribers.append(callback)

    # Waitable protocol (see repro.simcore.process).
    def _wait_subscribe(self, callback: Callable[["Signal"], None]) -> None:
        self.subscribe(callback)

    def _wait_result(self) -> Any:
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Signal {self.name!r} {state}>"
