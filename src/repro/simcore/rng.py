"""Named, reproducible random-number streams.

Every source of randomness in the library draws from a child stream of one
root seed. Streams are derived from a *name* (not creation order), so adding
a new randomized component does not perturb the random sequences of existing
components — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _digest_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed derived from (root_seed, name) via BLAKE2b."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(root_seed).encode("utf-8"))
    h.update(b"\x00")
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RandomStreams:
    """Factory of named :class:`numpy.random.Generator` streams.

    Example
    -------
    >>> streams = RandomStreams(seed=2019)
    >>> arrivals = streams.stream("workload.arrivals")
    >>> jitter = streams.stream("netsim.link.jitter")

    The same ``(seed, name)`` pair always yields an identical stream; asking
    twice for the same name returns the *same* generator object so state is
    shared by design.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_digest_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def child(self, prefix: str) -> "ScopedStreams":
        """A view that prefixes every stream name — handy for components."""
        return ScopedStreams(self, prefix)

    def fork(self, name: str) -> "RandomStreams":
        """A fresh independent :class:`RandomStreams` derived from ``name``."""
        return RandomStreams(_digest_seed(self.seed, "fork:" + name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"


class ScopedStreams:
    """Prefix view over a :class:`RandomStreams` (see :meth:`RandomStreams.child`)."""

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent: RandomStreams, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip(".") + "."

    def stream(self, name: str) -> np.random.Generator:
        return self._parent.stream(self._prefix + name)

    def child(self, prefix: str) -> "ScopedStreams":
        return ScopedStreams(self._parent, self._prefix + prefix)
