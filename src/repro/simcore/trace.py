"""Structured trace log shared by all subsystems.

A :class:`TraceLog` is an append-only list of :class:`TraceRecord`\\ s. It is
cheap when disabled (one attribute check per emit) and filterable by category
when enabled. Integration tests use it to assert *message sequences* — e.g.
the fig. 5 with-waiting deployment sequence of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    category: str
    event: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.time:10.6f}] {self.category}/{self.event} {kv}"


class TraceLog:
    """Append-only, optionally-filtered event log.

    Parameters
    ----------
    enabled:
        When False, :meth:`emit` is a no-op (the hot-path fast exit).
    categories:
        When given, only these categories are recorded.
    """

    def __init__(self, enabled: bool = True, categories: Optional[Iterable[str]] = None) -> None:
        self.enabled = enabled
        self.categories = frozenset(categories) if categories is not None else None
        self.records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, category: str, event: str, data: Optional[dict] = None) -> None:
        """Record one event (no-op when disabled or category filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time, category, event, data or {})
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def listen(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` on every future record (live tailing)."""
        self._listeners.append(callback)

    # ------------------------------------------------------------- queries

    def filter(self, category: Optional[str] = None, event: Optional[str] = None) -> list[TraceRecord]:
        """All records matching the given category and/or event name."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if event is not None:
            out = [r for r in out if r.event == event]
        return list(out)

    def events(self, category: Optional[str] = None) -> list[str]:
        """Just the event names, in order — convenient for sequence asserts."""
        return [r.event for r in self.filter(category=category)]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> "Iterator[TraceRecord]":
        return iter(self.records)

    def dump(self) -> str:
        """Human-readable multi-line rendering of the whole log."""
        return "\n".join(str(r) for r in self.records)
