"""The simulation event loop.

One :class:`Simulator` instance owns the virtual clock and a binary heap of
pending events. Everything else in the library (links, switches, container
runtimes, reconcile loops, clients) schedules plain callbacks or spawns
generator-based processes on this loop.

The loop is intentionally minimal and allocation-light: an event is a 4-tuple
``(time, seq, handle, args)`` on a ``heapq``; cancellation marks the handle
dead rather than re-heapifying (lazy deletion), which keeps ``cancel`` O(1)
and is the standard idiom for timer wheels with many idle-timeout resets
(OpenFlow flow entries reset their timeout on every matched packet).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.metrics.perf import PERF
from repro.simcore.errors import DeadlockError, ScheduleInPastError, SimulatorReentryError
from repro.simcore.trace import TraceLog


class EventHandle:
    """Handle for a scheduled callback; supports O(1) cancellation.

    The callback and its arguments are stored on the handle so that a
    cancelled event releases its references immediately instead of pinning
    them until the heap entry is popped. The owning loop is kept so a
    cancellation can maintain the loop's O(1) live-event counter.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "loop")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple,
                 loop: Optional["Simulator"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args: Optional[tuple] = args
        self.cancelled = False
        self.loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once,
        and safe to call after the event already fired (then a no-op)."""
        if not self.cancelled and self.callback is not None and self.loop is not None:
            self.loop._live -= 1
        self.cancelled = True
        self.callback = None
        self.args = None

    @property
    def alive(self) -> bool:
        return not self.cancelled and self.callback is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Deterministic discrete-event loop with a virtual clock.

    Parameters
    ----------
    trace:
        Optional :class:`TraceLog`; when provided, kernel-level events
        (process spawn/finish, deadlocks) are recorded into it and the same
        log is conventionally shared by higher layers.

    Notes
    -----
    Two events scheduled for the same time fire in the order they were
    scheduled (FIFO), enforced by the monotonically increasing sequence
    number used as the heap tiebreaker. This property is load-bearing: e.g.
    a switch that forwards a packet and then updates a counter relies on it.
    """

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        from repro.simcore.faults import FaultPlane  # local import: cycle

        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: live (scheduled, not yet executed or cancelled) events — kept
        #: exact by schedule/cancel/pop so pending_count() is O(1)
        self._live = 0
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        #: simulation-wide fault-injection plane; pass-through until armed
        #: (bound to seeded streams *and* given at least one fault point)
        self.faults = FaultPlane()
        #: number of events executed so far (diagnostic / benchmark metric)
        self.events_executed = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` may be zero (runs after all currently-executing work, in
        FIFO order with other zero-delay events). Negative delays raise
        :class:`ScheduleInPastError`.
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        self._seq += 1
        handle = EventHandle(self._now + delay, self._seq, callback, args, loop=self)
        heapq.heappush(self._queue, (handle.time, handle.seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        # Scheduling in the past must raise, so the subtraction is the point.
        return self.schedule(time - self._now, callback, *args)  # repro: noqa[REP006]

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time (after pending
        same-time events)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------- execution

    def _pop_alive(self) -> Optional[EventHandle]:
        while self._queue:
            _, _, handle = heapq.heappop(self._queue)
            if handle.alive:
                self._live -= 1  # about to execute
                return handle
            # lazily dropped: cancelled entry
        return None

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue:
            time, _, handle = self._queue[0]
            if handle.alive:
                return time
            heapq.heappop(self._queue)
        return None

    def step(self) -> bool:
        """Execute exactly one event. Returns ``False`` when none remain."""
        handle = self._pop_alive()
        if handle is None:
            return False
        self._now = handle.time
        callback, args = handle.callback, handle.args
        # Mark consumed before invoking so re-entrant cancel() is a no-op.
        handle.callback = None
        handle.args = None
        self.events_executed += 1
        assert callback is not None
        callback(*(args or ()))
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the final simulated time. When ``until`` is given the clock
        is advanced to exactly ``until`` even if the last event fired
        earlier, so back-to-back ``run(until=...)`` calls compose.

        The loop is the hot path of every experiment: one pass per event
        (the old ``peek()`` + ``step()`` pair traversed the cancelled heap
        prefix twice and paid two extra method calls per event). The pop
        itself stays routed through :meth:`_pop_alive` — the runtime
        sanitizer's event-order audit patches that method.
        """
        if self._running:
            raise SimulatorReentryError("Simulator.run() is not re-entrant")
        self._running = True
        queue = self._queue
        executed_before = self.events_executed
        try:
            while queue:
                head = queue[0][2]
                if not head.alive:
                    heapq.heappop(queue)  # lazily dropped: cancelled entry
                    continue
                if until is not None and head.time > until:
                    break
                handle = self._pop_alive()
                assert handle is not None
                self._now = handle.time
                callback, args = handle.callback, handle.args
                # Mark consumed before invoking so re-entrant cancel() is a
                # no-op (same protocol as step()).
                handle.callback = None
                handle.args = None
                self.events_executed += 1
                assert callback is not None
                callback(*(args or ()))
        finally:
            self._running = False
            PERF.events_executed += self.events_executed - executed_before
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_deadlock(self, watched: "list[Any]") -> float:
        """Run to quiescence; raise :class:`DeadlockError` if any process in
        ``watched`` is still alive when no events remain."""
        self.run()
        alive = [p for p in watched if getattr(p, "alive", False)]
        if alive:
            raise DeadlockError(f"{len(alive)} process(es) blocked forever: {alive!r}")
        return self._now

    # -------------------------------------------------------------- processes

    def spawn(self, generator: Iterator[Any], name: str = "") -> "Process":
        """Start a generator-based process on this loop.

        The generator may ``yield`` any :class:`~repro.simcore.process.Waitable`
        (a :class:`Timeout`, a :class:`Signal`, another :class:`Process`, or
        an :class:`AllOf`/:class:`AnyOf` combinator). Its ``return`` value
        becomes :attr:`Process.result`.
        """
        from repro.simcore.process import Process  # local import: cycle

        return Process(self, generator, name=name)

    def timeout(self, delay: float) -> "Timeout":
        """Create a waitable that fires ``delay`` seconds from now."""
        from repro.simcore.process import Timeout

        return Timeout(self, delay)

    def signal(self, name: str = "") -> "Signal":
        """Create a fresh, unset :class:`Signal` bound to this loop."""
        from repro.simcore.signal import Signal

        return Signal(self, name=name)

    # ------------------------------------------------------------ diagnostics

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1): the
        counter is maintained by schedule/cancel/pop instead of walking
        the heap."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} pending={len(self._queue)}>"
