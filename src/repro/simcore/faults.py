"""Deterministic fault injection (the platform's chaos layer).

Every component with a failure mode exposes a named *fault point* — e.g.
``registry.pull``, ``container.crash_start``, ``channel.loss`` — and asks the
simulation-wide :class:`FaultPlane` (``sim.faults``) whether to misbehave.
The plane draws from named child RNG streams of the run's root seed, so:

* with no faults configured, **no stream is ever created and no random
  number is ever drawn** — a run is bit-identical to one built before this
  module existed (the determinism contract of :mod:`repro.simcore`);
* with faults configured, the *same* seed reproduces the same failures at
  the same points, independent of unrelated components (streams are keyed
  by point name, not creation order).

Besides probabilistic points, :class:`FaultSchedule` injects *timed* faults
(cluster outages, link flaps, control-channel windows) declaratively: a list
of (at, duration, action) entries applied to a running simulator.

Fault points wired into the library
-----------------------------------
===========================  ====================================================
``registry.pull``            image pull fails (``RegistryUnavailable``)
``registry.stall``           image pull stalls for ``stall_s`` extra seconds
``container.crash_start``    container crashes during start (stays un-started)
``container.crash_run``      container crashes *after* becoming ready; the
                             crash time is ``stall_s`` mean exponential
``channel.loss``             a control-channel message is silently dropped
``channel.delay``            a control message pays an extra ``stall_s`` spike
``link.loss``                a data-plane frame is dropped in flight
``controller.crash``         the controller process crashes mid-event-loop
                             (rolled per dispatched event; see AppManager)
``controller.restart``       downtime of an injected controller crash
                             (``stall_s`` seconds; default 1.0)
===========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from numpy.random import Generator

    from repro.simcore.loop import Simulator
    from repro.simcore.rng import RandomStreams, ScopedStreams


class FaultInjected(RuntimeError):
    """Base class for errors raised *because* a fault point fired."""

    def __init__(self, point: str, message: str = "") -> None:
        super().__init__(message or f"injected fault at {point!r}")
        self.point = point


@dataclass
class FaultPoint:
    """Configuration of one named fault point."""

    #: probability in [0, 1] that one roll at this point fires
    rate: float = 0.0
    #: duration parameter (stall length / mean time-to-crash), seconds
    stall_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.stall_s < 0:
            raise ValueError(f"stall must be non-negative, got {self.stall_s!r}")


class FaultPlane:
    """Per-simulation registry of fault points, armed with seeded streams.

    Disabled (the default) it is pure pass-through: :meth:`roll` returns
    ``False`` and :meth:`stall` returns ``0.0`` without touching any RNG, so
    arming the plane — not merely constructing it — is what can perturb a
    run.
    """

    def __init__(self) -> None:
        self._streams: Optional["ScopedStreams"] = None
        self._points: Dict[str, FaultPoint] = {}
        #: point name -> number of times it fired (diagnostics)
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------ configure

    def bind(self, streams: "RandomStreams | ScopedStreams") -> None:
        """Attach the RNG stream factory (a :class:`RandomStreams` or a
        scoped child). Done once by :class:`~repro.netsim.topology.Network`;
        harmless on its own — points must also be configured."""
        self._streams = streams

    def configure(self, point: str, rate: float = 0.0, stall_s: float = 0.0) -> None:
        """Set (or replace) one fault point. ``rate=0`` with ``stall_s=0``
        removes the point entirely."""
        if rate == 0.0 and stall_s == 0.0:
            self._points.pop(point, None)
            return
        self._points[point] = FaultPoint(rate=rate, stall_s=stall_s)

    def configure_many(self, points: Dict[str, Any]) -> None:
        """Bulk configure: ``{"registry.pull": 0.1}`` or
        ``{"registry.stall": {"rate": 0.05, "stall_s": 2.0}}``."""
        for name, value in points.items():
            if isinstance(value, dict):
                self.configure(name, **value)
            else:
                self.configure(name, rate=float(value))

    def clear(self) -> None:
        """Remove every configured point (the plane goes pass-through)."""
        self._points.clear()

    @property
    def armed(self) -> bool:
        """True when at least one point can fire."""
        return self._streams is not None and bool(self._points)

    def point(self, name: str) -> Optional[FaultPoint]:
        return self._points.get(name)

    # ---------------------------------------------------------------- rolls

    def _stream(self, name: str) -> "Generator":
        assert self._streams is not None
        return self._streams.stream(name)

    def roll(self, point: str) -> bool:
        """One Bernoulli draw at ``point``. False (and **no** RNG draw) when
        the point is not configured or the plane is unbound."""
        spec = self._points.get(point)
        if spec is None or spec.rate == 0.0 or self._streams is None:
            return False
        fired = bool(self._stream(point).random() < spec.rate)
        if fired:
            self.injected[point] = self.injected.get(point, 0) + 1
        return fired

    def stall(self, point: str) -> float:
        """Extra seconds to stall at ``point`` (0.0 when it does not fire).

        The stall fires with the point's ``rate`` and lasts ``stall_s``
        seconds exactly — deterministic length, probabilistic occurrence."""
        spec = self._points.get(point)
        if spec is None or spec.stall_s == 0.0 or self._streams is None:
            return 0.0
        if spec.rate < 1.0 and not self.roll(point):
            return 0.0
        if spec.rate >= 1.0:
            self.injected[point] = self.injected.get(point, 0) + 1
        return spec.stall_s

    def delay_after(self, point: str) -> float:
        """Exponential holding time with mean ``stall_s`` (for
        time-to-crash style faults). 0.0 when unconfigured."""
        spec = self._points.get(point)
        if spec is None or spec.stall_s == 0.0 or self._streams is None:
            return 0.0
        return float(self._stream(point + ".delay").exponential(spec.stall_s))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultPlane points={sorted(self._points)} "
                f"{'armed' if self.armed else 'disarmed'}>")


# ---------------------------------------------------------------------------
# Declarative timed faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimedFault:
    """One scheduled fault window: ``apply()`` at ``at``, ``revert()`` at
    ``at + duration_s`` (``duration_s=None`` → never reverted).

    ``target``/``kind`` identify what the window degrades; overlapping
    windows on the same (target, kind) are refcounted by the schedule so the
    revert only happens when the LAST open window closes. Without them each
    fault refcounts against itself (pre-existing behaviour, correct for
    non-overlapping use)."""

    at: float
    apply: Callable[[], Any]
    revert: Optional[Callable[[], Any]] = None
    duration_s: Optional[float] = None
    label: str = ""
    #: the degraded object (cluster, link, channel, manager); used only as
    #: an identity key for overlap refcounting
    target: Any = None
    #: which aspect of the target this window degrades
    kind: str = ""


@dataclass
class FaultSchedule:
    """A declarative list of timed fault windows.

    Build it with the helpers below (:func:`cluster_outage`,
    :func:`link_flap`, :func:`channel_outage`, :func:`controller_outage`) or
    raw :class:`TimedFault` entries, then :meth:`install` it onto a
    simulator. Scheduling uses plain simulator events, so an
    installed-but-empty schedule changes nothing.

    Overlapping windows on the same (target, kind) compose correctly: the
    fault stays applied until the last window closes. [0, 10) and [5, 8)
    outages of one cluster yield a single [0, 10) degradation, not a
    spurious recovery at t=8.
    """

    entries: List[TimedFault] = field(default_factory=list)
    #: open-window refcount per (target identity, kind)
    _active: Dict[Any, int] = field(default_factory=dict, repr=False)

    def add(self, fault: TimedFault) -> "FaultSchedule":
        self.entries.append(fault)
        return self

    def install(self, sim: "Simulator") -> None:
        for fault in self.entries:
            sim.schedule_at(fault.at, self._fire, sim, fault)

    @staticmethod
    def _key(fault: TimedFault) -> Any:
        if fault.target is not None:
            return (id(fault.target), fault.kind)
        return id(fault)  # untargeted: refcount against the fault itself

    def _fire(self, sim: "Simulator", fault: TimedFault) -> None:
        sim.trace.emit(sim.now, "faults", "apply",
                       {"label": fault.label or repr(fault.apply)})
        key = self._key(fault)
        self._active[key] = self._active.get(key, 0) + 1
        fault.apply()
        if fault.revert is not None and fault.duration_s is not None:
            sim.schedule(fault.duration_s, self._revert, sim, fault)

    def _revert(self, sim: "Simulator", fault: TimedFault) -> None:
        assert fault.revert is not None
        key = self._key(fault)
        remaining = self._active.get(key, 1) - 1
        if remaining > 0:
            # Another window on the same target is still open: closing this
            # one must not un-degrade it.
            self._active[key] = remaining
            sim.trace.emit(sim.now, "faults", "revert-deferred",
                           {"label": fault.label or repr(fault.revert),
                            "open_windows": remaining})
            return
        self._active.pop(key, None)
        sim.trace.emit(sim.now, "faults", "revert",
                       {"label": fault.label or repr(fault.revert)})
        fault.revert()


def cluster_outage(cluster: Any, at: float, duration_s: float) -> TimedFault:
    """The whole edge cluster (node/orchestrator) is unreachable for a
    window: deployments fail fast, readiness reads False."""
    return TimedFault(at=at, duration_s=duration_s,
                      apply=cluster.fail, revert=cluster.recover,
                      label=f"outage:{cluster.name}",
                      target=cluster, kind="outage")


def link_flap(link: Any, at: float, duration_s: float) -> TimedFault:
    """A data-plane link goes down for a window (frames in flight lost)."""
    return TimedFault(at=at, duration_s=duration_s,
                      apply=lambda: link.set_up(False),
                      revert=lambda: link.set_up(True),
                      label=f"flap:{link.name}",
                      target=link, kind="flap")


def channel_outage(channel: Any, at: float, duration_s: float) -> TimedFault:
    """The switch–controller control channel is severed for a window."""
    return TimedFault(at=at, duration_s=duration_s,
                      apply=channel.disconnect, revert=channel.reconnect,
                      label="channel-outage",
                      target=channel, kind="outage")


def controller_outage(manager: Any, at: float, duration_s: float) -> TimedFault:
    """The controller *process* crashes for a window: queued events are
    lost, every control channel drops, apps drop volatile state; the warm
    restart at window end triggers flow-state reconciliation (see
    :meth:`~repro.ryuapp.manager.AppManager.crash` and docs/faults.md)."""
    return TimedFault(at=at, duration_s=duration_s,
                      apply=manager.crash, revert=manager.restart,
                      label="controller-outage",
                      target=manager, kind="controller")
