"""Container registries with a pull-time model.

Pull time for an image =
``manifest_s + Σ_per-missing-layer (layer_rtt_s + bytes·8/bandwidth) + unpack``
(unpack is charged by the runtime, not here). Cached layers cost nothing —
the store checks digests first, so images sharing base layers pull faster,
and the private LAN registry's advantage comes from its negligible manifest/
auth handshakes and per-layer round trips (fig. 13: 1.5–2 s faster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.edge.images import ContainerImage, ImageRef


class ImageNotFound(KeyError):
    """The registry does not serve this reference."""


class RegistryUnavailable(RuntimeError):
    """Transient registry failure: the pull attempt died mid-transfer.

    Unlike :class:`ImageNotFound` this is retryable — the deployment
    engine's backoff loop exists for exactly this error."""


@dataclass
class RegistryTiming:
    """Latency/bandwidth model of one registry."""

    #: auth + manifest + config blob round trips
    manifest_s: float
    #: per-layer HTTP round trip (HEAD + GET start)
    layer_rtt_s: float
    #: payload bandwidth in bits per second
    bandwidth_bps: float


#: Calibrated profiles (see DESIGN.md §3): the paper pulls from Docker Hub,
#: Google Container Registry, and a private registry on the same LAN.
DOCKER_HUB_TIMING = RegistryTiming(manifest_s=0.50, layer_rtt_s=0.15, bandwidth_bps=600e6)
GCR_TIMING = RegistryTiming(manifest_s=0.45, layer_rtt_s=0.12, bandwidth_bps=800e6)
PRIVATE_LAN_TIMING = RegistryTiming(manifest_s=0.05, layer_rtt_s=0.01, bandwidth_bps=900e6)


class Registry:
    """One registry instance serving a set of images."""

    def __init__(self, name: str, timing: RegistryTiming):
        self.name = name
        self.timing = timing
        self._images: Dict[str, ContainerImage] = {}
        #: diagnostics
        self.pulls_served = 0
        self.bytes_served = 0

    def push(self, image: ContainerImage) -> None:
        """Publish an image (keyed by repository:tag, registry-relative)."""
        self._images[image.ref.name] = image

    def manifest(self, ref: ImageRef) -> ContainerImage:
        image = self._images.get(ref.name)
        if image is None:
            raise ImageNotFound(f"{self.name}: no such image {ref.name!r}")
        return image

    def has(self, ref: ImageRef) -> bool:
        return ref.name in self._images

    def images(self) -> Iterable[ContainerImage]:
        return list(self._images.values())

    # ----------------------------------------------------------- pull model

    def manifest_time(self) -> float:
        return self.timing.manifest_s

    def layer_time(self, size_bytes: int) -> float:
        return self.timing.layer_rtt_s + size_bytes * 8.0 / self.timing.bandwidth_bps

    def account_pull(self, nbytes: int) -> None:
        self.pulls_served += 1
        self.bytes_served += nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.name} images={len(self._images)}>"


class RegistryHub:
    """Resolves image references to registries (the runtime's view).

    The default registry (for unqualified refs like ``nginx:1.23.2``) plays
    Docker Hub; qualified refs (``gcr.io/...``) resolve by hostname. A
    *mirror* — the private LAN registry — can be configured to take
    precedence for refs it has, reproducing the paper's private-registry
    experiment without changing service definitions.
    """

    def __init__(self, default: Registry):
        self.default = default
        self._by_host: Dict[str, Registry] = {}
        self.mirror: Optional[Registry] = None

    def add(self, host: str, registry: Registry) -> None:
        self._by_host[host] = registry

    def set_mirror(self, registry: Optional[Registry]) -> None:
        self.mirror = registry

    def resolve(self, ref: ImageRef) -> Registry:
        """The registry a pull of ``ref`` will hit."""
        if self.mirror is not None and self.mirror.has(ref):
            return self.mirror
        if ref.registry:
            registry = self._by_host.get(ref.registry)
            if registry is None:
                raise ImageNotFound(f"unknown registry host {ref.registry!r}")
            return registry
        return self.default

    def manifest(self, ref: ImageRef) -> ContainerImage:
        return self.resolve(ref).manifest(ref)
