"""A Docker engine with a docker-SDK-shaped API.

The transparent-edge controller uses the Python docker SDK in the original
implementation; this engine mirrors the surface it needs::

    engine.images.pull("nginx:1.23.2")                  # -> waitable
    handle = yield engine.containers.create("nginx:1.23.2", name=...,
                                            labels={"edge.service": svc})
    yield handle.start()
    engine.containers.list(filters={"label": {"edge.service": svc}})

All operations charge the dockerd API overhead on top of containerd's costs
and return simulation processes (waitables).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional

from repro.edge.containerd import Container, Containerd, ContainerState
from repro.edge.services import ServiceBehavior
from repro.edge.timing import DEFAULT_DOCKER, DockerTiming

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Process, Simulator

#: Host-port pool for published container ports (Docker's ephemeral range).
DOCKER_PORT_BASE = 32768


class DockerContainerHandle:
    """SDK-style handle wrapping a runtime container."""

    def __init__(self, engine: "DockerEngine", container: Container):
        self._engine = engine
        self._container = container

    # --- SDK-ish surface -------------------------------------------------

    @property
    def name(self) -> str:
        return self._container.name

    @property
    def id(self) -> str:
        return self._container.id

    @property
    def status(self) -> str:
        return self._container.state.value

    @property
    def labels(self) -> dict:
        return self._container.labels

    @property
    def host_port(self) -> Optional[int]:
        return self._container.host_port

    @property
    def ready(self) -> bool:
        return self._container.listening

    @property
    def raw(self) -> Container:
        return self._container

    def start(self) -> "Process":
        return self._engine._start(self._container)

    def stop(self) -> "Process":
        return self._engine._stop(self._container)

    def remove(self) -> "Process":
        return self._engine._remove(self._container)


class _ImagesAPI:
    def __init__(self, engine: "DockerEngine"):
        self._engine = engine

    def pull(self, ref: str) -> "Process":
        """``docker pull`` — returns a waitable process."""
        engine = self._engine

        def proc():
            yield engine.sim.timeout(engine.timing.api_call_s)
            image = yield engine.runtime.pull(ref)
            return image

        return engine.sim.spawn(proc(), name=f"docker-pull:{ref}")

    def exists(self, ref: str) -> bool:
        return self._engine.runtime.has_image(ref)

    def remove(self, ref: str) -> bool:
        return self._engine.runtime.delete_image(ref)

    def list(self) -> list:
        return list(self._engine.runtime._manifests.values())


class _ContainersAPI:
    def __init__(self, engine: "DockerEngine"):
        self._engine = engine

    def create(
        self,
        image: str,
        name: str,
        behavior: Optional[ServiceBehavior] = None,
        labels: Optional[dict] = None,
        publish_port: bool = True,
    ) -> "Process":
        """``docker create`` — resolves the behaviour from the image catalog
        when not given, publishes the container port on a host port, and
        returns a waitable yielding a :class:`DockerContainerHandle`."""
        return self._engine._create(image, name, behavior, labels, publish_port)

    def get(self, name: str) -> Optional[DockerContainerHandle]:
        container = self._engine.runtime.container(name)
        if container is None or container.state is ContainerState.REMOVED:
            return None
        return DockerContainerHandle(self._engine, container)

    def list(self, all: bool = False,  # noqa: A002 - mirrors the SDK
             filters: Optional[dict] = None) -> List[DockerContainerHandle]:
        label_selector = (filters or {}).get("label")
        out = []
        for container in self._engine.runtime.containers(label_selector):
            if not all and container.state is not ContainerState.RUNNING:
                continue
            out.append(DockerContainerHandle(self._engine, container))
        return out


class DockerEngine:
    """dockerd on one node, backed by that node's containerd."""

    def __init__(self, sim: "Simulator", runtime: Containerd,
                 timing: Optional[DockerTiming] = None):
        self.sim = sim
        self.runtime = runtime
        self.timing = timing if timing is not None else DEFAULT_DOCKER
        self.images = _ImagesAPI(self)
        self.containers = _ContainersAPI(self)
        self._port_counter = itertools.count(DOCKER_PORT_BASE)

    @property
    def node(self):
        return self.runtime.node

    def alloc_host_port(self) -> int:
        return next(self._port_counter)

    # ------------------------------------------------------------- internals

    def _resolve_behavior(self, image_ref: str,
                          behavior: Optional[ServiceBehavior]) -> Optional[ServiceBehavior]:
        if behavior is not None:
            return behavior
        image = self.runtime.image(image_ref)
        if image is not None and image.app is not None:
            from repro.edge.services import EDGE_SERVICE_CATALOG
            for entry in EDGE_SERVICE_CATALOG.values():
                for img, beh in zip(entry.images, entry.behaviors, strict=True):
                    if img.app == image.app:
                        return beh
        return None

    def _create(self, image_ref: str, name: str, behavior, labels, publish_port) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            resolved = self._resolve_behavior(image_ref, behavior)
            host_port = None
            if publish_port and resolved is not None and resolved.port is not None:
                host_port = self.alloc_host_port()
            container = yield self.runtime.create(
                name, image_ref, resolved, host_port=host_port, labels=labels)
            return DockerContainerHandle(self, container)

        return self.sim.spawn(proc(), name=f"docker-create:{name}")

    def _start(self, container: Container) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s + self.timing.start_extra_s)
            yield self.runtime.start(container)
            return DockerContainerHandle(self, container)

        return self.sim.spawn(proc(), name=f"docker-start:{container.name}")

    def _stop(self, container: Container) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            yield self.runtime.stop(container)
            return DockerContainerHandle(self, container)

        return self.sim.spawn(proc(), name=f"docker-stop:{container.name}")

    def _remove(self, container: Container) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            if container.state is ContainerState.RUNNING:
                yield self.runtime.stop(container)
            yield self.runtime.remove(container)
            return None

        return self.sim.spawn(proc(), name=f"docker-remove:{container.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DockerEngine on {self.node.name}>"
