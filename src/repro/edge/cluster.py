"""Uniform edge-cluster façade.

The SDN controller's Dispatcher is deliberately independent of the cluster
type (§V: "It does not matter whether the edge cluster is running Docker or
Kubernetes — we use the same service definition for both"). This module
provides that abstraction: a :class:`DeploymentSpec` (cluster-neutral,
produced by the annotation pipeline in :mod:`repro.core.annotate`) and two
:class:`EdgeCluster` implementations mapping the paper's three deployment
phases (fig. 4) onto Docker and Kubernetes:

=========  ============================  =================================
Phase      Docker                        Kubernetes
=========  ============================  =================================
Pull       ``docker pull``               kubelet image pull
Create     create container(s)           create Deployment + Service (0 replicas)
Scale Up   start container(s)            scale Deployment to 1
ScaleDown  stop container(s)             scale Deployment to 0
Remove     remove container(s)           delete Deployment + Service
Delete     delete image                  delete image
=========  ============================  =================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.edge.containerd import Containerd
from repro.edge.docker import DockerEngine
from repro.edge.kubernetes import (
    DEFAULT_SCHEDULER,
    ContainerSpec,
    Deployment,
    KubernetesCluster,
    PodTemplate,
    Service,
)
from repro.edge.services import ServiceBehavior
from repro.netsim.addresses import IPv4

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import Host
    from repro.simcore import Process, Simulator

#: controller port-probe poll period ("the controller continuously tests if
#: the respective port is open", §VI)
PROBE_INTERVAL_S = 0.020


class ClusterUnavailable(RuntimeError):
    """The cluster (node / orchestrator API) is down — operations against
    it fail fast instead of hanging. Raised while :attr:`EdgeCluster.up`
    is False (outage injection, maintenance windows)."""


class ClusterStateError(RuntimeError):
    """A lifecycle operation was issued out of order (e.g. scale-up before
    create). Subclasses :class:`RuntimeError` for backwards compatibility."""


@dataclass(frozen=True)
class Endpoint:
    """Where a service instance is reachable (node IP + published port)."""

    ip: IPv4
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


@dataclass(frozen=True)
class SpecContainer:
    """One container of a cluster-neutral deployment spec."""

    name: str
    image: str
    behavior: Optional[ServiceBehavior] = None


@dataclass(frozen=True)
class DeploymentSpec:
    """Cluster-neutral, fully-annotated service deployment description."""

    #: unique worldwide service name (auto-annotated, §V)
    name: str
    containers: Tuple[SpecContainer, ...]
    #: port the service is exposed on / container target port
    port: int = 80
    target_port: int = 80
    protocol: str = "TCP"
    labels: Dict[str, str] = field(default_factory=dict)
    scheduler_name: str = DEFAULT_SCHEDULER
    #: replica count a Scale-Up targets (honoured by Kubernetes; the Docker
    #: backend runs a single instance per "cluster", as in the paper)
    replicas: int = 1

    @property
    def serving_container(self) -> SpecContainer:
        for container in self.containers:
            if container.behavior is not None and container.behavior.port is not None:
                return container
        return self.containers[0]


@dataclass
class InstanceInfo:
    """One service instance as the Dispatcher sees it."""

    cluster: "EdgeCluster"
    endpoint: Endpoint
    ready: bool


class EdgeCluster:
    """Abstract façade; see :class:`DockerCluster` / :class:`KubernetesEdgeCluster`."""

    cluster_type = "abstract"

    def __init__(self, sim: "Simulator", name: str, node: "Host",
                 runtime: Containerd, zone: str = "default"):
        self.sim = sim
        self.name = name
        self.node = node
        self.runtime = runtime
        #: topology zone used by the Global Scheduler's proximity metric
        self.zone = zone
        #: cluster reachability: False during an injected/maintenance outage
        #: (deployment operations raise :class:`ClusterUnavailable`,
        #: readiness reads False so dispatch avoids the cluster)
        self.up = True
        #: outage count (diagnostics)
        self.outages = 0
        #: RTT a controller port-probe pays against this cluster
        self.probe_rtt_s = 0.001
        #: latency of one inventory query (the controller asking the Docker/
        #: Kubernetes API for existing+running instances, fig. 7) — this is
        #: the cost FlowMemory saves on re-misses
        self.inventory_query_s = 0.004
        #: diagnostics (per-phase operation counts)
        self.ops: Dict[str, int] = {"pull": 0, "create": 0, "scale_up": 0,
                                    "scale_down": 0, "remove": 0}
        #: bumped on every lifecycle operation and up/down transition;
        #: controller-side memoized install plans are valid only while it is
        #: unchanged (readiness itself is always re-probed live). Because the
        #: counter is *per cluster*, it doubles as this cluster's component of
        #: the controller's fine-grained plan epoch: churn on one cluster
        #: never invalidates plans pinned to another
        #: (docs/performance.md, "Revalidation").
        self.generation = 0

    def _note_op(self, op: str) -> None:
        """Count a lifecycle operation and invalidate memoized decisions."""
        self.ops[op] += 1
        self.generation += 1

    # ---- images ---------------------------------------------------------

    def has_image(self, image_ref: str) -> bool:
        return self.runtime.has_image(image_ref)

    def has_images(self, spec: DeploymentSpec) -> bool:
        return all(self.runtime.has_image(c.image) for c in spec.containers)

    def pull(self, spec: DeploymentSpec) -> "Process":
        """Phase 1 — pull every image of the spec (sequentially, like the
        runtime does for one pod)."""
        self._note_op("pull")

        def proc():
            for container in spec.containers:
                yield self.runtime.pull(container.image)

        return self.sim.spawn(proc(), name=f"{self.name}:pull:{spec.name}")

    def delete_images(self, spec: DeploymentSpec) -> None:
        for container in spec.containers:
            self.runtime.delete_image(container.image)

    # ---- lifecycle (abstract) -------------------------------------------

    def is_created(self, spec: DeploymentSpec) -> bool:
        raise NotImplementedError

    def create(self, spec: DeploymentSpec) -> "Process":
        raise NotImplementedError

    def scale_up(self, spec: DeploymentSpec) -> "Process":
        raise NotImplementedError

    def scale_down(self, spec: DeploymentSpec) -> "Process":
        raise NotImplementedError

    def remove(self, spec: DeploymentSpec) -> "Process":
        raise NotImplementedError

    def endpoint(self, spec: DeploymentSpec) -> Optional[Endpoint]:
        """Where the instance will be reachable (regardless of readiness)."""
        raise NotImplementedError

    # ---- availability -----------------------------------------------------

    def fail(self) -> None:
        """Take the cluster down (node outage). Idempotent."""
        if self.up:
            self.up = False
            self.outages += 1
            self.generation += 1
            self.sim.trace.emit(self.sim.now, "cluster", "down", {"name": self.name})

    def recover(self) -> None:
        """Bring the cluster back after an outage. Idempotent."""
        if not self.up:
            self.up = True
            self.generation += 1
            self.sim.trace.emit(self.sim.now, "cluster", "up", {"name": self.name})

    def check_available(self) -> None:
        """Raise :class:`ClusterUnavailable` while the cluster is down."""
        if not self.up:
            raise ClusterUnavailable(f"cluster {self.name!r} is down")

    # ---- readiness --------------------------------------------------------

    def port_open(self, endpoint: Endpoint) -> bool:
        return self.node.listening_on(endpoint.port)

    def is_ready(self, spec: DeploymentSpec) -> bool:
        if not self.up:
            return False
        endpoint = self.endpoint(spec)
        return endpoint is not None and self.port_open(endpoint)

    def instances(self, spec: DeploymentSpec) -> List[InstanceInfo]:
        endpoint = self.endpoint(spec)
        if endpoint is None:
            return []
        return [InstanceInfo(cluster=self, endpoint=endpoint,
                             ready=self.up and self.port_open(endpoint))]

    def estimate_cold_start_s(self, spec: DeploymentSpec) -> float:
        """Rough cold-start estimate: orchestrator overhead + app startup +
        pull time for missing layers. Schedulers use it to honour a
        service's ``max_initial_delay_s`` budget."""
        # Orchestrator start overhead (empirical, matches fig. 11 bands).
        total = 0.55 if self.cluster_type == "docker" else 2.6
        serving = spec.serving_container
        if serving.behavior is not None:
            total += serving.behavior.startup_s
        if not self.has_images(spec):
            from repro.edge.registry import ImageNotFound

            missing = 0
            for container in spec.containers:
                ref = self.runtime._ref(container.image)
                try:
                    image = self.runtime.hub.manifest(ref)
                except ImageNotFound:
                    continue  # unpullable: the attempt will fail fast anyway
                registry = self.runtime.hub.resolve(ref)
                for layer in image.layers:
                    # Layers already cached on the node cost nothing.
                    if layer.digest not in self.runtime._layers:
                        total += registry.layer_time(layer.size_bytes)
                        missing += 1
                if missing:
                    total += registry.manifest_time()
        return total

    def wait_ready(self, spec: DeploymentSpec) -> "Process":
        """Port-probe loop: poll every PROBE_INTERVAL_S (paying one probe RTT
        per attempt) until the service port accepts connections. Returns the
        ready endpoint."""

        def proc():
            while True:
                yield self.sim.timeout(self.probe_rtt_s)
                self.check_available()  # outage: probes fail fast
                endpoint = self.endpoint(spec)
                if endpoint is not None and self.port_open(endpoint):
                    return endpoint
                yield self.sim.timeout(PROBE_INTERVAL_S)

        return self.sim.spawn(proc(), name=f"{self.name}:wait-ready:{spec.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} zone={self.zone}>"


class DockerCluster(EdgeCluster):
    """A "cluster" that is one Docker engine (the paper's lightweight case)."""

    cluster_type = "docker"

    def __init__(self, sim: "Simulator", name: str, engine: DockerEngine,
                 zone: str = "default"):
        super().__init__(sim, name, engine.node, engine.runtime, zone)
        self.engine = engine

    # Docker containers are named "<service>-<container>".

    def _handles(self, spec: DeploymentSpec, include_stopped: bool = True) -> list:
        out = []
        for container in spec.containers:
            handle = self.engine.containers.get(f"{spec.name}-{container.name}")
            if handle is not None and (include_stopped or handle.status == "running"):
                out.append(handle)
        return out

    def is_created(self, spec: DeploymentSpec) -> bool:
        return len(self._handles(spec)) == len(spec.containers)

    def create(self, spec: DeploymentSpec) -> "Process":
        self._note_op("create")

        def proc():
            handles = []
            for container in spec.containers:
                handle = yield self.engine.containers.create(
                    container.image,
                    name=f"{spec.name}-{container.name}",
                    behavior=container.behavior,
                    labels={"edge.service": spec.name, **spec.labels},
                )
                handles.append(handle)
            return handles

        return self.sim.spawn(proc(), name=f"{self.name}:create:{spec.name}")

    def scale_up(self, spec: DeploymentSpec) -> "Process":
        self._note_op("scale_up")

        def proc():
            handles = self._handles(spec)
            if len(handles) != len(spec.containers):
                raise ClusterStateError(f"{spec.name}: not created on {self.name}")
            for handle in handles:
                if handle.status != "running":
                    yield handle.start()
            return self.endpoint(spec)

        return self.sim.spawn(proc(), name=f"{self.name}:scale-up:{spec.name}")

    def scale_down(self, spec: DeploymentSpec) -> "Process":
        self._note_op("scale_down")

        def proc():
            for handle in self._handles(spec):
                if handle.status == "running":
                    yield handle.stop()

        return self.sim.spawn(proc(), name=f"{self.name}:scale-down:{spec.name}")

    def remove(self, spec: DeploymentSpec) -> "Process":
        self._note_op("remove")

        def proc():
            for handle in self._handles(spec):
                yield handle.remove()

        return self.sim.spawn(proc(), name=f"{self.name}:remove:{spec.name}")

    def endpoint(self, spec: DeploymentSpec) -> Optional[Endpoint]:
        serving = spec.serving_container
        handle = self.engine.containers.get(f"{spec.name}-{serving.name}")
        if handle is None or handle.host_port is None:
            return None
        return Endpoint(ip=self.node.ip, port=handle.host_port)


class KubernetesEdgeCluster(EdgeCluster):
    """An edge cluster managed by Kubernetes."""

    cluster_type = "kubernetes"

    def __init__(self, sim: "Simulator", name: str, cluster: KubernetesCluster,
                 node: "Host", runtime: Containerd, zone: str = "default"):
        super().__init__(sim, name, node, runtime, zone)
        self.k8s = cluster
        # Listing Deployments/Pods/Services via the API server costs more
        # than a dockerd list.
        self.inventory_query_s = 0.008

    def _selector(self, spec: DeploymentSpec) -> Dict[str, str]:
        return {"edge.service": spec.name}

    def is_created(self, spec: DeploymentSpec) -> bool:
        return (self.k8s.api.get("Deployment", spec.name) is not None
                and self.k8s.api.get("Service", spec.name) is not None)

    def create(self, spec: DeploymentSpec) -> "Process":
        """Create Deployment (replicas=0, "scale to zero") + Service."""
        self._note_op("create")

        def proc():
            labels = {"edge.service": spec.name, **spec.labels}
            template = PodTemplate(
                labels=labels,
                containers=[ContainerSpec(c.name, c.image, c.behavior)
                            for c in spec.containers],
                scheduler_name=spec.scheduler_name,
            )
            yield self.k8s.create_deployment(
                Deployment(spec.name, template, replicas=0, labels=labels))
            yield self.k8s.create_service(
                Service(spec.name, selector=self._selector(spec),
                        port=spec.port, target_port=spec.target_port,
                        protocol=spec.protocol, labels=labels))

        return self.sim.spawn(proc(), name=f"{self.name}:create:{spec.name}")

    def scale_up(self, spec: DeploymentSpec) -> "Process":
        self._note_op("scale_up")

        def proc():
            yield self.k8s.scale(spec.name, max(1, spec.replicas))
            return self.endpoint(spec)

        return self.sim.spawn(proc(), name=f"{self.name}:scale-up:{spec.name}")

    def scale_down(self, spec: DeploymentSpec) -> "Process":
        self._note_op("scale_down")

        def proc():
            yield self.k8s.scale(spec.name, 0)

        return self.sim.spawn(proc(), name=f"{self.name}:scale-down:{spec.name}")

    def remove(self, spec: DeploymentSpec) -> "Process":
        self._note_op("remove")

        def proc():
            if self.k8s.api.get("Deployment", spec.name) is not None:
                yield self.k8s.delete_deployment(spec.name)
            if self.k8s.api.get("Service", spec.name) is not None:
                yield self.k8s.api.delete("Service", spec.name)

        return self.sim.spawn(proc(), name=f"{self.name}:remove:{spec.name}")

    def endpoint(self, spec: DeploymentSpec) -> Optional[Endpoint]:
        svc = self.k8s.api.get("Service", spec.name)
        if svc is None or svc.node_port is None:
            return None
        return Endpoint(ip=self.node.ip, port=svc.node_port)
