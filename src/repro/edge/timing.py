"""Calibrated timing models for the container substrate.

Every duration the simulation charges for a runtime operation lives here as
an explicit, documented constant, calibrated so the canonical topology
reproduces the medians the paper reports (fig. 11–16):

* Docker scale-up of a cached web container: **< 1 s** (≈ 0.5–0.6 s);
* Kubernetes scale-up of the same container: **≈ 3 s**;
* Create adds **≈ 100 ms**;
* private-LAN registry pulls **1.5–2 s faster** than Docker Hub;
* warm-instance responses ≈ 1 ms for web services, ResNet ≫.

Nothing downstream hard-codes a result: these are *inputs* (per-operation
costs), and the measured totals emerge from the message/reconcile flows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ContainerdTiming:
    """Costs of the shared container runtime on the edge gateway server.

    Mohan et al. [23] measured that creation/initialization of network
    namespaces accounts for ~90 % of container cold-start, which is why
    ``netns_setup_s`` dominates ``start``.
    """

    #: `containerd` client call overhead (ctr/api round trip)
    api_call_s: float = 0.010
    #: creating the container object + snapshot (the "Create" phase body)
    create_s: float = 0.080
    #: network namespace creation + veth/bridge wiring (dominates cold start)
    netns_setup_s: float = 0.300
    #: remaining start work: OCI runtime spec, shim, exec of PID 1
    start_exec_s: float = 0.060
    #: unpacking a pulled layer, per MiB (gzip + overlayfs)
    unpack_s_per_mib: float = 0.004
    #: stopping (SIGTERM->exit) and removing
    stop_s: float = 0.050
    remove_s: float = 0.040
    #: netns creation serializes in the kernel; concurrent starts queue
    netns_serialized: bool = True


@dataclass
class DockerTiming:
    """Docker-engine overhead on top of containerd."""

    #: dockerd API call overhead (REST + engine bookkeeping)
    api_call_s: float = 0.020
    #: extra per-container engine work during start (port publish, iptables)
    start_extra_s: float = 0.040


@dataclass
class KubernetesTiming:
    """Control-plane costs of the single-node K8s cluster.

    The ≈ 3 s scale-up the paper measures is the *sum of the reconcile
    chain* (deployment → replicaset → scheduler → kubelet → CNI → status →
    endpoints), not one constant; each hop's watch latency and work time is
    modelled here.
    """

    #: API-server request latency (etcd write + admission)
    api_call_s: float = 0.030
    #: watch-event propagation latency (informer delivery)
    watch_latency_s: float = 0.050
    #: deployment controller sync work
    deployment_sync_s: float = 0.060
    #: replicaset controller sync work
    replicaset_sync_s: float = 0.060
    #: scheduler: queue wait + filter/score cycle
    scheduler_s: float = 0.250
    #: kubelet: pod-sync loop delay before acting on a newly-bound pod
    kubelet_sync_s: float = 0.350
    #: CNI plugin sandbox networking (on top of containerd netns cost)
    cni_setup_s: float = 0.450
    #: pause/sandbox container creation
    sandbox_s: float = 0.200
    #: kubelet -> API status update + endpoints controller -> kube-proxy
    status_propagation_s: float = 0.300
    #: kube-proxy programming iptables/ipvs for a service's endpoints
    proxy_program_s: float = 0.100


@dataclass
class ServiceTimingOverrides:
    """Optional per-experiment scaling knobs (ablations)."""

    startup_scale: float = 1.0
    request_scale: float = 1.0


DEFAULT_CONTAINERD = ContainerdTiming()
DEFAULT_DOCKER = DockerTiming()
DEFAULT_KUBERNETES = KubernetesTiming()
