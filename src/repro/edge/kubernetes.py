"""A behavioural Kubernetes cluster model.

Implements the object model and reconcile pipeline that produce the ~3 s
scale-up overhead the paper measures against Docker's < 1 s (fig. 11): an
API server with watches, the deployment → replicaset → pod chain, a
pluggable scheduler (the paper's *Local Scheduler* hook, §IV-B2), per-node
kubelets driving the shared containerd, and a kube-proxy that programs a
NodePort once a service has ready endpoints.

Nothing here hard-codes the 3 s: it emerges from per-hop watch latencies,
controller sync costs, CNI/sandbox setup, and status propagation — all
declared in :class:`~repro.edge.timing.KubernetesTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.edge.containerd import Container, Containerd, ContainerState
from repro.edge.services import ServiceBehavior
from repro.edge.timing import DEFAULT_KUBERNETES, KubernetesTiming

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Process, Simulator

NODE_PORT_BASE = 31000
DEFAULT_SCHEDULER = "default-scheduler"

ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"


class ApiError(RuntimeError):
    """API-server request rejected (conflict / not found / invalid)."""


# --------------------------------------------------------------------------
# Object model
# --------------------------------------------------------------------------

_uid_counter = itertools.count(1)


@dataclass
class ContainerSpec:
    """One container within a pod template."""

    name: str
    image: str
    behavior: Optional[ServiceBehavior] = None


@dataclass
class PodTemplate:
    """Pod template shared by Deployment → ReplicaSet → Pod."""

    labels: Dict[str, str]
    containers: List[ContainerSpec]
    scheduler_name: str = DEFAULT_SCHEDULER

    def signature(self) -> tuple:
        return (tuple(sorted(self.labels.items())),
                tuple((c.name, c.image) for c in self.containers),
                self.scheduler_name)


class K8sObject:
    """Base API object: kind/name/labels/uid/resourceVersion."""

    kind = "Object"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.uid = f"uid-{next(_uid_counter):06d}"
        self.resource_version = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.name}>"


class Deployment(K8sObject):
    kind = "Deployment"

    def __init__(self, name: str, template: PodTemplate, replicas: int = 0,
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, labels)
        self.template = template
        self.spec_replicas = replicas
        self.status_ready_replicas = 0


class ReplicaSet(K8sObject):
    kind = "ReplicaSet"

    def __init__(self, name: str, owner: str, template: PodTemplate, replicas: int,
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, labels)
        self.owner = owner  # deployment name
        self.template = template
        self.spec_replicas = replicas


class Pod(K8sObject):
    kind = "Pod"

    def __init__(self, name: str, owner: str, template: PodTemplate):
        super().__init__(name, dict(template.labels))
        self.owner = owner  # replicaset name
        self.template = template
        self.scheduler_name = template.scheduler_name
        self.node_name: Optional[str] = None
        self.phase = "Pending"
        self.ready = False
        self.containers: List[Container] = []  # runtime containers once started
        self.deletion_requested = False
        #: requests this pod served via the service proxy (HPA input)
        self.requests_served = 0


class Service(K8sObject):
    kind = "Service"

    def __init__(self, name: str, selector: Dict[str, str], port: int,
                 target_port: int, protocol: str = "TCP",
                 labels: Optional[Dict[str, str]] = None):
        super().__init__(name, labels)
        self.selector = dict(selector)
        self.port = port
        self.target_port = target_port
        self.protocol = protocol
        self.node_port: Optional[int] = None  # allocated by the API server
        self.endpoints_ready = False


# --------------------------------------------------------------------------
# API server
# --------------------------------------------------------------------------


class APIServer:
    """Object store + watch fan-out with per-request latency."""

    def __init__(self, sim: "Simulator", timing: KubernetesTiming):
        self.sim = sim
        self.timing = timing
        self._store: Dict[str, Dict[str, K8sObject]] = {}
        self._watchers: Dict[str, List[Callable[[str, K8sObject], None]]] = {}
        self._resource_version = itertools.count(1)
        #: diagnostics
        self.requests = 0

    # -- reads are immediate (informer caches); writes charge latency -------

    def get(self, kind: str, name: str) -> Optional[K8sObject]:
        return self._store.get(kind, {}).get(name)

    def list(self, kind: str, selector: Optional[Dict[str, str]] = None) -> List[K8sObject]:
        out = []
        for obj in self._store.get(kind, {}).values():
            if selector and any(obj.labels.get(k) != v for k, v in selector.items()):
                continue
            out.append(obj)
        return out

    def watch(self, kind: str, callback: Callable[[str, K8sObject], None]) -> None:
        self._watchers.setdefault(kind, []).append(callback)

    def _notify(self, event: str, obj: K8sObject) -> None:
        for callback in self._watchers.get(obj.kind, []):
            self.sim.schedule(self.timing.watch_latency_s, callback, event, obj)

    # -- writes --------------------------------------------------------------

    def create(self, obj: K8sObject) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            self.requests += 1
            bucket = self._store.setdefault(obj.kind, {})
            if obj.name in bucket:
                raise ApiError(f"{obj.kind} {obj.name!r} already exists")
            obj.resource_version = next(self._resource_version)
            bucket[obj.name] = obj
            self._notify(ADDED, obj)
            return obj

        return self.sim.spawn(proc(), name=f"api-create:{obj.kind}/{obj.name}")

    def patch(self, kind: str, name: str, mutator: Callable[[K8sObject], None]) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            self.requests += 1
            obj = self.get(kind, name)
            if obj is None:
                raise ApiError(f"{kind} {name!r} not found")
            mutator(obj)
            obj.resource_version = next(self._resource_version)
            self._notify(MODIFIED, obj)
            return obj

        return self.sim.spawn(proc(), name=f"api-patch:{kind}/{name}")

    def delete(self, kind: str, name: str) -> "Process":
        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            self.requests += 1
            obj = self._store.get(kind, {}).pop(name, None)
            if obj is None:
                raise ApiError(f"{kind} {name!r} not found")
            self._notify(DELETED, obj)
            return obj

        return self.sim.spawn(proc(), name=f"api-delete:{kind}/{name}")


# --------------------------------------------------------------------------
# Controllers
# --------------------------------------------------------------------------


class DeploymentController:
    """deployment → replicaset reconciliation."""

    def __init__(self, cluster: "KubernetesCluster"):
        self.cluster = cluster
        cluster.api.watch("Deployment", self._on_event)

    def _on_event(self, event: str, obj: K8sObject) -> None:
        if event == DELETED:
            self.cluster.sim.schedule(self.cluster.timing.deployment_sync_s,
                                      self._gc_replicasets, obj.name)
            return
        self.cluster.sim.schedule(self.cluster.timing.deployment_sync_s,
                                  self._sync, obj.name)

    def _sync(self, deployment_name: str) -> None:
        api = self.cluster.api
        deployment = api.get("Deployment", deployment_name)
        if deployment is None:
            return
        rs_name = f"{deployment_name}-rs"
        rs = api.get("ReplicaSet", rs_name)
        if rs is None:
            api.create(ReplicaSet(rs_name, owner=deployment_name,
                                  template=deployment.template,
                                  replicas=deployment.spec_replicas,
                                  labels=dict(deployment.template.labels)))
        elif (rs.spec_replicas != deployment.spec_replicas
              or rs.template.signature() != deployment.template.signature()):
            def mutate(obj, d=deployment):
                obj.spec_replicas = d.spec_replicas
                obj.template = d.template
            api.patch("ReplicaSet", rs_name, mutate)

    def _gc_replicasets(self, deployment_name: str) -> None:
        api = self.cluster.api
        for rs in list(api.list("ReplicaSet")):
            if rs.owner == deployment_name:
                api.delete("ReplicaSet", rs.name)


class ReplicaSetController:
    """replicaset → pods reconciliation (creates/deletes pods)."""

    def __init__(self, cluster: "KubernetesCluster"):
        self.cluster = cluster
        self._pod_counter = itertools.count(1)
        #: creations issued but not yet visible in the API store — the real
        #: RS controller's "expectations", preventing double-creation when
        #: two syncs race
        self._pending_creates: Dict[str, int] = {}
        cluster.api.watch("ReplicaSet", self._on_event)
        cluster.api.watch("Pod", self._on_pod_event)

    def _on_event(self, event: str, obj: K8sObject) -> None:
        if event == DELETED:
            self.cluster.sim.schedule(self.cluster.timing.replicaset_sync_s,
                                      self._gc_pods, obj.name)
            return
        self.cluster.sim.schedule(self.cluster.timing.replicaset_sync_s,
                                  self._sync, obj.name)

    def _on_pod_event(self, event: str, obj: K8sObject) -> None:
        # A deleted pod (e.g. its node failed) must be replaced to keep the
        # owner ReplicaSet at spec.
        if event == DELETED and isinstance(obj, Pod):
            self.cluster.sim.schedule(self.cluster.timing.replicaset_sync_s,
                                      self._sync, obj.owner)

    def _pods_of(self, rs_name: str) -> List[Pod]:
        return [pod for pod in self.cluster.api.list("Pod")
                if pod.owner == rs_name and not pod.deletion_requested]

    def _sync(self, rs_name: str) -> None:
        api = self.cluster.api
        rs = api.get("ReplicaSet", rs_name)
        if rs is None:
            return
        pods = self._pods_of(rs_name)
        pending = self._pending_creates.get(rs_name, 0)
        diff = rs.spec_replicas - len(pods) - pending
        if diff > 0:
            for _ in range(diff):
                pod = Pod(f"{rs_name}-{next(self._pod_counter):04d}",
                          owner=rs_name, template=rs.template)
                self._pending_creates[rs_name] = \
                    self._pending_creates.get(rs_name, 0) + 1
                process = api.create(pod)
                process._wait_subscribe(
                    lambda _p, rs_name=rs_name: self._create_landed(rs_name))
        elif diff < 0:
            # Scale down: prefer not-ready pods, then newest.
            victims = sorted(pods, key=lambda p: (not p.ready, p.name),
                             reverse=True)[:(-diff)]
            for pod in victims:
                pod.deletion_requested = True
                self.cluster._teardown_pod(pod)
                api.delete("Pod", pod.name)

    def _create_landed(self, rs_name: str) -> None:
        count = self._pending_creates.get(rs_name, 0)
        if count <= 1:
            self._pending_creates.pop(rs_name, None)
        else:
            self._pending_creates[rs_name] = count - 1

    def _gc_pods(self, rs_name: str) -> None:
        for pod in self._pods_of(rs_name):
            pod.deletion_requested = True
            self.cluster._teardown_pod(pod)
            self.cluster.api.delete("Pod", pod.name)


class KubeScheduler:
    """The default scheduler; also the registration point for custom
    ("Local") schedulers via ``select_node`` injection."""

    def __init__(self, cluster: "KubernetesCluster", name: str = DEFAULT_SCHEDULER,
                 select_node: Optional[Callable[[Pod, List[str]], str]] = None,
                 latency_s: Optional[float] = None):
        self.cluster = cluster
        self.name = name
        self.select_node = select_node or self._least_loaded
        self.latency_s = latency_s if latency_s is not None else cluster.timing.scheduler_s
        self.pods_scheduled = 0
        #: bindings decided but not yet persisted through the API — the
        #: real scheduler's "assume" cache, needed so two pods bound in the
        #: same cycle spread instead of both seeing an empty node
        self._assumed: Dict[str, str] = {}
        cluster.api.watch("Pod", self._on_event)

    def _least_loaded(self, pod: Pod, nodes: List[str]) -> str:
        counts = {name: 0 for name in nodes}
        for other in self.cluster.api.list("Pod"):
            if other.node_name in counts:
                counts[other.node_name] += 1
        for assumed_node in self._assumed.values():
            if assumed_node in counts:
                counts[assumed_node] += 1
        return min(nodes, key=lambda name: (counts[name], name))

    def _on_event(self, event: str, pod: K8sObject) -> None:
        if event != ADDED or not isinstance(pod, Pod):
            return
        if pod.node_name is not None or pod.scheduler_name != self.name:
            return
        self.cluster.sim.schedule(self.latency_s, self._bind, pod.name)

    def _bind(self, pod_name: str) -> None:
        pod = self.cluster.api.get("Pod", pod_name)
        if pod is None or pod.node_name is not None:
            return
        nodes = list(self.cluster.kubelets)
        if not nodes:
            return
        node_name = self.select_node(pod, nodes)
        self.pods_scheduled += 1
        self._assumed[pod_name] = node_name

        def mutate(obj):
            obj.node_name = node_name
            self._assumed.pop(pod_name, None)

        self.cluster.api.patch("Pod", pod_name, mutate)


class Kubelet:
    """Per-node pod lifecycle agent driving containerd."""

    #: readiness-probe period (kubelet checks container readiness)
    PROBE_PERIOD_S = 0.25

    def __init__(self, cluster: "KubernetesCluster", node_name: str, runtime: Containerd):
        self.cluster = cluster
        self.node_name = node_name
        self.runtime = runtime
        self.pods_started = 0
        cluster.api.watch("Pod", self._on_event)

    def _on_event(self, event: str, pod: K8sObject) -> None:
        if event == DELETED or not isinstance(pod, Pod):
            return
        if pod.node_name != self.node_name or pod.phase != "Pending":
            return
        if getattr(pod, "_kubelet_claimed", False):
            return
        pod._kubelet_claimed = True
        self.cluster.sim.schedule(self.cluster.timing.kubelet_sync_s,
                                  self._run_pod, pod.name)

    def _run_pod(self, pod_name: str) -> None:
        self.cluster.sim.spawn(self._run_pod_proc(pod_name), name=f"kubelet-run:{pod_name}")

    def _run_pod_proc(self, pod_name: str):
        sim = self.cluster.sim
        timing = self.cluster.timing
        api = self.cluster.api
        pod = api.get("Pod", pod_name)
        if pod is None or pod.deletion_requested:
            return
        # Sandbox (pause container) + CNI networking.
        yield sim.timeout(timing.sandbox_s + timing.cni_setup_s)
        containers: List[Container] = []
        for spec in pod.template.containers:
            if not self.runtime.has_image(spec.image):
                yield self.runtime.pull(spec.image)
            if pod.deletion_requested:
                return
            behavior = spec.behavior or self.cluster._behavior_for_image(spec.image)
            container = yield self.runtime.create(
                f"{pod_name}-{spec.name}", spec.image, behavior,
                host_port=None, labels={"io.kubernetes.pod": pod_name})
            containers.append(container)
        for container in containers:
            yield self.runtime.start(container)
        if pod.deletion_requested:
            for container in containers:
                if container.state is ContainerState.RUNNING:
                    yield self.runtime.stop(container)
            return
        pod.containers = containers
        self.pods_started += 1

        def to_running(obj):
            obj.phase = "Running"

        yield api.patch("Pod", pod_name, to_running)
        # Readiness: probe until every container reports ready.
        while not all(c.ready_at is not None for c in containers):
            yield sim.timeout(self.PROBE_PERIOD_S)
            if pod.deletion_requested:
                return
        yield sim.timeout(timing.status_propagation_s)

        def to_ready(obj):
            obj.ready = True

        yield api.patch("Pod", pod_name, to_ready)


class EndpointsProxy:
    """Endpoints controller + kube-proxy: programs NodePorts.

    A NodePort begins accepting only once the service has ≥ 1 ready pod —
    before that, connection attempts are refused, which is why the SDN
    controller port-probes before installing flows (§VI). With several
    ready pods, connections are balanced round-robin across them (iptables
    ``--mode random`` ≈ uniform; deterministic round-robin here), and each
    pod's ``requests_served`` counter feeds the autoscaler.
    """

    def __init__(self, cluster: "KubernetesCluster"):
        self.cluster = cluster
        #: svc -> set of node names with the NodePort programmed
        self._programmed: Dict[str, set] = {}
        #: svc -> current ready endpoints (pods), kept in sync
        self._endpoints: Dict[str, List[Pod]] = {}
        self._rr: Dict[str, int] = {}
        #: pod name -> its InstanceHandler (one CPU queue per pod)
        self._pod_handlers: Dict[str, object] = {}
        cluster.api.watch("Service", self._on_event)
        cluster.api.watch("Pod", self._on_pod_event)

    def _on_event(self, event: str, svc: K8sObject) -> None:
        if not isinstance(svc, Service):
            return
        if event == DELETED:
            self._unprogram(svc)
            return
        self.cluster.sim.schedule(self.cluster.timing.proxy_program_s, self._sync, svc.name)

    def _on_pod_event(self, event: str, pod: K8sObject) -> None:
        # Any pod transition may change some service's endpoints.
        for svc in self.cluster.api.list("Service"):
            self.cluster.sim.schedule(self.cluster.timing.proxy_program_s,
                                      self._sync, svc.name)

    def _ready_pods(self, svc: Service) -> List[Pod]:
        pods = [pod for pod in self.cluster.api.list("Pod", selector=svc.selector)
                if pod.ready and not pod.deletion_requested]
        pods.sort(key=lambda p: p.name)
        return pods

    @staticmethod
    def _serving_behavior(pod: Pod):
        for container in pod.containers:
            if container.behavior is not None and container.behavior.port is not None:
                return container.behavior
        return None

    def _make_balancing_listener(self, svc_name: str):
        """Connection-level balancing: each accepted connection is pinned to
        one ready pod (kube-proxy DNATs per connection)."""

        def on_connection(conn):
            pods = self._endpoints.get(svc_name) or []
            if not pods:
                conn.abort()
                return
            index = self._rr.get(svc_name, 0)
            self._rr[svc_name] = index + 1
            pod = pods[index % len(pods)]
            handler = self._pod_handlers.get(pod.name)
            if handler is None:
                behavior = self._serving_behavior(pod)
                if behavior is None:
                    conn.abort()
                    return
                handler = behavior.make_handler(self.cluster.sim)
                self._pod_handlers[pod.name] = handler

            def on_msg(c, msg, pod=pod, handler=handler):
                pod.requests_served += 1
                handler.handle(c, msg)

            conn.on_message = on_msg

        return on_connection

    def _sync(self, svc_name: str) -> None:
        svc = self.cluster.api.get("Service", svc_name)
        if svc is None:
            return
        ready = self._ready_pods(svc)
        self._endpoints[svc_name] = ready
        if ready and svc.node_port is not None:
            programmed = self._programmed.setdefault(svc.name, set())
            if not programmed:
                # Program the NodePort on every cluster node (kube-proxy
                # runs everywhere); a single-node cluster programs one.
                listener = self._make_balancing_listener(svc.name)
                for node_name, kubelet in self.cluster.kubelets.items():
                    node = kubelet.runtime.node
                    if not node.listening_on(svc.node_port):
                        node.listen(svc.node_port, listener)
                        programmed.add(node_name)
                svc.endpoints_ready = True
                self.cluster.sim.trace.emit(
                    self.cluster.sim.now, "k8s", "nodeport-open",
                    {"service": svc.name, "port": svc.node_port,
                     "endpoints": len(ready)})
        elif not ready and self._programmed.get(svc.name):
            self._unprogram(svc)

    def _unprogram(self, svc: Service) -> None:
        programmed = self._programmed.pop(svc.name, None)
        self._endpoints.pop(svc.name, None)
        if not programmed:
            return
        for node_name in programmed:
            kubelet = self.cluster.kubelets.get(node_name)
            if kubelet is not None and svc.node_port is not None:
                node = kubelet.runtime.node
                if node.listening_on(svc.node_port):
                    node.unlisten(svc.node_port)
        svc.endpoints_ready = False


class HorizontalPodAutoscaler:
    """Request-rate-driven autoscaling (the Discussion's K8s benefit:
    "automated management and scaling of container instances").

    Every ``sync_period_s`` the HPA samples the per-pod served-request rate
    of one deployment's pods and reconciles replicas toward
    ``ceil(total_rate / target_rps_per_pod)``, clamped to
    ``[min_replicas, max_replicas]``. Scale-down is damped by requiring the
    low rate to persist for ``scale_down_stabilization_s`` (as in real HPA).
    """

    def __init__(self, cluster: "KubernetesCluster", deployment_name: str,
                 target_rps_per_pod: float,
                 min_replicas: int = 1, max_replicas: int = 8,
                 sync_period_s: float = 5.0,
                 scale_down_stabilization_s: float = 30.0):
        if target_rps_per_pod <= 0:
            raise ValueError("target rate must be positive")
        if not 0 < min_replicas <= max_replicas:
            raise ValueError("bad replica bounds")
        self.cluster = cluster
        self.deployment_name = deployment_name
        self.target_rps_per_pod = target_rps_per_pod
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.sync_period_s = sync_period_s
        self.scale_down_stabilization_s = scale_down_stabilization_s
        self._last_counts: Dict[str, int] = {}
        self._low_since: Optional[float] = None
        self.scale_events: List[Tuple[float, int, int]] = []  # (t, from, to)
        self.enabled = True
        cluster.sim.schedule(sync_period_s, self._tick)

    # ------------------------------------------------------------- sampling

    def _pods(self) -> List[Pod]:
        rs_name = f"{self.deployment_name}-rs"
        return [pod for pod in self.cluster.api.list("Pod")
                if pod.owner == rs_name and not pod.deletion_requested]

    def _observed_rate(self) -> float:
        """Requests/second across the deployment's pods since last tick."""
        total_delta = 0
        current: Dict[str, int] = {}
        for pod in self._pods():
            current[pod.name] = pod.requests_served
            total_delta += pod.requests_served - self._last_counts.get(pod.name, 0)
        self._last_counts = current
        return total_delta / self.sync_period_s

    # ------------------------------------------------------------ reconcile

    def _tick(self) -> None:
        if not self.enabled:
            return
        deployment = self.cluster.api.get("Deployment", self.deployment_name)
        if deployment is not None:
            rate = self._observed_rate()
            desired = self._desired_replicas(deployment.spec_replicas, rate)
            if desired != deployment.spec_replicas:
                self.scale_events.append(
                    (self.cluster.sim.now, deployment.spec_replicas, desired))
                self.cluster.sim.trace.emit(
                    self.cluster.sim.now, "k8s", "hpa-scale",
                    {"deployment": self.deployment_name,
                     "from": deployment.spec_replicas, "to": desired,
                     "rate": round(rate, 2)})
                self.cluster.scale(self.deployment_name, desired)
        self.cluster.sim.schedule(self.sync_period_s, self._tick)

    def _desired_replicas(self, current: int, rate: float) -> int:
        import math

        raw = max(self.min_replicas,
                  min(self.max_replicas,
                      math.ceil(rate / self.target_rps_per_pod)))
        if raw >= current:
            self._low_since = None
            return raw
        # Scale-down: only after the low rate persisted (stabilization).
        now = self.cluster.sim.now
        if self._low_since is None:
            self._low_since = now
            return current
        if now - self._low_since >= self.scale_down_stabilization_s:
            self._low_since = None
            return raw
        return current

    def stop(self) -> None:
        self.enabled = False


# --------------------------------------------------------------------------
# Cluster façade
# --------------------------------------------------------------------------


class KubernetesCluster:
    """A whole (single- or multi-node) Kubernetes cluster."""

    def __init__(self, sim: "Simulator", timing: Optional[KubernetesTiming] = None):
        self.sim = sim
        self.timing = timing if timing is not None else DEFAULT_KUBERNETES
        self.api = APIServer(sim, self.timing)
        self.kubelets: Dict[str, Kubelet] = {}
        self.deployment_controller = DeploymentController(self)
        self.replicaset_controller = ReplicaSetController(self)
        self.schedulers: Dict[str, KubeScheduler] = {}
        self.register_scheduler(DEFAULT_SCHEDULER)
        self.proxy = EndpointsProxy(self)
        self._node_port_counter = itertools.count(NODE_PORT_BASE)

    # ---------------------------------------------------------------- nodes

    def add_node(self, runtime: Containerd) -> Kubelet:
        name = runtime.node.name
        if name in self.kubelets:
            raise ValueError(f"node {name!r} already joined")
        kubelet = Kubelet(self, name, runtime)
        self.kubelets[name] = kubelet
        return kubelet

    def fail_node(self, name: str) -> int:
        """Node failure: the kubelet vanishes, its pods are lost.

        The node controller (modelled synchronously here; real K8s notices
        after the node-lease timeout) deletes the lost pods, which makes the
        ReplicaSet controller recreate them on the surviving nodes. Returns
        the number of pods lost.
        """
        kubelet = self.kubelets.pop(name, None)
        if kubelet is None:
            raise ValueError(f"unknown node {name!r}")
        lost = 0
        for pod in list(self.api.list("Pod")):
            if pod.node_name != name:
                continue
            lost += 1
            pod.deletion_requested = True
            # The node is gone: containers die with it (no graceful stop).
            for container in pod.containers:
                if container.state is ContainerState.RUNNING:
                    kubelet.runtime._teardown(container)
                    container.state = ContainerState.STOPPED
            self.api.delete("Pod", pod.name)
        self.sim.trace.emit(self.sim.now, "k8s", "node-failed",
                            {"node": name, "pods_lost": lost})
        return lost

    def register_scheduler(self, name: str,
                           select_node: Optional[Callable] = None,
                           latency_s: Optional[float] = None) -> KubeScheduler:
        """Register a scheduler (the paper's Local Scheduler hook)."""
        scheduler = KubeScheduler(self, name, select_node, latency_s)
        self.schedulers[name] = scheduler
        return scheduler

    def _behavior_for_image(self, image_ref: str) -> Optional[ServiceBehavior]:
        from repro.edge.services import EDGE_SERVICE_CATALOG
        for kubelet in self.kubelets.values():
            image = kubelet.runtime.image(image_ref)
            if image is not None and image.app is not None:
                for entry in EDGE_SERVICE_CATALOG.values():
                    for img, beh in zip(entry.images, entry.behaviors, strict=True):
                        if img.app == image.app:
                            return beh
        return None

    def _teardown_pod(self, pod: Pod) -> None:
        for container in pod.containers:
            if container.state is ContainerState.RUNNING:
                kubelet = self.kubelets.get(pod.node_name or "")
                if kubelet is not None:
                    kubelet.runtime.stop(container)

    # ---------------------------------------------------------- conveniences

    def alloc_node_port(self) -> int:
        return next(self._node_port_counter)

    def create_deployment(self, deployment: Deployment) -> "Process":
        return self.api.create(deployment)

    def create_service(self, service: Service) -> "Process":
        if service.node_port is None:
            service.node_port = self.alloc_node_port()
        return self.api.create(service)

    def scale(self, deployment_name: str, replicas: int) -> "Process":
        def mutate(obj):
            obj.spec_replicas = replicas

        return self.api.patch("Deployment", deployment_name, mutate)

    def delete_deployment(self, name: str) -> "Process":
        return self.api.delete("Deployment", name)

    def ready_pods(self, selector: Dict[str, str]) -> List[Pod]:
        return [pod for pod in self.api.list("Pod", selector=selector)
                if pod.ready and not pod.deletion_requested]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<KubernetesCluster nodes={len(self.kubelets)} "
                f"objects={sum(len(v) for v in self.api._store.values())}>")
