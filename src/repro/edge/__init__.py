"""Edge-cluster substrate: container runtime, Docker, Kubernetes, registries.

Everything the on-demand deployment engine talks to lives here:

* :mod:`repro.edge.images` — layered container images (content-addressed);
* :mod:`repro.edge.registry` — Docker-Hub / GCR / private-LAN registries
  with a per-layer pull-time model;
* :mod:`repro.edge.containerd` — the shared container runtime (both Docker
  and Kubernetes on the paper's EGS sit on one containerd), with the
  namespace-setup-dominated cold-start model of Mohan et al. [23];
* :mod:`repro.edge.docker` — a docker-SDK-shaped engine;
* :mod:`repro.edge.kubernetes` — API server, Deployment/ReplicaSet/Pod/
  Service objects and the controller/scheduler/kubelet reconcile pipeline;
* :mod:`repro.edge.services` — the paper's four edge services (Table I);
* :mod:`repro.edge.cluster` — the uniform ``EdgeCluster`` façade the SDN
  controller deploys through.
"""

from repro.edge.cluster import ClusterUnavailable, DockerCluster, EdgeCluster, Endpoint, KubernetesEdgeCluster
from repro.edge.containerd import Container, Containerd, ContainerState
from repro.edge.docker import DockerContainerHandle, DockerEngine
from repro.edge.images import ContainerImage, ImageLayer, ImageRef, parse_image_ref
from repro.edge.kubernetes import HorizontalPodAutoscaler, KubernetesCluster
from repro.edge.registry import Registry, RegistryHub, RegistryTiming
from repro.edge.services import (
    EDGE_SERVICE_CATALOG,
    ServiceBehavior,
    catalog_behavior,
    catalog_image,
    service_table,
)
from repro.edge.timing import ContainerdTiming, DockerTiming, KubernetesTiming

__all__ = [
    "ImageLayer",
    "ContainerImage",
    "ImageRef",
    "parse_image_ref",
    "Registry",
    "RegistryTiming",
    "RegistryHub",
    "ContainerdTiming",
    "KubernetesTiming",
    "DockerTiming",
    "ServiceBehavior",
    "EDGE_SERVICE_CATALOG",
    "catalog_image",
    "catalog_behavior",
    "service_table",
    "Containerd",
    "Container",
    "ContainerState",
    "DockerEngine",
    "DockerContainerHandle",
    "KubernetesCluster",
    "HorizontalPodAutoscaler",
    "ClusterUnavailable",
    "EdgeCluster",
    "DockerCluster",
    "KubernetesEdgeCluster",
    "Endpoint",
]
