"""Serverless (WebAssembly) runtime — the paper's future work (§VIII).

"In future work, we plan to extend our solution for transparent access by
enabling the side-by-side operation of containers and serverless
applications and evaluate how well the latter would perform."

This module provides that substrate, modelled after the WASM edge runtimes
the paper cites (Gackstatter et al. [7], Faasm [25], aWsm [24]):

* functions ship as small WASM modules (KiBs–MiBs, one artifact, no layers);
* a *cold start* is module fetch (if uncached) + AoT/JIT instantiation —
  milliseconds, not the hundreds of milliseconds of a container netns setup;
* instances are cheap enough to start per-demand and tear down aggressively.

:class:`ServerlessCluster` plugs the runtime into the same
:class:`~repro.edge.cluster.EdgeCluster` façade the SDN controller already
drives, so containers and functions are *transparently interchangeable*
behind a registered service address.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import TYPE_CHECKING, Dict, Optional

from repro.edge.cluster import DeploymentSpec, EdgeCluster, Endpoint
from repro.edge.registry import Registry
from repro.edge.services import ServiceBehavior

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import Host
    from repro.simcore import Process, Simulator

#: Host-port pool for serverless function endpoints.
FUNCTION_PORT_BASE = 35000


@dataclass(frozen=True)
class FunctionSpec:
    """One deployable WASM function."""

    name: str
    module_size_bytes: int
    behavior: ServiceBehavior
    #: AoT-compiled module instantiation time (cold start body). WASM edge
    #: runtimes report single-digit milliseconds [7].
    instantiate_s: float = 0.004
    #: per-invocation overhead of the runtime's sandbox trampoline
    invoke_overhead_s: float = 0.00005


@dataclass
class WasmTiming:
    """Runtime-level costs."""

    #: runtime API call (local unix socket)
    api_call_s: float = 0.002
    #: module validation + linking per MiB on fetch
    compile_s_per_mib: float = 0.020


class FunctionInstance:
    """A live function instance bound to a host port."""

    _ids = itertools.count(1)

    def __init__(self, spec: FunctionSpec, host_port: int):
        self.id = f"fn-{next(self._ids):06d}"
        self.spec = spec
        self.host_port = host_port
        self.started_at: Optional[float] = None
        self.ready_at: Optional[float] = None
        self.invocations = 0


class WasmRuntime:
    """A per-node serverless runtime with a module cache."""

    def __init__(self, sim: "Simulator", node: "Host",
                 module_registry: Registry,
                 timing: Optional[WasmTiming] = None):
        self.sim = sim
        self.node = node
        self.registry = module_registry
        self.timing = timing if timing is not None else WasmTiming()
        #: cached (fetched + compiled) modules by function name
        self._modules: Dict[str, FunctionSpec] = {}
        self._instances: Dict[str, FunctionInstance] = {}
        self._port_counter = itertools.count(FUNCTION_PORT_BASE)
        #: diagnostics
        self.cold_starts = 0
        self.fetches = 0

    # ----------------------------------------------------------------- fetch

    def has_module(self, name: str) -> bool:
        return name in self._modules

    def fetch_module(self, spec: FunctionSpec) -> "Process":
        """Download (if uncached) + compile the module — the Pull phase."""

        def proc():
            if spec.name in self._modules:
                return spec
            yield self.sim.timeout(self.registry.manifest_time())
            yield self.sim.timeout(self.registry.layer_time(spec.module_size_bytes))
            yield self.sim.timeout(
                self.timing.compile_s_per_mib * spec.module_size_bytes / (1024 * 1024))
            self._modules[spec.name] = spec
            self.fetches += 1
            self.registry.account_pull(spec.module_size_bytes)
            self.sim.trace.emit(self.sim.now, "wasm", "fetched",
                                {"node": self.node.name, "fn": spec.name})
            return spec

        return self.sim.spawn(proc(), name=f"wasm-fetch:{spec.name}")

    def drop_module(self, name: str) -> bool:
        return self._modules.pop(name, None) is not None

    # ------------------------------------------------------------- instances

    def instantiate(self, name: str) -> "Process":
        """Cold-start an instance — the Scale-Up phase (milliseconds)."""

        def proc():
            spec = self._modules.get(name)
            if spec is None:
                raise KeyError(f"{self.node.name}: module {name!r} not fetched")
            if name in self._instances:
                return self._instances[name]
            yield self.sim.timeout(self.timing.api_call_s)
            instance = FunctionInstance(spec, next(self._port_counter))
            instance.started_at = self.sim.now
            yield self.sim.timeout(spec.instantiate_s)
            self.node.listen(instance.host_port,
                             self._make_listener(instance))
            instance.ready_at = self.sim.now
            self._instances[name] = instance
            self.cold_starts += 1
            self.sim.trace.emit(self.sim.now, "wasm", "instantiated",
                                {"node": self.node.name, "fn": name,
                                 "port": instance.host_port})
            return instance

        return self.sim.spawn(proc(), name=f"wasm-instantiate:{name}")

    def _make_listener(self, instance: FunctionInstance):
        behavior = instance.spec.behavior
        overhead = instance.spec.invoke_overhead_s
        # One sandbox = one worker: concurrent invocations serialize on the
        # instance's CPU (same busy-until idiom as container instances).
        state = {"busy_until": 0.0}

        def on_connection(conn):
            def on_msg(c, msg):
                instance.invocations += 1
                start = max(self.sim.now, state["busy_until"])
                done = start + overhead + behavior.request_cpu_s
                state["busy_until"] = done

                def respond():
                    yield self.sim.timeout(done - self.sim.now)
                    from repro.netsim.packet import HTTPResponse
                    response = HTTPResponse(status=200,
                                            body_bytes=behavior.response_bytes,
                                            body={"served_by": instance.spec.name,
                                                  "runtime": "wasm"})
                    c.send(response, response.wire_bytes)

                self.sim.spawn(respond(), name=f"wasm-invoke:{instance.spec.name}")

            conn.on_message = on_msg

        return on_connection

    def instance(self, name: str) -> Optional[FunctionInstance]:
        return self._instances.get(name)

    def terminate(self, name: str) -> "Process":
        """Tear an instance down — scale-down is practically free."""

        def proc():
            yield self.sim.timeout(self.timing.api_call_s)
            instance = self._instances.pop(name, None)
            if instance is not None and self.node.listening_on(instance.host_port):
                self.node.unlisten(instance.host_port)
            return instance

        return self.sim.spawn(proc(), name=f"wasm-terminate:{name}")


class ServerlessCluster(EdgeCluster):
    """An :class:`EdgeCluster` backed by the WASM runtime.

    Phase mapping (fig. 4): Pull = fetch+compile module; Create = register
    the function (bookkeeping only); Scale Up = instantiate; Scale Down =
    terminate; Remove = unregister; Delete = drop the cached module.
    """

    cluster_type = "serverless"

    def __init__(self, sim: "Simulator", name: str, runtime: WasmRuntime,
                 functions: Dict[str, FunctionSpec], zone: str = "default"):
        # Serverless clusters have no containerd; EdgeCluster's image-based
        # helpers are overridden below.
        super().__init__(sim, name, runtime.node, runtime=None, zone=zone)  # type: ignore[arg-type]
        self.wasm = runtime
        #: service name -> function spec (the serverless "catalog")
        self.functions = dict(functions)
        self._created: Dict[str, bool] = {}
        self.inventory_query_s = 0.002  # a local runtime query is cheap

    def register_function(self, service_name: str, spec: FunctionSpec) -> None:
        self.functions[service_name] = spec

    def _function(self, spec: DeploymentSpec) -> FunctionSpec:
        function = self.functions.get(spec.name)
        if function is None:
            raise KeyError(f"{self.name}: no function registered for {spec.name!r}")
        return function

    # ---- façade implementation ------------------------------------------

    def has_images(self, spec: DeploymentSpec) -> bool:
        return self.wasm.has_module(self._function(spec).name)

    def pull(self, spec: DeploymentSpec) -> "Process":
        self._note_op("pull")
        return self.wasm.fetch_module(self._function(spec))

    def delete_images(self, spec: DeploymentSpec) -> None:
        self.wasm.drop_module(self._function(spec).name)

    def is_created(self, spec: DeploymentSpec) -> bool:
        return self._created.get(spec.name, False)

    def create(self, spec: DeploymentSpec) -> "Process":
        self._note_op("create")

        def proc():
            yield self.sim.timeout(self.wasm.timing.api_call_s)
            self._created[spec.name] = True

        return self.sim.spawn(proc(), name=f"{self.name}:create:{spec.name}")

    def scale_up(self, spec: DeploymentSpec) -> "Process":
        self._note_op("scale_up")
        return self.wasm.instantiate(self._function(spec).name)

    def scale_down(self, spec: DeploymentSpec) -> "Process":
        self._note_op("scale_down")
        return self.wasm.terminate(self._function(spec).name)

    def remove(self, spec: DeploymentSpec) -> "Process":
        self._note_op("remove")

        def proc():
            yield self.wasm.terminate(self._function(spec).name)
            self._created.pop(spec.name, None)

        return self.sim.spawn(proc(), name=f"{self.name}:remove:{spec.name}")

    def endpoint(self, spec: DeploymentSpec) -> Optional[Endpoint]:
        instance = self.wasm.instance(self._function(spec).name)
        if instance is None:
            return None
        return Endpoint(ip=self.node.ip, port=instance.host_port)

    def estimate_cold_start_s(self, spec: DeploymentSpec) -> float:
        function = self._function(spec)
        total = self.wasm.timing.api_call_s + function.instantiate_s
        if not self.wasm.has_module(function.name):
            registry = self.wasm.registry
            total += (registry.manifest_time()
                      + registry.layer_time(function.module_size_bytes)
                      + self.wasm.timing.compile_s_per_mib
                      * function.module_size_bytes / (1024 * 1024))
        return total


def wasm_function_for_catalog(key: str) -> FunctionSpec:
    """A WASM port of one of the Table-I services: same request behaviour,
    module-sized artifact instead of a container image."""
    from repro.edge.services import EDGE_SERVICE_CATALOG

    entry = EDGE_SERVICE_CATALOG[key]
    behavior = entry.serving_behavior
    # WASM modules are far smaller than container images: the web servers
    # compile to ~1 MiB; the ResNet model still dominates its artifact.
    module_sizes = {
        "asm": 64 * 1024,
        "nginx": 1 * 1024 * 1024,
        "resnet": 110 * 1024 * 1024,  # weights dominate
        "nginx+py": 2 * 1024 * 1024,
    }
    instantiate = {
        "asm": 0.002,
        "nginx": 0.004,
        "resnet": 1.9,   # weight loading does not go away
        "nginx+py": 0.006,
    }
    return FunctionSpec(
        name=f"wasm-{key}",
        module_size_bytes=module_sizes[key],
        behavior=behavior,
        instantiate_s=instantiate[key],
    )
