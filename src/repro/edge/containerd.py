"""The shared container runtime (containerd) on an edge node.

Both the Docker engine and the Kubernetes kubelet drive this runtime — on
the paper's Edge Gateway Server they literally share one containerd, which
is why the *Scale Up* difference between the two clusters (fig. 11) is pure
orchestrator overhead.

Operations are simulation processes charging the costs in
:class:`~repro.edge.timing.ContainerdTiming`. Cold-start is dominated by
network-namespace setup (per Mohan et al. [23]), which serializes in the
kernel: concurrent starts queue, visible in the bursty fig. 10 trace runs.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Dict, Optional

from repro.edge.images import MIB, ContainerImage, ImageRef, parse_image_ref
from repro.edge.registry import RegistryHub, RegistryUnavailable
from repro.edge.services import ServiceBehavior
from repro.edge.timing import DEFAULT_CONTAINERD, ContainerdTiming

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import Host
    from repro.simcore import Process, Simulator


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    REMOVED = "removed"


class ContainerError(RuntimeError):
    """Invalid lifecycle transition or missing image."""


_container_ids = itertools.count(1)


class Container:
    """One container instance on a node."""

    def __init__(self, name: str, image: ContainerImage,
                 behavior: Optional[ServiceBehavior], host_port: Optional[int],
                 labels: Optional[dict] = None):
        self.id = f"ctr-{next(_container_ids):06d}"
        self.name = name
        self.image = image
        self.behavior = behavior
        #: host port the container port is published on (None: not published)
        self.host_port = host_port
        self.labels = dict(labels or {})
        self.state = ContainerState.CREATED
        self.created_at: Optional[float] = None
        self.started_at: Optional[float] = None
        #: when the app inside began listening (readiness as a probe sees it)
        self.ready_at: Optional[float] = None
        self._app_process: Optional["Process"] = None

    @property
    def listening(self) -> bool:
        return self.ready_at is not None and self.state is ContainerState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.name} [{self.image.ref.name}] {self.state.value}>"


class Containerd:
    """Runtime instance bound to one node (:class:`~repro.netsim.host.Host`)."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Host",
        hub: RegistryHub,
        timing: Optional[ContainerdTiming] = None,
        disk_capacity_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.node = node
        self.hub = hub
        self.timing = timing if timing is not None else DEFAULT_CONTAINERD
        #: image-store disk budget (None = unbounded). When a pull would
        #: exceed it, least-recently-used unreferenced images are evicted —
        #: the paper's "cached items may also be Deleted if disk space is
        #: scarce" (§IV-C).
        self.disk_capacity_bytes = disk_capacity_bytes
        #: content-addressed layer store: digest -> size
        self._layers: Dict[str, int] = {}
        #: image manifests present locally: "repo:tag" -> image
        self._manifests: Dict[str, ContainerImage] = {}
        #: manifest name -> last time it was pulled or used by a container
        self._manifest_last_used: Dict[str, float] = {}
        self._containers: Dict[str, Container] = {}
        self._pulls_inflight: Dict[str, "Process"] = {}
        self._netns_busy_until = 0.0
        #: diagnostics
        self.pull_count = 0
        self.bytes_pulled = 0
        self.containers_started = 0
        self.images_evicted = 0
        self.pull_failures = 0
        self.containers_crashed = 0

    # ---------------------------------------------------------------- images

    def has_image(self, ref) -> bool:
        ref = self._ref(ref)
        return ref.name in self._manifests

    def image(self, ref) -> Optional[ContainerImage]:
        return self._manifests.get(self._ref(ref).name)

    def cached_layer_bytes(self) -> int:
        return sum(self._layers.values())

    @staticmethod
    def _ref(ref) -> ImageRef:
        return ref if isinstance(ref, ImageRef) else parse_image_ref(str(ref))

    def pull(self, ref) -> "Process":
        """Pull an image (process). Returns immediately-complete work if the
        manifest is local; coalesces with an in-flight pull of the same ref;
        skips layers already in the store (dedup across images)."""
        ref = self._ref(ref)
        inflight = self._pulls_inflight.get(ref.name)
        if inflight is not None and inflight.alive:
            return inflight
        process = self.sim.spawn(self._pull_proc(ref), name=f"pull:{ref.name}")
        self._pulls_inflight[ref.name] = process
        return process

    def _pull_proc(self, ref: ImageRef):
        try:
            if ref.name in self._manifests:
                self._manifest_last_used[ref.name] = self.sim.now
                return self._manifests[ref.name]
            registry = self.hub.resolve(ref)
            image = registry.manifest(ref)  # raises ImageNotFound
            self._make_room_for(image)
            yield self.sim.timeout(registry.manifest_time())
            # Fault injection: a stalled transfer burns time first, then a
            # pull failure aborts the attempt (both retryable upstream).
            stall = self.sim.faults.stall("registry.stall")
            if stall > 0.0:
                self.sim.trace.emit(self.sim.now, "containerd", "pull-stall",
                                    {"node": self.node.name, "image": ref.name,
                                     "stall_s": stall})
                yield self.sim.timeout(stall)
            if self.sim.faults.roll("registry.pull"):
                self.pull_failures += 1
                self.sim.trace.emit(self.sim.now, "containerd", "pull-failed",
                                    {"node": self.node.name, "image": ref.name})
                raise RegistryUnavailable(
                    f"{registry.name}: pull of {ref.name!r} aborted (injected)")
            pulled_bytes = 0
            for layer in image.layers:
                if layer.digest in self._layers:
                    continue  # already on disk (shared base layer)
                yield self.sim.timeout(registry.layer_time(layer.size_bytes))
                yield self.sim.timeout(self.timing.unpack_s_per_mib * layer.size_bytes / MIB)
                self._layers[layer.digest] = layer.size_bytes
                pulled_bytes += layer.size_bytes
            self._manifests[ref.name] = image
            self._manifest_last_used[ref.name] = self.sim.now
            registry.account_pull(pulled_bytes)
            self.pull_count += 1
            self.bytes_pulled += pulled_bytes
            self.sim.trace.emit(self.sim.now, "containerd", "pulled",
                                {"node": self.node.name, "image": ref.name,
                                 "bytes": pulled_bytes})
            return image
        finally:
            self._pulls_inflight.pop(ref.name, None)

    def delete_image(self, ref) -> bool:
        """Remove a manifest; layers still referenced by other manifests stay
        (the paper's §IV-C note: re-pulling may skip shared layers)."""
        ref = self._ref(ref)
        image = self._manifests.pop(ref.name, None)
        self._manifest_last_used.pop(ref.name, None)
        if image is None:
            return False
        still_referenced = {layer.digest
                            for other in self._manifests.values()
                            for layer in other.layers}
        for layer in image.layers:
            if layer.digest not in still_referenced:
                self._layers.pop(layer.digest, None)
        return True

    # ----------------------------------------------------------- disk budget

    def _images_in_use(self) -> set:
        """Manifest names referenced by existing (non-removed) containers."""
        return {container.image.ref.name for container in self._containers.values()
                if container.state is not ContainerState.REMOVED}

    def _make_room_for(self, image: ContainerImage) -> None:
        """Evict least-recently-used unreferenced images until ``image``
        fits the disk budget. No-op when unbounded."""
        if self.disk_capacity_bytes is None:
            return
        incoming = sum(layer.size_bytes for layer in image.layers
                       if layer.digest not in self._layers)
        if incoming > self.disk_capacity_bytes:
            raise ContainerError(
                f"{self.node.name}: image {image.ref.name!r} ({incoming} B) "
                f"exceeds the disk budget ({self.disk_capacity_bytes} B)")
        in_use = self._images_in_use()
        candidates = sorted(
            (name for name in self._manifests if name not in in_use),
            key=lambda name: self._manifest_last_used.get(name, 0.0))
        index = 0
        while (self.cached_layer_bytes() + incoming > self.disk_capacity_bytes
               and index < len(candidates)):
            victim = candidates[index]
            index += 1
            if self.delete_image(victim):
                self.images_evicted += 1
                self.sim.trace.emit(self.sim.now, "containerd", "evicted",
                                    {"node": self.node.name, "image": victim})
            # Layer sharing may change what the incoming pull still needs.
            incoming = sum(layer.size_bytes for layer in image.layers
                           if layer.digest not in self._layers)
        if self.cached_layer_bytes() + incoming > self.disk_capacity_bytes:
            raise ContainerError(
                f"{self.node.name}: cannot free enough disk for "
                f"{image.ref.name!r} (in-use images pin the store)")

    # ------------------------------------------------------------ containers

    def create(self, name: str, image_ref, behavior: Optional[ServiceBehavior],
               host_port: Optional[int] = None, labels: Optional[dict] = None) -> "Process":
        """Create (but do not start) a container from a locally-present image."""
        ref = self._ref(image_ref)

        def proc():
            image = self._manifests.get(ref.name)
            if image is None:
                raise ContainerError(f"{self.node.name}: image {ref.name!r} not pulled")
            if name in self._containers:
                raise ContainerError(f"{self.node.name}: container {name!r} exists")
            yield self.sim.timeout(self.timing.api_call_s + self.timing.create_s)
            container = Container(name, image, behavior, host_port, labels)
            container.created_at = self.sim.now
            self._manifest_last_used[ref.name] = self.sim.now
            self._containers[name] = container
            self.sim.trace.emit(self.sim.now, "containerd", "created",
                                {"node": self.node.name, "container": name})
            return container

        return self.sim.spawn(proc(), name=f"create:{name}")

    def start(self, container: Container) -> "Process":
        """Start a created container: netns setup (serialized per node) +
        runtime exec, then the app's own startup until it listens."""

        def proc():
            if container.state not in (ContainerState.CREATED, ContainerState.STOPPED):
                raise ContainerError(
                    f"cannot start container in state {container.state.value}")
            yield self.sim.timeout(self.timing.api_call_s)
            # Network-namespace creation: serialized in the kernel.
            netns = self.timing.netns_setup_s
            if self.timing.netns_serialized:
                start_at = max(self.sim.now, self._netns_busy_until)
                self._netns_busy_until = start_at + netns
                yield self.sim.timeout(start_at + netns - self.sim.now)
            else:
                yield self.sim.timeout(netns)
            yield self.sim.timeout(self.timing.start_exec_s)
            if self.sim.faults.roll("container.crash_start"):
                self.containers_crashed += 1
                self.sim.trace.emit(self.sim.now, "containerd", "crash-start",
                                    {"node": self.node.name,
                                     "container": container.name})
                raise ContainerError(
                    f"{container.name}: crashed during start (injected)")
            container.state = ContainerState.RUNNING
            container.started_at = self.sim.now
            self.containers_started += 1
            self.sim.trace.emit(self.sim.now, "containerd", "started",
                                {"node": self.node.name, "container": container.name})
            container._app_process = self.sim.spawn(
                self._app_proc(container), name=f"app:{container.name}")
            if self.sim.faults.roll("container.crash_run"):
                # Crash-while-running: die an exponential holding time after
                # start (possibly before ever becoming ready).
                self.sim.schedule(self.sim.faults.delay_after("container.crash_run"),
                                  self.crash, container)
            return container

        return self.sim.spawn(proc(), name=f"start:{container.name}")

    def _app_proc(self, container: Container):
        behavior = container.behavior
        if behavior is None:
            return
        yield self.sim.timeout(behavior.startup_s)
        if container.state is not ContainerState.RUNNING:
            return  # stopped during startup
        if behavior.port is not None and container.host_port is not None:
            if not self.node.listening_on(container.host_port):
                self.node.listen(container.host_port, behavior.make_listener(self.sim))
            container.ready_at = self.sim.now
            self.sim.trace.emit(self.sim.now, "containerd", "listening",
                                {"node": self.node.name, "container": container.name,
                                 "port": container.host_port})
        else:
            container.ready_at = self.sim.now  # non-serving container "up"

    def crash(self, container: Container) -> bool:
        """Hard-kill a running container (fault injection / OOM model): no
        graceful stop window, the port closes immediately. Returns whether
        the container was actually running."""
        if container.state is not ContainerState.RUNNING:
            return False
        self._teardown(container)
        container.state = ContainerState.STOPPED
        self.containers_crashed += 1
        self.sim.trace.emit(self.sim.now, "containerd", "crashed",
                            {"node": self.node.name, "container": container.name})
        return True

    def stop(self, container: Container) -> "Process":
        def proc():
            if container.state is not ContainerState.RUNNING:
                raise ContainerError(
                    f"cannot stop container in state {container.state.value}")
            yield self.sim.timeout(self.timing.api_call_s + self.timing.stop_s)
            self._teardown(container)
            container.state = ContainerState.STOPPED
            return container

        return self.sim.spawn(proc(), name=f"stop:{container.name}")

    def remove(self, container: Container) -> "Process":
        def proc():
            if container.state is ContainerState.RUNNING:
                raise ContainerError("cannot remove a running container")
            yield self.sim.timeout(self.timing.api_call_s + self.timing.remove_s)
            self._teardown(container)
            container.state = ContainerState.REMOVED
            self._containers.pop(container.name, None)
            return container

        return self.sim.spawn(proc(), name=f"remove:{container.name}")

    def _teardown(self, container: Container) -> None:
        if container._app_process is not None and container._app_process.alive:
            container._app_process.kill("container stopped")
        if (container.ready_at is not None and container.host_port is not None
                and container.behavior is not None and container.behavior.port is not None):
            self.node.unlisten(container.host_port)
        container.ready_at = None

    # -------------------------------------------------------------- queries

    def container(self, name: str) -> Optional[Container]:
        return self._containers.get(name)

    def containers(self, label_selector: Optional[dict] = None) -> list:
        out = []
        for container in self._containers.values():
            if label_selector and any(container.labels.get(k) != v
                                      for k, v in label_selector.items()):
                continue
            out.append(container)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Containerd node={self.node.name} images={len(self._manifests)} "
                f"containers={len(self._containers)}>")
