"""Container images: content-addressed layers and image references.

Layers are identified by digest; two images sharing a base layer share the
digest, so the image store deduplicates storage and pulls — the effect the
paper notes ("popular base layers ... might also be included in other cached
images and thus already be on disk", §VI).
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
from typing import Optional, Tuple

KIB = 1024
MIB = 1024 * 1024


def layer_digest(seed: str) -> str:
    """Deterministic sha256-style digest for a synthetic layer."""
    return "sha256:" + hashlib.sha256(seed.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ImageLayer:
    """One image layer (identified by digest, sized in bytes)."""

    digest: str
    size_bytes: int

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError("negative layer size")


@dataclass(frozen=True)
class ImageRef:
    """Parsed image reference: ``[registry/]repository[:tag]``."""

    registry: str  # "" means the default registry (Docker Hub)
    repository: str
    tag: str = "latest"

    def __str__(self) -> str:
        base = f"{self.registry}/{self.repository}" if self.registry else self.repository
        return f"{base}:{self.tag}"

    @property
    def name(self) -> str:
        """Reference without the registry part (repository:tag)."""
        return f"{self.repository}:{self.tag}"


def parse_image_ref(ref: str) -> ImageRef:
    """Parse ``nginx:1.23.2`` / ``gcr.io/tensorflow-serving/resnet`` /
    ``myreg.local:5000/foo:bar`` into an :class:`ImageRef`.

    A leading component counts as a registry when it contains a dot or a
    colon (host[:port]) — the same heuristic real container tooling uses.
    """
    if not ref:
        raise ValueError("empty image reference")
    registry = ""
    rest = ref
    head, sep, tail = ref.partition("/")
    if sep and ("." in head or ":" in head or head == "localhost"):
        registry, rest = head, tail
    if not rest:
        raise ValueError(f"malformed image reference {ref!r}")
    # Split the tag off the last path component only.
    if ":" in rest.rsplit("/", 1)[-1]:
        repository, _, tag = rest.rpartition(":")
    else:
        repository, tag = rest, "latest"
    if not repository:
        raise ValueError(f"malformed image reference {ref!r}")
    return ImageRef(registry=registry, repository=repository, tag=tag)


@dataclass(frozen=True)
class ContainerImage:
    """An image manifest: an ordered tuple of layers.

    ``app`` optionally names the service behaviour baked into the image
    (resolved against :data:`repro.edge.services.EDGE_SERVICE_CATALOG`).
    """

    ref: ImageRef
    layers: Tuple[ImageLayer, ...]
    app: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        return sum(layer.size_bytes for layer in self.layers)

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    @property
    def size_mib(self) -> float:
        return self.size_bytes / MIB

    def __str__(self) -> str:
        return str(self.ref)


def make_image(
    ref: str,
    size_bytes: int,
    layer_count: int,
    app: Optional[str] = None,
    shared_base_of: Optional[ContainerImage] = None,
) -> ContainerImage:
    """Build a synthetic image of ``layer_count`` layers summing to
    ``size_bytes``.

    Layer sizes follow the common pattern of one large base layer plus
    smaller overlay layers. When ``shared_base_of`` is given, the first
    layer reuses that image's first layer (shared base image).
    """
    parsed = parse_image_ref(ref)
    if layer_count < 1:
        raise ValueError("images need at least one layer")
    layers: list[ImageLayer] = []
    remaining = size_bytes
    if shared_base_of is not None:
        base = shared_base_of.layers[0]
        layers.append(base)
        remaining -= base.size_bytes
        if remaining < 0:
            raise ValueError("shared base larger than requested image size")
        layer_count -= 1
    if layer_count > 0:
        # 60 % of the remaining bytes in the (next) base layer, the rest split
        # evenly — deterministic, roughly realistic.
        base_size = int(remaining * 0.6) if layer_count > 1 else remaining
        rest_each = (remaining - base_size) // max(1, layer_count - 1)
        for i in range(layer_count):
            if i == 0:
                size = base_size
            elif i == layer_count - 1:
                size = remaining - base_size - rest_each * (layer_count - 2)
            else:
                size = rest_each
            layers.append(ImageLayer(digest=layer_digest(f"{ref}#{i}"), size_bytes=size))
    image = ContainerImage(ref=parsed, layers=tuple(layers), app=app)
    if image.size_bytes != size_bytes:
        raise AssertionError("layer sizes do not sum to image size")
    return image
