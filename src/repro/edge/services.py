"""The paper's edge services (Table I) as behavioural models.

Each catalog entry couples a synthetic :class:`ContainerImage` (with the
paper's exact size and layer count) to a :class:`ServiceBehavior` describing
what the containerised process does: how long it takes to come up after the
container starts (model loading for ResNet, near-zero for the Assembler
server), how long a request takes, and how big requests/responses are.

============  =========================================  =============  ==========  ====
Service       Image(s)                                   Size / Layers  Containers  HTTP
============  =========================================  =============  ==========  ====
Asm           josefhammer/web-asm:amd64                  6.18 KiB / 1   1           GET
Nginx         nginx:1.23.2                               135 MiB / 6    1           GET
ResNet        gcr.io/tensorflow-serving/resnet           308 MiB / 9    1           POST
Nginx+Py      nginx:1.23.2 + josefhammer/env-writer-py   181 MiB / 7    2           GET
============  =========================================  =============  ==========  ====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.edge.images import KIB, MIB, ContainerImage, make_image
from repro.netsim.packet import HTTPRequest, HTTPResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Simulator


@dataclass(frozen=True)
class ServiceBehavior:
    """What the process inside a container does.

    ``startup_s`` is the time between the container's PID 1 exec and the
    process listening on its port (nginx parses config in tens of ms; the
    TensorFlow model server loads ResNet50 for seconds; asmttpd is
    effectively instant).
    """

    name: str
    #: container port the process listens on (None: no server, e.g. the
    #: env-writer sidecar that only writes files)
    port: Optional[int] = 80
    startup_s: float = 0.05
    #: CPU time per request
    request_cpu_s: float = 0.0002
    #: typical request/response body sizes
    request_bytes: int = 62
    response_bytes: int = 615
    http_method: str = "GET"

    def handle(self, sim: "Simulator", conn, message) -> None:
        """Stateless one-shot handling (no instance queueing): charge CPU
        time, then respond. Prefer :meth:`make_handler` for real instances."""
        InstanceHandler(self, sim).handle(conn, message)

    def make_handler(self, sim: "Simulator") -> "InstanceHandler":
        """A stateful per-instance handler with a single-threaded CPU queue
        (one worker process per instance: concurrent requests serialize,
        which is what makes horizontal scaling observable in latency)."""
        return InstanceHandler(self, sim)

    def make_listener(self, sim: "Simulator") -> Callable:
        """Connection-accept callback for :meth:`Host.listen` — one handler
        (one CPU queue) per listening instance."""
        handler = self.make_handler(sim)

        def on_connection(conn):
            conn.on_message = handler.handle

        return on_connection

    def make_request(self) -> Tuple[HTTPRequest, int]:
        """A representative client request (message, wire size)."""
        body = self.request_bytes if self.http_method == "POST" else 0
        request = HTTPRequest(method=self.http_method, path="/",
                              body_bytes=body, headers_bytes=120)
        return request, request.wire_bytes


class InstanceHandler:
    """Per-instance request handler with a serialized CPU budget.

    Models a single-worker service process: each request occupies the
    instance's CPU for ``request_cpu_s``; simultaneous requests queue FIFO
    (the same busy-until idiom links use for serialization). The number of
    requests served is tracked for autoscaler metrics.
    """

    __slots__ = ("behavior", "sim", "_busy_until", "requests_served")

    def __init__(self, behavior: ServiceBehavior, sim: "Simulator"):
        self.behavior = behavior
        self.sim = sim
        self._busy_until = 0.0
        self.requests_served = 0

    def handle(self, conn, message) -> None:
        behavior = self.behavior
        start = max(self.sim.now, self._busy_until)
        done = start + behavior.request_cpu_s
        self._busy_until = done
        self.requests_served += 1

        def respond():
            yield self.sim.timeout(done - self.sim.now)
            response = HTTPResponse(
                status=200,
                body_bytes=behavior.response_bytes,
                body={"served_by": behavior.name},
            )
            conn.send(response, response.wire_bytes)

        self.sim.spawn(respond(), name=f"{behavior.name}.respond")


@dataclass(frozen=True)
class CatalogEntry:
    """One Table-I row: images + per-container behaviours."""

    key: str
    description: str
    images: Tuple[ContainerImage, ...]
    behaviors: Tuple[ServiceBehavior, ...]  # parallel to images
    http_method: str

    @property
    def total_size_bytes(self) -> int:
        # Shared layers counted once, as the paper's size column does.
        seen = set()
        total = 0
        for image in self.images:
            for layer in image.layers:
                if layer.digest not in seen:
                    seen.add(layer.digest)
                    total += layer.size_bytes
        return total

    @property
    def total_layers(self) -> int:
        return len({layer.digest for image in self.images for layer in image.layers})

    @property
    def container_count(self) -> int:
        return len(self.images)

    @property
    def serving_behavior(self) -> ServiceBehavior:
        """The behaviour that owns the service port (first listening one)."""
        for behavior in self.behaviors:
            if behavior.port is not None:
                return behavior
        raise ValueError(f"{self.key}: no listening container")


def _build_catalog() -> Dict[str, CatalogEntry]:
    asm_image = make_image("josefhammer/web-asm:amd64",
                           size_bytes=int(6.18 * KIB), layer_count=1, app="asm")
    nginx_image = make_image("nginx:1.23.2",
                             size_bytes=135 * MIB, layer_count=6, app="nginx")
    resnet_image = make_image("gcr.io/tensorflow-serving/resnet:latest",
                              size_bytes=308 * MIB, layer_count=9, app="resnet")
    envwriter_image = make_image("josefhammer/env-writer-py:latest",
                                 size_bytes=46 * MIB, layer_count=1, app="env-writer-py")

    asm = ServiceBehavior(
        name="asm", port=80,
        startup_s=0.004,       # a 6 KiB static binary: effectively instant
        request_cpu_s=0.0001,
        request_bytes=62, response_bytes=52, http_method="GET",
    )
    nginx = ServiceBehavior(
        name="nginx", port=80,
        startup_s=0.055,       # master+worker spawn, config parse
        request_cpu_s=0.0002,
        request_bytes=62, response_bytes=615, http_method="GET",
    )
    resnet = ServiceBehavior(
        name="resnet", port=8501,
        startup_s=2.60,        # TensorFlow Serving loads the ResNet50 model
        request_cpu_s=0.180,   # one CPU inference
        request_bytes=83 * KIB, response_bytes=280, http_method="POST",
    )
    env_writer = ServiceBehavior(
        name="env-writer-py", port=None,  # writes index.html, serves nothing
        startup_s=0.45,        # CPython start + imports + config read
        request_cpu_s=0.0,
        request_bytes=0, response_bytes=0, http_method="GET",
    )

    return {
        "asm": CatalogEntry(
            key="asm",
            description="Assembler Web Server (asmttpd)",
            images=(asm_image,), behaviors=(asm,), http_method="GET",
        ),
        "nginx": CatalogEntry(
            key="nginx",
            description="Nginx Web Server",
            images=(nginx_image,), behaviors=(nginx,), http_method="GET",
        ),
        "resnet": CatalogEntry(
            key="resnet",
            description="TensorFlow Serving with pre-trained ResNet50 model",
            images=(resnet_image,), behaviors=(resnet,), http_method="POST",
        ),
        "nginx+py": CatalogEntry(
            key="nginx+py",
            description="Nginx Web Server + Python Application",
            images=(nginx_image, envwriter_image),
            behaviors=(nginx, env_writer), http_method="GET",
        ),
    }


#: The four services of Table I, keyed as in the figures.
EDGE_SERVICE_CATALOG: Dict[str, CatalogEntry] = _build_catalog()


def catalog_image(key: str, index: int = 0) -> ContainerImage:
    return EDGE_SERVICE_CATALOG[key].images[index]


def catalog_behavior(key: str, index: int = 0) -> ServiceBehavior:
    return EDGE_SERVICE_CATALOG[key].behaviors[index]


def all_catalog_images() -> List[ContainerImage]:
    out: List[ContainerImage] = []
    seen = set()
    for entry in EDGE_SERVICE_CATALOG.values():
        for image in entry.images:
            if str(image.ref) not in seen:
                seen.add(str(image.ref))
                out.append(image)
    return out


def service_table() -> List[dict]:
    """Regenerate Table I as structured rows (benchmark B-T1)."""
    rows = []
    for entry in EDGE_SERVICE_CATALOG.values():
        rows.append({
            "key": entry.key,
            "service": entry.description,
            "images": " + ".join(str(i.ref) for i in entry.images),
            "size_bytes": entry.total_size_bytes,
            "layers": entry.total_layers,
            "containers": entry.container_count,
            "http": entry.http_method,
        })
    return rows
