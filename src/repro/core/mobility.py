"""Client mobility: follow-me edge handover.

The Dispatcher already "tracks the clients' current location" (§IV-B). This
module adds what the related work calls *Follow Me Edge* (Taleb et al. [12],
[13]): when a UE moves to a different access zone, its existing redirection
decisions point at what is no longer the nearest edge. A handover

1. updates the client's zone in the :class:`~repro.core.zones.ZoneMap`,
2. forgets the client's FlowMemory entries,
3. deletes the client's redirection flows on every switch,

so the very next packet re-enters the dispatch path and lands on the edge
cluster nearest to the *new* location — still fully transparent to the
client, which keeps addressing the cloud IP throughout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.addresses import IPv4
from repro.netsim.packet import ETH_TYPE_IP

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import TransparentEdgeController


class MobilityManager:
    """Performs handovers against a running controller."""

    def __init__(self, controller: "TransparentEdgeController"):
        self.controller = controller
        #: diagnostics
        self.handovers = 0

    def handover(self, client: IPv4, new_zone: Optional[str] = None) -> int:
        """Move ``client`` (optionally to ``new_zone``); returns the number
        of memorized flows that were invalidated."""
        controller = self.controller
        dispatcher = controller.dispatcher
        if new_zone is not None:
            dispatcher.set_client_zone(client, new_zone)

        # 2. forget the client's memorized decisions
        invalidated = 0
        for flow in dispatcher.memory.flows_of(client):
            dispatcher.memory.forget(flow.client, flow.service_id)
            invalidated += 1

        # 2b. release the old cluster's load accounting for every still-
        # installed flow of this client. The deletes below do trigger
        # FlowRemoved notifications, but releasing synchronously via the
        # cookie ledger (which makes those notifications no-ops) keeps the
        # LoadAwareScheduler's view correct at the instant of the handover
        # — and even when a datapath holding the flows is unreachable.
        released = controller.release_client_flows(client)

        # 3. remove the client's redirection flows from every switch
        for datapath in controller.manager.datapaths.values():
            parser, ofp = datapath.ofproto_parser, datapath.ofproto
            upstream = parser.OFPMatch(eth_type=ETH_TYPE_IP, ip_proto=6,
                                       ipv4_src=client)
            downstream = parser.OFPMatch(eth_type=ETH_TYPE_IP, ip_proto=6,
                                         ipv4_dst=client)
            for match in (upstream, downstream):
                datapath.send_msg(parser.OFPFlowMod(
                    datapath, match=match, command=ofp.OFPFC_DELETE))
        self.handovers += 1
        controller.log("handover", client=str(client),
                       zone=new_zone or dispatcher.client_zone(client),
                       invalidated=invalidated, released=released)
        return invalidated
