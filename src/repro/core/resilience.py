"""Resilience primitives: retry policies and per-cluster circuit breakers.

The transparency promise of the paper holds only while the platform degrades
gracefully: a client must never observe a hang because an edge misbehaved —
at worst it reaches the real cloud origin (which is exactly what it thinks
it is talking to anyway). Two mechanisms implement that:

* :class:`RetryPolicy` — the deployment engine retries a failed bring-up
  with exponential backoff, and every phase runs under a deadline so a
  stalled pull or a crashed container cannot wedge a dispatch forever;
* :class:`CircuitBreaker` — the dispatcher tracks consecutive deployment
  failures per cluster; after ``failure_threshold`` the cluster is excluded
  from scheduling for ``open_for_s`` (open), then a single probation
  dispatch is allowed through (half-open) — success closes the breaker,
  failure re-opens it. While a cluster is open, requests flow to other
  clusters or transparently toward the cloud instead of queuing behind a
  failing edge.

Backoff is deterministic (no jitter): the simulation's determinism contract
forbids un-seeded randomness, and the retry sequence itself is part of the
reproducible experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + exponential-backoff configuration of the deployment engine.

    ``phase_deadline_s`` maps phase names (``pull``, ``create``,
    ``scale_up``, ``wait_ready``) to per-attempt deadlines; a phase that
    overruns is killed and counts as a failure. ``None`` disables the
    deadline for that phase.
    """

    #: total bring-up attempts (1 = no retries)
    max_attempts: int = 3
    #: first backoff, doubled (``backoff_factor``) per further attempt
    base_backoff_s: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    #: per-attempt phase deadlines in seconds (None = unbounded)
    phase_deadline_s: Dict[str, Optional[float]] = field(default_factory=lambda: {
        "pull": 60.0,
        "create": 10.0,
        "scale_up": 15.0,
        "wait_ready": 30.0,
    })

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = self.base_backoff_s * self.backoff_factor ** (attempt - 1)
        return min(raw, self.max_backoff_s)

    def deadline_for(self, phase: str) -> Optional[float]:
        return self.phase_deadline_s.get(phase)


#: a policy that never retries and never enforces deadlines — the engine's
#: pre-resilience behaviour, used by determinism-sensitive regression tests
NO_RETRY = RetryPolicy(max_attempts=1, phase_deadline_s={})


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning (see :class:`CircuitBreaker`)."""

    #: consecutive failures that trip the breaker open
    failure_threshold: int = 3
    #: how long an open breaker excludes the cluster before probation
    open_for_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.open_for_s <= 0:
            raise ValueError("open_for_s must be positive")


class CircuitBreaker:
    """Classic closed → open → half-open breaker over one edge cluster.

    States:

    * ``closed`` — healthy; failures are counted, successes reset the count;
    * ``open`` — tripped; :meth:`allow` refuses until ``open_for_s`` elapsed;
    * ``half_open`` — probation; exactly one in-flight probe dispatch is let
      through. Its success closes the breaker, its failure re-opens it.
    """

    def __init__(self, sim: "Simulator", name: str,
                 config: Optional[BreakerConfig] = None):
        self.sim = sim
        self.name = name
        self.config = config if config is not None else BreakerConfig()
        self.state = "closed"
        self.consecutive_failures = 0
        self._open_until = 0.0
        self._probe_inflight = False
        #: diagnostics
        self.opens = 0

    # ---------------------------------------------------------------- gates

    def allow(self) -> bool:
        """May a new dispatch use this cluster right now?

        In ``half_open`` the first call claims the single probation slot;
        call :meth:`release_probe` if the claimed probe is not actually sent
        (e.g. the scheduler picked another cluster)."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.sim.now < self._open_until:
                return False
            self.state = "half_open"
            self._probe_inflight = False
            self.sim.trace.emit(self.sim.now, "breaker", "half-open",
                                {"cluster": self.name})
        # half-open: one probe at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def release_probe(self) -> None:
        """Give back an unused half-open probe slot."""
        if self.state == "half_open":
            self._probe_inflight = False

    # -------------------------------------------------------------- results

    def record_success(self) -> None:
        if self.state != "closed":
            self.sim.trace.emit(self.sim.now, "breaker", "close",
                                {"cluster": self.name})
        self.state = "closed"
        self.consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        tripped = (self.state == "half_open"
                   or self.consecutive_failures >= self.config.failure_threshold)
        if tripped and self.state != "open":
            self.state = "open"
            self._open_until = self.sim.now + self.config.open_for_s
            self._probe_inflight = False
            self.opens += 1
            self.sim.trace.emit(self.sim.now, "breaker", "open",
                                {"cluster": self.name,
                                 "failures": self.consecutive_failures,
                                 "until": round(self._open_until, 6)})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.name} {self.state} "
                f"failures={self.consecutive_failures}>")
