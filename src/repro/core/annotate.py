"""Automated annotation of service definition files (§V).

Developers supply a plain *Kubernetes Deployment* YAML (the only mandatory
datum is the image name); the platform annotates it so the same definition
deploys to Docker and Kubernetes alike:

1. a **unique worldwide name** derived from the registered service address;
2. the ``matchLabels`` Kubernetes requires;
3. an ``edge.service`` label so edge services can be addressed and queried
   distinctly in the cluster;
4. ``replicas: 0`` ("scale to zero") by default;
5. ``schedulerName`` when a Local Scheduler is configured for the cluster;
6. a generated *Kubernetes Service* definition (unless the developer already
   included one): exposed port, target port, and TCP as the default protocol.

The annotated YAML round-trips (``annotated_yaml``) and is also lowered to
the cluster-neutral :class:`~repro.edge.cluster.DeploymentSpec` consumed by
both cluster backends.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional

import yaml

from repro.core.serviceid import ServiceID
from repro.edge.cluster import DeploymentSpec, SpecContainer
from repro.edge.kubernetes import DEFAULT_SCHEDULER
from repro.edge.services import EDGE_SERVICE_CATALOG, ServiceBehavior

EDGE_SERVICE_LABEL = "edge.service"


class ServiceDefinitionError(ValueError):
    """The YAML is not a usable service definition."""


@dataclass
class AnnotationConfig:
    """Platform-side annotation knobs (from the controller configuration)."""

    #: Local Scheduler name to inject as ``schedulerName`` (None: default)
    scheduler_name: Optional[str] = None
    #: default replica count ("scale to zero")
    default_replicas: int = 0
    name_prefix: str = "edge"


def load_service_yaml(text: str) -> List[dict]:
    """Parse a (possibly multi-document) service definition file."""
    docs = [doc for doc in yaml.safe_load_all(text) if doc]
    if not docs:
        raise ServiceDefinitionError("empty service definition")
    for doc in docs:
        if not isinstance(doc, dict) or "kind" not in doc:
            raise ServiceDefinitionError("every document needs a 'kind'")
    return docs


def _find_behavior(image: str) -> Optional[ServiceBehavior]:
    """Resolve an image reference to a catalog behaviour (None: generic)."""
    for entry in EDGE_SERVICE_CATALOG.values():
        for img, behavior in zip(entry.images, entry.behaviors, strict=True):
            if str(img.ref) == image or img.ref.name == image:
                return behavior
    return None


def _deployment_doc(docs: List[dict]) -> dict:
    for doc in docs:
        if doc.get("kind") == "Deployment":
            return doc
    raise ServiceDefinitionError("no Deployment document found")


def _service_doc(docs: List[dict]) -> Optional[dict]:
    for doc in docs:
        if doc.get("kind") == "Service":
            return doc
    return None


@dataclass
class AnnotatedService:
    """Result of the annotation pipeline."""

    service_id: ServiceID
    unique_name: str
    deployment_doc: dict
    service_doc: dict
    spec: DeploymentSpec
    service_doc_generated: bool

    def annotated_yaml(self) -> str:
        """The annotated multi-document YAML (what would be applied)."""
        return yaml.safe_dump_all([self.deployment_doc, self.service_doc],
                                  sort_keys=False)


def annotate_service(
    yaml_text: str,
    service_id: ServiceID,
    config: Optional[AnnotationConfig] = None,
) -> AnnotatedService:
    """Run the automated annotation pipeline on a developer's YAML."""
    config = config or AnnotationConfig()
    docs = [copy.deepcopy(d) for d in load_service_yaml(yaml_text)]
    deployment = _deployment_doc(docs)

    # ---- extract containers ------------------------------------------------
    template = (deployment.setdefault("spec", {})
                .setdefault("template", {}))
    pod_spec = template.setdefault("spec", {})
    containers = pod_spec.get("containers")
    if not containers:
        raise ServiceDefinitionError("Deployment has no containers")
    for container in containers:
        if "image" not in container:
            raise ServiceDefinitionError("container without an image")
        container.setdefault("name",
                             container["image"].split("/")[-1].split(":")[0])

    # ---- 1. unique worldwide name -----------------------------------------
    unique_name = f"{config.name_prefix}-{service_id.slug}"
    deployment.setdefault("metadata", {})["name"] = unique_name

    # ---- 2.+3. labels ------------------------------------------------------
    labels = {
        "app": unique_name,
        EDGE_SERVICE_LABEL: unique_name,
    }
    deployment["metadata"].setdefault("labels", {}).update(labels)
    deployment["spec"].setdefault("selector", {})["matchLabels"] = dict(labels)
    template.setdefault("metadata", {}).setdefault("labels", {}).update(labels)

    # ---- 4. scale to zero --------------------------------------------------
    deployment["spec"].setdefault("replicas", config.default_replicas)
    if "replicas" not in deployment["spec"] or deployment["spec"]["replicas"] is None:
        deployment["spec"]["replicas"] = config.default_replicas

    # ---- 5. local scheduler ------------------------------------------------
    if config.scheduler_name:
        pod_spec["schedulerName"] = config.scheduler_name

    # ---- resolve ports/behaviours ------------------------------------------
    spec_containers: List[SpecContainer] = []
    target_port: Optional[int] = None
    for container in containers:
        behavior = _find_behavior(container["image"])
        declared_ports = container.get("ports") or []
        if declared_ports and target_port is None:
            target_port = int(declared_ports[0].get("containerPort", service_id.port))
        if behavior is None:
            # Generic behaviour for unknown images: serve on the declared
            # containerPort (or the registered port).
            port = (int(declared_ports[0]["containerPort"])
                    if declared_ports else service_id.port)
            behavior = ServiceBehavior(name=container["name"], port=port)
        spec_containers.append(SpecContainer(
            name=container["name"], image=container["image"], behavior=behavior))
    if target_port is None:
        serving = next((c for c in spec_containers
                        if c.behavior is not None and c.behavior.port is not None),
                       spec_containers[0])
        target_port = serving.behavior.port if serving.behavior else service_id.port

    # ---- 6. generated Service definition ------------------------------------
    service_doc = _service_doc(docs)
    generated = service_doc is None
    if service_doc is None:
        service_doc = {
            "apiVersion": "v1",
            "kind": "Service",
            "metadata": {"name": unique_name, "labels": dict(labels)},
            "spec": {
                "selector": dict(labels),
                "ports": [{
                    "port": service_id.port,
                    "targetPort": target_port,
                    "protocol": service_id.protocol,
                }],
            },
        }
    else:
        service_doc.setdefault("metadata", {})["name"] = unique_name
        service_doc["metadata"].setdefault("labels", {}).update(labels)
        service_doc.setdefault("spec", {}).setdefault("selector", dict(labels))
        service_doc["spec"].setdefault("ports", [{
            "port": service_id.port, "targetPort": target_port,
            "protocol": service_id.protocol,
        }])

    port_spec = service_doc["spec"]["ports"][0]
    spec = DeploymentSpec(
        name=unique_name,
        containers=tuple(spec_containers),
        port=int(port_spec.get("port", service_id.port)),
        target_port=int(port_spec.get("targetPort", target_port)),
        protocol=str(port_spec.get("protocol", "TCP")),
        labels={EDGE_SERVICE_LABEL: unique_name},
        scheduler_name=config.scheduler_name or DEFAULT_SCHEDULER,
    )
    return AnnotatedService(
        service_id=service_id,
        unique_name=unique_name,
        deployment_doc=deployment,
        service_doc=service_doc,
        spec=spec,
        service_doc_generated=generated,
    )


def minimal_yaml(image: str, container_port: Optional[int] = None, name: str = "") -> str:
    """Generate the *minimal* developer-side YAML ("the only mandatory data
    is the name of the image")."""
    container: dict = {"image": image}
    if name:
        container["name"] = name
    if container_port is not None:
        container["ports"] = [{"containerPort": container_port}]
    doc = {
        "apiVersion": "apps/v1",
        "kind": "Deployment",
        "spec": {"template": {"spec": {"containers": [container]}}},
    }
    return yaml.safe_dump(doc, sort_keys=False)
