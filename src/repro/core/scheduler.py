"""Global schedulers: the FAST / BEST placement decision (§IV-B).

The *Global Scheduler* chooses edge clusters; the *Local Scheduler* (a
Kubernetes scheduler plug-in, see
:meth:`repro.edge.kubernetes.KubernetesCluster.register_scheduler`) chooses
an instance within a cluster.

Contract (fig. 6 / §IV-B1): given the current system state the Global
Scheduler returns

* ``fast`` — where to serve the *current* request. May be a cluster without
  a running instance (→ on-demand deployment **with waiting**) or ``None``
  (→ forward toward the cloud).
* ``best`` — where *future* requests should be served. Empty when equal to
  the FAST choice; non-empty means on-demand deployment **without waiting**
  (deploy at ``best`` in parallel while ``fast`` serves the request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.registry import EdgeService
from repro.core.zones import ZoneMap
from repro.edge.cluster import DeploymentSpec, EdgeCluster, InstanceInfo

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass
class ScheduleRequest:
    """Everything the Dispatcher feeds the Global Scheduler (fig. 7)."""

    service: EdgeService
    client_zone: str
    #: existing+running instances, across all clusters
    instances: List[InstanceInfo]
    #: all candidate clusters (running an instance or not)
    clusters: List[EdgeCluster]
    #: active flows per cluster name (for load-aware policies)
    load: Dict[str, int] = field(default_factory=dict)


@dataclass
class Placement:
    """The scheduler's two choices."""

    fast: Optional[EdgeCluster]
    best: Optional[EdgeCluster] = None

    def __post_init__(self):
        # Normalize: BEST empty if equal to FAST (§IV-B1).
        if self.best is not None and self.fast is not None and self.best is self.fast:
            self.best = None

    @property
    def without_waiting(self) -> bool:
        return self.best is not None

    @property
    def toward_cloud(self) -> bool:
        return self.fast is None


def estimate_time_to_ready(cluster: EdgeCluster, spec: DeploymentSpec) -> float:
    """Rough time until a (possibly cold) instance is ready on ``cluster``.

    Used by schedulers to honour a service's ``max_initial_delay_s``.
    Delegates to :meth:`EdgeCluster.estimate_cold_start_s`, whose estimates
    derive from the same timing models the substrate charges.
    """
    if cluster.is_ready(spec):
        return 0.0
    return cluster.estimate_cold_start_s(spec)


class GlobalScheduler:
    """Base class: implement :meth:`schedule`."""

    name = "abstract"

    def schedule(self, request: ScheduleRequest) -> Placement:
        raise NotImplementedError

    # Shared helpers ------------------------------------------------------

    @staticmethod
    def ready_instances(request: ScheduleRequest) -> List[InstanceInfo]:
        return [inst for inst in request.instances if inst.ready]


class ProximityScheduler(GlobalScheduler):
    """The paper's default policy: redirect to the closest edge (§II), with
    both on-demand deployment modes (§IV-A).

    * optimal = nearest cluster to the client (by zone RTT);
    * if optimal is ready → FAST = optimal;
    * else if the service's latency budget tolerates deploying at optimal →
      FAST = optimal (with waiting);
    * else if some other cluster is ready → FAST = that cluster (nearest
      ready), BEST = optimal (without waiting);
    * else FAST = optimal anyway when allowed to deploy, or None → cloud.
    """

    name = "proximity"

    def __init__(self, zones: ZoneMap, allow_deploy: bool = True):
        self.zones = zones
        self.allow_deploy = allow_deploy

    def _rank(self, request: ScheduleRequest, clusters: Sequence[EdgeCluster],
              ready_clusters: frozenset) -> List[EdgeCluster]:
        # Proximity first; among equally-near clusters prefer one that is
        # already ready (e.g. the hybrid Docker→K8s handover on one EGS).
        return sorted(clusters,
                      key=lambda c: (self.zones.rtt(request.client_zone, c.zone),
                                     id(c) not in ready_clusters, c.name))

    def schedule(self, request: ScheduleRequest) -> Placement:
        if not request.clusters:
            return Placement(fast=None)
        ready_clusters = frozenset(id(inst.cluster)
                                   for inst in self.ready_instances(request))
        ranked = self._rank(request, request.clusters, ready_clusters)
        optimal = ranked[0]
        if id(optimal) in ready_clusters:
            return Placement(fast=optimal)
        if not self.allow_deploy:
            ready_ranked = [c for c in ranked if id(c) in ready_clusters]
            return Placement(fast=ready_ranked[0] if ready_ranked else None)
        budget = request.service.max_initial_delay_s
        if budget is not None:
            eta = estimate_time_to_ready(optimal, request.service.spec)
            if eta > budget:
                ready_ranked = [c for c in ranked if id(c) in ready_clusters]
                if ready_ranked:
                    # On-demand deployment WITHOUT waiting (fig. 3).
                    return Placement(fast=ready_ranked[0], best=optimal)
                # No alternative: the scheduler may still prefer the cloud
                # for the first request while the edge deploys.
                return Placement(fast=None, best=optimal)
        # On-demand deployment WITH waiting (fig. 2 / fig. 5).
        return Placement(fast=optimal)


class RoundRobinScheduler(GlobalScheduler):
    """Spreads deployments across clusters in turn; prefers ready instances
    for the FAST choice."""

    name = "round-robin"

    def __init__(self):
        self._cycle = itertools.count()

    def schedule(self, request: ScheduleRequest) -> Placement:
        if not request.clusters:
            return Placement(fast=None)
        ready = self.ready_instances(request)
        if ready:
            return Placement(fast=ready[0].cluster)
        index = next(self._cycle) % len(request.clusters)
        return Placement(fast=request.clusters[index])


class LoadAwareScheduler(GlobalScheduler):
    """Chooses the least-loaded cluster (active flows), breaking ties by
    proximity; deploys there when not ready."""

    name = "load-aware"

    def __init__(self, zones: ZoneMap):
        self.zones = zones

    def schedule(self, request: ScheduleRequest) -> Placement:
        if not request.clusters:
            return Placement(fast=None)

        def key(cluster: EdgeCluster):
            return (request.load.get(cluster.name, 0),
                    self.zones.rtt(request.client_zone, cluster.zone),
                    cluster.name)

        ranked = sorted(request.clusters, key=key)
        chosen = ranked[0]
        ready_clusters = {id(inst.cluster) for inst in self.ready_instances(request)}
        if id(chosen) in ready_clusters or not ready_clusters:
            return Placement(fast=chosen)
        ready_ranked = [c for c in ranked if id(c) in ready_clusters]
        # Serve now from the best ready cluster; rebalance to `chosen` later.
        return Placement(fast=ready_ranked[0], best=chosen)
