"""The switch fabric: topology knowledge for multi-switch deployments.

The evaluation testbed has one virtual OVS switch (fig. 8), but the concept
(fig. 1/2) is a 5G network where the ingress gNB switch, aggregation
switches, and the switches in front of edge clusters are distinct datapaths.
A :class:`FabricTopology` gives the controller what a real deployment learns
via LLDP: which (dpid, port) pairs interconnect switches, and shortest paths
between any two datapaths (networkx under the hood, weighted by link
latency).

The controller uses it to install the redirection flows *along the whole
path*: full rewrite at the client's ingress switch and at the egress switch
in front of the instance, plain 5-tuple forwarding entries at transit
switches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx


class FabricError(ValueError):
    """Inconsistent fabric description or unroutable path."""


class FabricTopology:
    """Inter-switch connectivity + shortest-path routing."""

    def __init__(self):
        self._graph = nx.Graph()
        #: (dpid_a, dpid_b) -> port on dpid_a toward dpid_b
        self._ports: Dict[Tuple[int, int], int] = {}
        self._paths_cache: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------- building

    def add_switch(self, dpid: int) -> None:
        self._graph.add_node(dpid)

    def add_link(self, dpid_a: int, port_a: int, dpid_b: int, port_b: int,
                 weight: float = 1.0) -> None:
        """Register an inter-switch link (both directions)."""
        if dpid_a == dpid_b:
            raise FabricError("self-links are not allowed")
        for key in ((dpid_a, dpid_b), (dpid_b, dpid_a)):
            if key in self._ports:
                raise FabricError(f"link {dpid_a}<->{dpid_b} already present")
        self._graph.add_edge(dpid_a, dpid_b, weight=weight)
        self._ports[(dpid_a, dpid_b)] = port_a
        self._ports[(dpid_b, dpid_a)] = port_b
        # A new link can shorten ANY path, so full-flush is already the
        # finest correct granularity here (topology mutations are rare,
        # build-time-only events).
        self._paths_cache.clear()  # repro: noqa[REP009]

    # -------------------------------------------------------------- queries

    @property
    def switches(self) -> List[int]:
        return sorted(self._graph.nodes)

    def has_switch(self, dpid: int) -> bool:
        return dpid in self._graph

    def path(self, src_dpid: int, dst_dpid: int) -> List[int]:
        """Shortest dpid path from ``src`` to ``dst`` (inclusive)."""
        if src_dpid == dst_dpid:
            return [src_dpid]
        key = (src_dpid, dst_dpid)
        cached = self._paths_cache.get(key)
        if cached is not None:
            return list(cached)
        try:
            found = nx.shortest_path(self._graph, src_dpid, dst_dpid,
                                     weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise FabricError(f"no path {src_dpid} -> {dst_dpid}") from exc
        self._paths_cache[key] = found
        return list(found)

    def port_toward(self, src_dpid: int, next_dpid: int) -> int:
        """Output port on ``src`` that reaches the adjacent ``next`` switch."""
        port = self._ports.get((src_dpid, next_dpid))
        if port is None:
            raise FabricError(f"{src_dpid} and {next_dpid} are not adjacent")
        return port

    def hops(self, src_dpid: int, dst_dpid: int) -> int:
        return len(self.path(src_dpid, dst_dpid)) - 1

    def is_interswitch_port(self, dpid: int, port: int) -> bool:
        """True when (dpid, port) faces another switch — host-location
        learning must ignore packets arriving there (as LLDP-aware
        controllers do)."""
        return any(src == dpid and p == port
                   for (src, _), p in self._ports.items())
