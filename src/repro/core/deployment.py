"""The three-phase deployment engine (fig. 4) with per-phase timing records.

Phases for bringing a service instance up on a cluster:

1. **Pull** — unless cached, fetch the container images;
2. **Create** — Docker: create container(s); K8s: Deployment + Service with
   zero replicas;
3. **Scale Up** — Docker: start container(s); K8s: replicas 0 → 1 — followed
   by the controller's port-probe wait until the service actually answers.

And for retiring one: **Scale Down**, **Remove**, and (rarely) **Delete**
(images). Every run is recorded as a :class:`DeploymentRecord`, which is the
raw data behind figs. 11–15.

Concurrent requests for the same (cluster, service) coalesce onto one
in-flight deployment — exactly what the controller needs when a burst of
clients hits a cold service (fig. 10: up to eight deployments per second).

Resilience (none of which the paper's prototype had): every phase runs
under a per-attempt deadline, failed attempts are retried with exponential
backoff (:class:`~repro.core.resilience.RetryPolicy`), and a bring-up that
exhausts its attempts raises a typed :class:`DeploymentError` so the
dispatcher can fall back toward the cloud instead of hanging the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.registry import EdgeService
from repro.core.resilience import RetryPolicy
from repro.edge.cluster import EdgeCluster
from repro.simcore.errors import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Process, Simulator


class DeploymentError(RuntimeError):
    """Base class: bringing a service instance up on a cluster failed."""

    def __init__(self, cluster: str, service: str, message: str):
        super().__init__(message)
        self.cluster = cluster
        self.service = service


class DeploymentPhaseError(DeploymentError):
    """One phase (pull / create / scale_up / wait_ready) raised."""

    def __init__(self, cluster: str, service: str, phase: str,
                 cause: BaseException):
        super().__init__(cluster, service,
                         f"{service} on {cluster}: phase {phase!r} failed: {cause!r}")
        self.phase = phase
        self.cause = cause


class DeploymentTimeout(DeploymentError):
    """One phase overran its per-attempt deadline and was killed."""

    def __init__(self, cluster: str, service: str, phase: str, deadline_s: float):
        super().__init__(cluster, service,
                         f"{service} on {cluster}: phase {phase!r} exceeded "
                         f"its {deadline_s:g}s deadline")
        self.phase = phase
        self.deadline_s = deadline_s


class DeploymentRetriesExhausted(DeploymentError):
    """Every attempt of a bring-up failed; the last error is attached."""

    def __init__(self, cluster: str, service: str, attempts: int,
                 last_error: BaseException):
        super().__init__(cluster, service,
                         f"{service} on {cluster}: {attempts} attempt(s) "
                         f"failed, last: {last_error!r}")
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class DeploymentRecord:
    """Timing of one ensure-available run (phases that actually executed)."""

    service: str
    cluster: str
    cluster_type: str
    started_at: float
    #: per-phase durations; absent key = phase skipped (already satisfied)
    phases: Dict[str, float] = field(default_factory=dict)
    #: wait-until-ready (port probing) duration — fig. 14/15's quantity
    wait_s: float = 0.0
    finished_at: float = 0.0
    cold_start: bool = False
    #: False for failed/interrupted runs — those must not pollute the
    #: fig. 11–15 aggregations (negative ``total_s`` etc.)
    succeeded: bool = False
    #: retries this run needed (0 = first attempt succeeded)
    retries: int = 0
    #: repr of the terminal error for failed runs
    error: Optional[str] = None

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at


class DeploymentEngine:
    """Drives the phases of fig. 4 against any :class:`EdgeCluster`."""

    def __init__(self, sim: "Simulator", policy: Optional[RetryPolicy] = None):
        self.sim = sim
        #: deadline/backoff policy applied to every bring-up
        self.policy = policy if policy is not None else RetryPolicy()
        self._inflight: Dict[Tuple[str, str], "Process"] = {}
        #: every completed run (experiment drivers read this)
        self.records: List[DeploymentRecord] = []
        #: diagnostics
        self.coalesced = 0
        #: failed attempts (each may be retried)
        self.attempt_failures = 0
        #: backoff retries actually taken
        self.retries = 0
        #: bring-ups that exhausted every attempt
        self.failures = 0

    # ------------------------------------------------------------ bring up

    def ensure_available(self, cluster: EdgeCluster, service: EdgeService) -> "Process":
        """Make sure a *ready* instance exists on ``cluster``; returns its
        :class:`Endpoint`. Coalesces concurrent calls per (cluster, service).

        The returned process fails with a :class:`DeploymentError` subclass
        when the bring-up is impossible within the engine's
        :class:`~repro.core.resilience.RetryPolicy` — every coalesced waiter
        observes the same failure."""
        key = (cluster.name, service.name)
        inflight = self._inflight.get(key)
        if inflight is not None and inflight.alive:
            self.coalesced += 1
            return inflight
        process = self.sim.spawn(self._ensure_proc(cluster, service),
                                 name=f"deploy:{cluster.name}:{service.name}")
        self._inflight[key] = process
        return process

    def _phase(self, cluster: EdgeCluster, service: EdgeService,
               phase: str, process: "Process"):
        """Join ``process`` under the policy's per-attempt deadline.

        A deadline overrun kills the phase process and raises
        :class:`DeploymentTimeout`; any other phase exception is wrapped in
        :class:`DeploymentPhaseError`. (Sub-generator: callers ``yield from``.)
        """
        deadline = self.policy.deadline_for(phase)
        if deadline is None:
            try:
                result = yield process
            except ProcessKilled:
                raise
            except BaseException as exc:  # noqa: BLE001 - typed rethrow
                raise DeploymentPhaseError(cluster.name, service.name,
                                           phase, exc) from exc
            return result
        fired = {"timeout": False}

        def watchdog() -> None:
            if process.alive:
                fired["timeout"] = True
                process.kill(f"{phase} deadline exceeded")

        handle = self.sim.schedule(deadline, watchdog)
        try:
            result = yield process
            return result
        except ProcessKilled as exc:
            if fired["timeout"]:
                raise DeploymentTimeout(cluster.name, service.name,
                                        phase, deadline) from exc
            raise  # the ensure process itself was killed
        except BaseException as exc:  # noqa: BLE001 - typed rethrow
            raise DeploymentPhaseError(cluster.name, service.name,
                                       phase, exc) from exc
        finally:
            handle.cancel()

    def _ensure_proc(self, cluster: EdgeCluster, service: EdgeService):
        spec = service.spec
        key = (cluster.name, service.name)
        record = DeploymentRecord(
            service=service.name, cluster=cluster.name,
            cluster_type=cluster.cluster_type, started_at=self.sim.now)
        attempt = 0
        try:
            while True:
                attempt += 1
                try:
                    cluster.check_available()
                    if cluster.is_ready(spec):
                        endpoint = cluster.endpoint(spec)
                        record.succeeded = True
                        return endpoint

                    record.cold_start = True
                    # Phase 1: Pull ----------------------------------------
                    if not cluster.has_images(spec):
                        t0 = self.sim.now
                        yield from self._phase(cluster, service, "pull",
                                               cluster.pull(spec))
                        record.phases["pull"] = self.sim.now - t0
                    # Phase 2: Create --------------------------------------
                    cluster.check_available()
                    if not cluster.is_created(spec):
                        t0 = self.sim.now
                        yield from self._phase(cluster, service, "create",
                                               cluster.create(spec))
                        record.phases["create"] = self.sim.now - t0
                    # Phase 3: Scale Up ------------------------------------
                    cluster.check_available()
                    t0 = self.sim.now
                    yield from self._phase(cluster, service, "scale_up",
                                           cluster.scale_up(spec))
                    record.phases["scale_up"] = self.sim.now - t0
                    # Wait until the port answers (the controller
                    # "continuously tests if the respective port is open").
                    t0 = self.sim.now
                    endpoint = yield from self._phase(cluster, service,
                                                      "wait_ready",
                                                      cluster.wait_ready(spec))
                    record.wait_s = self.sim.now - t0
                    record.succeeded = True
                    self.sim.trace.emit(self.sim.now, "deploy", "ready",
                                        {"service": service.name,
                                         "cluster": cluster.name,
                                         "retries": record.retries,
                                         "total": round(self.sim.now
                                                        - record.started_at, 6)})
                    return endpoint
                except ProcessKilled:
                    raise  # this ensure run was killed from outside
                except Exception as exc:  # noqa: BLE001 - retry or give up
                    self.attempt_failures += 1
                    self.sim.trace.emit(self.sim.now, "deploy", "attempt-failed",
                                        {"service": service.name,
                                         "cluster": cluster.name,
                                         "attempt": attempt,
                                         "error": repr(exc)})
                    if attempt >= self.policy.max_attempts:
                        self.failures += 1
                        record.error = repr(exc)
                        if isinstance(exc, DeploymentError) \
                                and self.policy.max_attempts == 1:
                            raise
                        raise DeploymentRetriesExhausted(
                            cluster.name, service.name, attempt, exc) from exc
                    record.retries += 1
                    self.retries += 1
                    yield self.sim.timeout(self.policy.backoff_s(attempt))
        finally:
            record.finished_at = self.sim.now
            self.records.append(record)
            self._inflight.pop(key, None)

    # ------------------------------------------------------------ tear down

    def scale_down(self, cluster: EdgeCluster, service: EdgeService) -> "Process":
        def proc():
            t0 = self.sim.now
            yield cluster.scale_down(service.spec)
            self.sim.trace.emit(self.sim.now, "deploy", "scaled-down",
                                {"service": service.name, "cluster": cluster.name,
                                 "took": round(self.sim.now - t0, 6)})

        return self.sim.spawn(proc(), name=f"scale-down:{cluster.name}:{service.name}")

    def remove(self, cluster: EdgeCluster, service: EdgeService,
               delete_images: bool = False) -> "Process":
        def proc():
            if cluster.is_ready(service.spec):
                yield cluster.scale_down(service.spec)
            yield cluster.remove(service.spec)
            if delete_images:
                cluster.delete_images(service.spec)
            self.sim.trace.emit(self.sim.now, "deploy", "removed",
                                {"service": service.name, "cluster": cluster.name})

        return self.sim.spawn(proc(), name=f"remove:{cluster.name}:{service.name}")

    # --------------------------------------------------------------- queries

    def records_for(self, cluster_type: Optional[str] = None,
                    service: Optional[str] = None,
                    cold_only: bool = False,
                    include_failed: bool = False) -> List[DeploymentRecord]:
        """Completed runs, **successful only** by default — failed or
        interrupted runs carry partial timings that would pollute the
        fig. 11–15 aggregations."""
        out = self.records
        if not include_failed:
            out = [r for r in out if r.succeeded]
        if cluster_type is not None:
            out = [r for r in out if r.cluster_type == cluster_type]
        if service is not None:
            out = [r for r in out if r.service == service]
        if cold_only:
            out = [r for r in out if r.cold_start]
        return list(out)
