"""The three-phase deployment engine (fig. 4) with per-phase timing records.

Phases for bringing a service instance up on a cluster:

1. **Pull** — unless cached, fetch the container images;
2. **Create** — Docker: create container(s); K8s: Deployment + Service with
   zero replicas;
3. **Scale Up** — Docker: start container(s); K8s: replicas 0 → 1 — followed
   by the controller's port-probe wait until the service actually answers.

And for retiring one: **Scale Down**, **Remove**, and (rarely) **Delete**
(images). Every run is recorded as a :class:`DeploymentRecord`, which is the
raw data behind figs. 11–15.

Concurrent requests for the same (cluster, service) coalesce onto one
in-flight deployment — exactly what the controller needs when a burst of
clients hits a cold service (fig. 10: up to eight deployments per second).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.registry import EdgeService
from repro.edge.cluster import DeploymentSpec, EdgeCluster, Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Process, Simulator


@dataclass
class DeploymentRecord:
    """Timing of one ensure-available run (phases that actually executed)."""

    service: str
    cluster: str
    cluster_type: str
    started_at: float
    #: per-phase durations; absent key = phase skipped (already satisfied)
    phases: Dict[str, float] = field(default_factory=dict)
    #: wait-until-ready (port probing) duration — fig. 14/15's quantity
    wait_s: float = 0.0
    finished_at: float = 0.0
    cold_start: bool = False

    @property
    def total_s(self) -> float:
        return self.finished_at - self.started_at


class DeploymentEngine:
    """Drives the phases of fig. 4 against any :class:`EdgeCluster`."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._inflight: Dict[Tuple[str, str], "Process"] = {}
        #: every completed run (experiment drivers read this)
        self.records: List[DeploymentRecord] = []
        #: diagnostics
        self.coalesced = 0

    # ------------------------------------------------------------ bring up

    def ensure_available(self, cluster: EdgeCluster, service: EdgeService) -> "Process":
        """Make sure a *ready* instance exists on ``cluster``; returns its
        :class:`Endpoint`. Coalesces concurrent calls per (cluster, service)."""
        key = (cluster.name, service.name)
        inflight = self._inflight.get(key)
        if inflight is not None and inflight.alive:
            self.coalesced += 1
            return inflight
        process = self.sim.spawn(self._ensure_proc(cluster, service),
                                 name=f"deploy:{cluster.name}:{service.name}")
        self._inflight[key] = process
        return process

    def _ensure_proc(self, cluster: EdgeCluster, service: EdgeService):
        spec = service.spec
        key = (cluster.name, service.name)
        record = DeploymentRecord(
            service=service.name, cluster=cluster.name,
            cluster_type=cluster.cluster_type, started_at=self.sim.now)
        try:
            if cluster.is_ready(spec):
                endpoint = cluster.endpoint(spec)
                record.finished_at = self.sim.now
                return endpoint

            record.cold_start = True
            # Phase 1: Pull ------------------------------------------------
            if not cluster.has_images(spec):
                t0 = self.sim.now
                yield cluster.pull(spec)
                record.phases["pull"] = self.sim.now - t0
            # Phase 2: Create ----------------------------------------------
            if not cluster.is_created(spec):
                t0 = self.sim.now
                yield cluster.create(spec)
                record.phases["create"] = self.sim.now - t0
            # Phase 3: Scale Up --------------------------------------------
            t0 = self.sim.now
            yield cluster.scale_up(spec)
            record.phases["scale_up"] = self.sim.now - t0
            # Wait until the port answers (the controller "continuously
            # tests if the respective port is open", §VI).
            t0 = self.sim.now
            endpoint = yield cluster.wait_ready(spec)
            record.wait_s = self.sim.now - t0
            record.finished_at = self.sim.now
            self.sim.trace.emit(self.sim.now, "deploy", "ready",
                                {"service": service.name, "cluster": cluster.name,
                                 "total": round(record.total_s, 6)})
            return endpoint
        finally:
            self.records.append(record)
            self._inflight.pop(key, None)

    # ------------------------------------------------------------ tear down

    def scale_down(self, cluster: EdgeCluster, service: EdgeService) -> "Process":
        def proc():
            t0 = self.sim.now
            yield cluster.scale_down(service.spec)
            self.sim.trace.emit(self.sim.now, "deploy", "scaled-down",
                                {"service": service.name, "cluster": cluster.name,
                                 "took": round(self.sim.now - t0, 6)})

        return self.sim.spawn(proc(), name=f"scale-down:{cluster.name}:{service.name}")

    def remove(self, cluster: EdgeCluster, service: EdgeService,
               delete_images: bool = False) -> "Process":
        def proc():
            if cluster.is_ready(service.spec):
                yield cluster.scale_down(service.spec)
            yield cluster.remove(service.spec)
            if delete_images:
                cluster.delete_images(service.spec)
            self.sim.trace.emit(self.sim.now, "deploy", "removed",
                                {"service": service.name, "cluster": cluster.name})

        return self.sim.spawn(proc(), name=f"remove:{cluster.name}:{service.name}")

    # --------------------------------------------------------------- queries

    def records_for(self, cluster_type: Optional[str] = None,
                    service: Optional[str] = None,
                    cold_only: bool = False) -> List[DeploymentRecord]:
        out = self.records
        if cluster_type is not None:
            out = [r for r in out if r.cluster_type == cluster_type]
        if service is not None:
            out = [r for r in out if r.service == service]
        if cold_only:
            out = [r for r in out if r.cold_start]
        return list(out)
