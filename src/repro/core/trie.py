"""Binary longest-prefix-match trie over 32-bit addresses (ROADMAP item 3).

The paper's interception model keys every packet-in decision on a registered
``(IP, port, protocol)`` service identity.  At web scale the registered
address space is not a handful of host routes but *millions* of cloud
prefixes (the perceived-cloud addresses of §II), so the registry needs the
same data structure a router uses for its FIB: a longest-prefix-match trie.

:class:`PrefixTrie` is a TinyServiceTrie-style *path-compressed* binary trie
(a Patricia trie) over 32-bit keys:

* a node stores the prefix it represents as ``(network, plen)`` with
  ``network`` already masked to ``plen`` bits;
* an edge consumes the single bit after the parent's prefix; the child may
  then *skip* an arbitrary run of bits (path compression), so the node count
  is at most ``2·n - 1`` for ``n`` stored prefixes regardless of their
  length;
* every operation walks at most 32 nodes, independent of how many prefixes
  are stored — lookups stay O(address bits) from 1k to 1M entries.

The trie is value-generic: the :class:`~repro.core.registry.ServiceRegistry`
stores per-address port/protocol maps, the
:class:`~repro.core.zones.ZoneMap` stores zone names.  Keys are plain ints
(callers pass ``IPv4.value``) so the structure stays dependency-free and
mypy-strict.

Determinism: iteration yields prefixes in ascending ``(network, prefix_len)``
order — no hash-order anywhere — and :attr:`PrefixTrie.generation` bumps on
every successful mutation so memoizing callers (the controller's slow-path
caches, the incremental verifier) can detect churn without subscribing to
individual updates.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")

_BITS = 32
_MAX = 0xFFFFFFFF


def prefix_mask(prefix_len: int) -> int:
    """The 32-bit netmask of a ``/prefix_len`` prefix."""
    if not 0 <= prefix_len <= _BITS:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    return (_MAX << (_BITS - prefix_len)) & _MAX if prefix_len else 0


def _bit_after(key: int, plen: int) -> int:
    """The key bit immediately after a ``plen``-bit prefix (0 or 1)."""
    return (key >> (_BITS - 1 - plen)) & 1


def _common_prefix_len(a: int, b: int, limit: int) -> int:
    """Length of the longest common prefix of two 32-bit keys, capped."""
    diff = a ^ b
    if diff == 0:
        return limit
    return min(limit, _BITS - diff.bit_length())


class _Node(Generic[V]):
    """One trie node: a (possibly value-less) prefix with ≤ 2 children."""

    __slots__ = ("network", "plen", "left", "right", "value", "has_value", "stamp")

    def __init__(self, network: int, plen: int) -> None:
        self.network = network
        self.plen = plen
        self.left: Optional[_Node[V]] = None
        self.right: Optional[_Node[V]] = None
        self.value: Optional[V] = None
        self.has_value = False
        #: per-prefix generation — the trie-global counter's value at this
        #: prefix's last value mutation (insert/replace/:meth:`PrefixTrie.touch`)
        self.stamp = 0

    def child(self, bit: int) -> "Optional[_Node[V]]":
        return self.right if bit else self.left

    def set_child(self, bit: int, node: "Optional[_Node[V]]") -> None:
        if bit:
            self.right = node
        else:
            self.left = node


class PrefixTrie(Generic[V]):
    """Path-compressed binary LPM trie: ``(network, prefix_len) -> V``."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node(0, 0)
        self._size = 0
        #: bumped on every successful insert/remove — memoization contract
        self.generation = 0

    # ------------------------------------------------------------ mutation

    def insert(self, network: int, prefix_len: int, value: V) -> Optional[V]:
        """Store ``value`` at the prefix; returns the replaced value (or
        None).  ``network`` must already be masked to ``prefix_len`` bits."""
        self._check_key(network, prefix_len)
        node = self._root
        while True:
            # Invariant: node's prefix is a (proper or equal) prefix of the
            # target, so the walk only ever descends toward it.
            if node.plen == prefix_len:
                previous = node.value if node.has_value else None
                node.value = value
                node.has_value = True
                if previous is None:
                    self._size += 1
                self.generation += 1
                node.stamp = self.generation
                return previous
            bit = _bit_after(network, node.plen)
            child = node.child(bit)
            if child is None:
                leaf: _Node[V] = _Node(network, prefix_len)
                leaf.value = value
                leaf.has_value = True
                node.set_child(bit, leaf)
                self._size += 1
                self.generation += 1
                leaf.stamp = self.generation
                return None
            shared = _common_prefix_len(child.network, network,
                                        min(child.plen, prefix_len))
            if shared == child.plen:
                node = child  # child's prefix still covers the target
                continue
            # The target diverges inside the child's compressed run: split
            # the edge at the shared length.
            mid: _Node[V] = _Node(network & prefix_mask(shared), shared)
            node.set_child(bit, mid)
            mid.set_child(_bit_after(child.network, shared), child)
            if shared == prefix_len:
                mid.value = value
                mid.has_value = True
                valued = mid
            else:
                leaf = _Node(network, prefix_len)
                leaf.value = value
                leaf.has_value = True
                mid.set_child(_bit_after(network, shared), leaf)
                valued = leaf
            self._size += 1
            self.generation += 1
            valued.stamp = self.generation
            return None

    def remove(self, network: int, prefix_len: int) -> Optional[V]:
        """Remove the exact prefix; returns its value or None if absent.
        Structural nodes left value-less with ≤ 1 child are spliced out so
        the node count stays proportional to the stored prefixes."""
        self._check_key(network, prefix_len)
        path: List[Tuple[_Node[V], int]] = []  # (parent, bit taken)
        node = self._root
        while node.plen < prefix_len:
            bit = _bit_after(network, node.plen)
            child = node.child(bit)
            if child is None or child.plen > prefix_len:
                return None
            if child.network != network & prefix_mask(child.plen):
                return None  # diverged inside a compressed run
            path.append((node, bit))
            node = child
        if node.plen != prefix_len or node.network != network or not node.has_value:
            return None
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        self.generation += 1
        # Prune: splice value-less single-child (or leaf) nodes upward.
        while path and not node.has_value and node.plen > 0:
            parent, bit = path.pop()
            if node.left is not None and node.right is not None:
                break  # still a structural branch point
            only = node.left if node.left is not None else node.right
            parent.set_child(bit, only)
            if only is not None:
                break  # spliced the edge; parent unaffected
            # Removed a leaf: the parent may have become redundant too.
            node = parent
        return value

    def touch(self, network: int, prefix_len: int) -> bool:
        """Restamp a stored prefix after an *in-place* mutation of its value.

        Callers that mutate a stored container value directly (e.g. the
        registry adding a port to a prefix's port map) bypass
        :meth:`insert`, so the prefix's revalidation stamp would go stale.
        ``touch`` bumps the trie generation and restamps the prefix — the
        same memoization contract as a real insert. Returns False (and
        changes nothing) if the prefix is not stored.
        """
        self._check_key(network, prefix_len)
        node: Optional[_Node[V]] = self._root
        while node is not None and node.plen < prefix_len:
            if node.network != network & prefix_mask(node.plen):
                return False
            node = node.child(_bit_after(network, node.plen))
        if (node is None or node.plen != prefix_len
                or node.network != network or not node.has_value):
            return False
        self.generation += 1
        node.stamp = self.generation
        return True

    # ------------------------------------------------------------- lookups

    def get(self, network: int, prefix_len: int) -> Optional[V]:
        """Exact-prefix fetch (no LPM semantics)."""
        self._check_key(network, prefix_len)
        node: Optional[_Node[V]] = self._root
        while node is not None and node.plen < prefix_len:
            if node.network != network & prefix_mask(node.plen):
                return None
            node = node.child(_bit_after(network, node.plen))
        if (node is None or node.plen != prefix_len
                or node.network != network or not node.has_value):
            return None
        return node.value

    def lookup(self, addr: int) -> Optional[Tuple[int, int, V]]:
        """Longest-prefix match for a host address: the most specific stored
        prefix covering ``addr`` as ``(network, prefix_len, value)``."""
        best: Optional[Tuple[int, int, V]] = None
        node: Optional[_Node[V]] = self._root
        while node is not None:
            if node.network != addr & prefix_mask(node.plen):
                break  # diverged inside a compressed run
            if node.has_value:
                best = (node.network, node.plen, node.value)  # type: ignore[arg-type]
            if node.plen == _BITS:
                break
            node = node.child(_bit_after(addr, node.plen))
        return best

    def covering(self, addr: int) -> List[Tuple[int, int, V]]:
        """Every stored prefix covering ``addr``, shortest first (the LPM
        winner is the last element)."""
        found: List[Tuple[int, int, V]] = []
        node: Optional[_Node[V]] = self._root
        while node is not None:
            if node.network != addr & prefix_mask(node.plen):
                break
            if node.has_value:
                found.append((node.network, node.plen, node.value))  # type: ignore[arg-type]
            if node.plen == _BITS:
                break
            node = node.child(_bit_after(addr, node.plen))
        return found

    def covering_fingerprint(self, addr: int) -> Tuple[Tuple[int, int, int], ...]:
        """Per-address revalidation token: ``(network, plen, stamp)`` for
        every stored prefix covering ``addr``, shortest first.

        The token changes exactly when the covering *set* changes (a
        covering prefix appears or disappears) or when a covering prefix's
        value is restamped — and never when unrelated prefixes churn. Exact
        tuples (not a sum of stamps) so distinct histories can't collide.
        An address no stored prefix covers yields ``()``, which stays valid
        until a covering prefix is inserted — negative cache entries
        revalidate on the same token.
        """
        found: List[Tuple[int, int, int]] = []
        node: Optional[_Node[V]] = self._root
        while node is not None:
            if node.network != addr & prefix_mask(node.plen):
                break
            if node.has_value:
                found.append((node.network, node.plen, node.stamp))
            if node.plen == _BITS:
                break
            node = node.child(_bit_after(addr, node.plen))
        return tuple(found)

    def covers(self, addr: int) -> bool:
        """Any stored prefix covering ``addr``? (LPM hit/miss without
        materializing the match.)"""
        node: Optional[_Node[V]] = self._root
        while node is not None:
            if node.network != addr & prefix_mask(node.plen):
                return False
            if node.has_value:
                return True
            if node.plen == _BITS:
                return False
            node = node.child(_bit_after(addr, node.plen))
        return False

    # ------------------------------------------------------------ protocol

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Tuple[int, int]) -> bool:
        network, prefix_len = key
        node: Optional[_Node[V]] = self._root
        while node is not None and node.plen < prefix_len:
            if node.network != network & prefix_mask(node.plen):
                return False
            node = node.child(_bit_after(network, node.plen))
        return (node is not None and node.plen == prefix_len
                and node.network == network and node.has_value)

    def __iter__(self) -> Iterator[Tuple[int, int, V]]:
        """Deterministic DFS: ascending (network, prefix_len)."""
        stack: List[_Node[V]] = [self._root]
        while stack:
            node = stack.pop()
            if node.has_value:
                yield (node.network, node.plen, node.value)  # type: ignore[misc]
            # Right pushed first so the left (smaller) subtree pops first.
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def node_count(self) -> int:
        """Total allocated nodes (diagnostics; ≤ 2·len + 1)."""
        count = 0
        stack: List[_Node[V]] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count

    @staticmethod
    def _check_key(network: int, prefix_len: int) -> None:
        if not 0 <= prefix_len <= _BITS:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        if not 0 <= network <= _MAX:
            raise ValueError(f"network out of range: {network:#x}")
        if network & ~prefix_mask(prefix_len) & _MAX:
            raise ValueError(
                f"network {network:#010x} has bits below /{prefix_len}")
