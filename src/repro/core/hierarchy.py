"""Hierarchical edge organisation (§IV-A2).

"Edge clusters are usually organized hierarchically. Clusters in close
vicinity of the users tend to be smaller, with cluster size and performance
growing when further away (i.e., located closer to the 'cloud'). As a
result, a 'non-optimal' (further away, but on the route to the cloud) edge
cluster is much more likely to have the requested service cached or even
running already."

:class:`EdgeHierarchy` captures the parent-toward-cloud relation;
:class:`HierarchicalScheduler` exploits it: when the optimal (nearest) edge
is cold and the latency budget is tight, it walks *up the route to the
cloud* looking for a running instance first, then for a cluster that at
least has the images cached — instead of blindly picking any ready cluster
the way the flat proximity policy does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.scheduler import GlobalScheduler, Placement, ScheduleRequest, estimate_time_to_ready
from repro.core.zones import ZoneMap
from repro.edge.cluster import EdgeCluster


class EdgeHierarchy:
    """Cluster name → parent-cluster name (None = top tier, next hop is the
    cloud itself)."""

    def __init__(self, parents: Optional[Dict[str, Optional[str]]] = None):
        self._parents: Dict[str, Optional[str]] = dict(parents or {})

    def set_parent(self, cluster: str, parent: Optional[str]) -> None:
        if parent is not None and self._creates_cycle(cluster, parent):
            raise ValueError(f"setting parent {parent!r} of {cluster!r} "
                             "creates a cycle")
        self._parents[cluster] = parent

    def _creates_cycle(self, cluster: str, parent: str) -> bool:
        seen = {cluster}
        node: Optional[str] = parent
        while node is not None:
            if node in seen:
                return True
            seen.add(node)
            node = self._parents.get(node)
        return False

    def parent(self, cluster: str) -> Optional[str]:
        return self._parents.get(cluster)

    def ancestors(self, cluster: str) -> List[str]:
        """Parents in order, nearest first (the route toward the cloud)."""
        out: List[str] = []
        node = self._parents.get(cluster)
        while node is not None:
            out.append(node)
            node = self._parents.get(node)
        return out

    def depth(self, cluster: str) -> int:
        return len(self.ancestors(cluster))

    def __contains__(self, cluster: str) -> bool:
        return cluster in self._parents


class HierarchicalScheduler(GlobalScheduler):
    """Proximity at the leaves, hierarchy on the escape path.

    Decision procedure:

    1. optimal = the client's nearest (leaf) cluster, as with proximity;
    2. optimal ready → FAST = optimal;
    3. no budget, or cold start within budget → FAST = optimal
       (on-demand deployment *with waiting*);
    4. budget exceeded: walk optimal's ancestors toward the cloud —
       a. first ancestor with a **running** instance → FAST = it,
          BEST = optimal (*without waiting*, fig. 3);
       b. else first ancestor with the **images cached** → FAST = that
          ancestor (its cold start skips the pull), BEST = optimal;
       c. else any ready cluster anywhere → FAST = nearest ready,
          BEST = optimal;
       d. else FAST = None (toward the cloud), BEST = optimal.
    """

    name = "hierarchical"

    def __init__(self, zones: ZoneMap, hierarchy: EdgeHierarchy):
        self.zones = zones
        self.hierarchy = hierarchy

    def _by_name(self, clusters: Sequence[EdgeCluster]) -> Dict[str, EdgeCluster]:
        return {cluster.name: cluster for cluster in clusters}

    def schedule(self, request: ScheduleRequest) -> Placement:
        if not request.clusters:
            return Placement(fast=None)
        ready_ids = {id(inst.cluster) for inst in self.ready_instances(request)}
        ranked = sorted(request.clusters,
                        key=lambda c: (self.zones.rtt(request.client_zone, c.zone),
                                       id(c) not in ready_ids, c.name))
        optimal = ranked[0]
        if id(optimal) in ready_ids:
            return Placement(fast=optimal)

        budget = request.service.max_initial_delay_s
        if budget is None or estimate_time_to_ready(
                optimal, request.service.spec) <= budget:
            return Placement(fast=optimal)

        by_name = self._by_name(request.clusters)
        spec = request.service.spec
        ancestors = [by_name[name] for name in self.hierarchy.ancestors(optimal.name)
                     if name in by_name]
        # 4a. running instance up the route to the cloud
        for ancestor in ancestors:
            if id(ancestor) in ready_ids:
                return Placement(fast=ancestor, best=optimal)
        # 4b. cached images up the route
        for ancestor in ancestors:
            if ancestor.has_images(spec):
                return Placement(fast=ancestor, best=optimal)
        # 4c. any ready cluster, nearest first
        for cluster in ranked:
            if id(cluster) in ready_ids:
                return Placement(fast=cluster, best=optimal)
        # 4d. give up: cloud serves the first request
        return Placement(fast=None, best=optimal)
