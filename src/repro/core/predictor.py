"""Proactive (predictive) deployment.

The paper's introduction notes that "prediction algorithms could be used to
pre-deploy the required services just in time", and its Discussion closes
with "more so when combined with good prediction for proactive deployment".
This module provides that layer:

* :class:`EwmaArrivalPredictor` — an exponentially-weighted-moving-average
  estimator of each service's inter-request gap (per client zone);
* :class:`ProactiveDeployer` — observes every request the controller sees,
  predicts the next arrival, and — when the instance would have been scaled
  down by then — schedules a just-in-time re-deployment ``lead_time_s``
  before the predicted arrival.

Pre-deployment can never be perfectly accurate ("a hundred percent correct
prediction rate is impossible", §I); mispredictions cost idle instance time,
which the evaluation reports alongside the hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.registry import EdgeService
from repro.core.serviceid import ServiceID
from repro.netsim.addresses import IPv4

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dispatcher import Dispatcher
    from repro.simcore import Simulator


class EwmaArrivalPredictor:
    """Per-service EWMA of inter-request gaps."""

    def __init__(self, alpha: float = 0.4):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._last_seen: Dict[ServiceID, float] = {}
        self._gap: Dict[ServiceID, float] = {}

    def observe(self, service_id: ServiceID, now: float) -> Optional[float]:
        """Record an arrival; return the predicted next-arrival time (or
        ``None`` until two arrivals have been seen)."""
        last = self._last_seen.get(service_id)
        self._last_seen[service_id] = now
        if last is None:
            return None
        gap = now - last
        previous = self._gap.get(service_id)
        if previous is None:
            self._gap[service_id] = gap
        else:
            self._gap[service_id] = self.alpha * gap + (1 - self.alpha) * previous
        return now + self._gap[service_id]

    def predicted_gap(self, service_id: ServiceID) -> Optional[float]:
        return self._gap.get(service_id)


@dataclass
class PredeployStats:
    scheduled: int = 0
    predeployed: int = 0
    already_ready: int = 0
    hits: int = 0  # requests that found a pre-deployed warm instance
    observed: int = 0


class ProactiveDeployer:
    """Hooks into the controller's request stream and pre-deploys.

    ``lead_time_s`` must cover the expected cold start (Docker: ~0.6 s for
    a cached web image) so the instance is up *before* the predicted
    request.
    """

    def __init__(self, sim: "Simulator", dispatcher: "Dispatcher",
                 predictor: Optional[EwmaArrivalPredictor] = None,
                 lead_time_s: float = 1.0,
                 min_gap_s: float = 2.0):
        self.sim = sim
        self.dispatcher = dispatcher
        self.predictor = predictor or EwmaArrivalPredictor()
        self.lead_time_s = lead_time_s
        #: don't bother predicting for gaps shorter than this — the instance
        #: will still be up (idle timeouts exceed it)
        self.min_gap_s = min_gap_s
        self.stats = PredeployStats()

    # Called by the controller for every request to a registered service.
    def observe(self, client: IPv4, service: EdgeService, ready_now: bool) -> None:
        self.stats.observed += 1
        if ready_now:
            self.stats.hits += 1
        predicted = self.predictor.observe(service.service_id, self.sim.now)
        if predicted is None:
            return
        gap = self.predictor.predicted_gap(service.service_id) or 0.0
        if gap < self.min_gap_s:
            return
        fire_at = max(self.sim.now, predicted - self.lead_time_s)
        self.stats.scheduled += 1
        self.sim.schedule(max(0.0, fire_at - self.sim.now), self._predeploy, client, service)

    def _predeploy(self, client: IPv4, service: EdgeService) -> None:
        zone = self.dispatcher.client_zone(client)
        clusters = self.dispatcher.clusters
        if not clusters:
            return
        nearest = min(clusters,
                      key=lambda c: (self.dispatcher.zones.rtt(zone, c.zone), c.name))
        if nearest.is_ready(service.spec):
            self.stats.already_ready += 1
            return
        self.stats.predeployed += 1
        self.sim.trace.emit(self.sim.now, "predictor", "predeploy",
                            {"service": service.name, "cluster": nearest.name})
        self.dispatcher.engine.ensure_available(nearest, service)
