"""The paper's contribution: transparent access to edge services, with
distributed on-demand deployment.

Components (§IV–V of the paper):

* :mod:`repro.core.serviceid` — services are identified by their *cloud*
  address: IP + port (+ protocol);
* :mod:`repro.core.annotate` — service definitions are plain Kubernetes
  Deployment YAML; the platform auto-annotates them (unique worldwide name,
  ``matchLabels``, the ``edge.service`` label, replicas = 0, optional
  ``schedulerName``) and generates the Kubernetes Service definition;
* :mod:`repro.core.registry` — the mobile-edge platform's service registry;
* :mod:`repro.core.flowmemory` — memorized redirection flows with idle
  timeouts (keeps switch timeouts low; drives auto scale-down);
* :mod:`repro.core.scheduler` — Global/Local scheduler interfaces and
  implementations (FAST / BEST placement);
* :mod:`repro.core.deployment` — the three-phase deployment engine
  (Pull / Create / Scale-Up, plus Scale-Down / Remove / Delete) with
  per-phase deadlines and retry/backoff;
* :mod:`repro.core.resilience` — retry policies and the per-cluster
  circuit breaker guarding dispatch against failing edges;
* :mod:`repro.core.dispatcher` — the dispatching algorithm of fig. 7;
* :mod:`repro.core.controller` — the Ryu-style SDN controller application
  tying it all together (proxy-ARP, packet interception, rewrite flows,
  on-demand deployment with and without waiting, cloud fallback).
"""

from repro.core.admin import EdgeAdmin
from repro.core.annotate import AnnotationConfig, annotate_service, load_service_yaml
from repro.core.controller import AttachmentPoint, ControllerConfig, TransparentEdgeController
from repro.core.deployment import (
    DeploymentEngine,
    DeploymentError,
    DeploymentPhaseError,
    DeploymentRecord,
    DeploymentRetriesExhausted,
    DeploymentTimeout,
)
from repro.core.dispatcher import Dispatcher, DispatchResult
from repro.core.flowmemory import FlowMemory, MemorizedFlow
from repro.core.hierarchy import EdgeHierarchy, HierarchicalScheduler
from repro.core.mobility import MobilityManager
from repro.core.predictor import EwmaArrivalPredictor, ProactiveDeployer
from repro.core.registry import EdgeService, ServiceRegistry
from repro.core.resilience import NO_RETRY, BreakerConfig, CircuitBreaker, RetryPolicy
from repro.core.scheduler import (
    GlobalScheduler,
    LoadAwareScheduler,
    Placement,
    ProximityScheduler,
    RoundRobinScheduler,
    ScheduleRequest,
    estimate_time_to_ready,
)
from repro.core.serviceid import ServiceID
from repro.core.zones import ZoneMap

__all__ = [
    "ServiceID",
    "AnnotationConfig",
    "annotate_service",
    "load_service_yaml",
    "EdgeService",
    "ServiceRegistry",
    "FlowMemory",
    "MemorizedFlow",
    "ZoneMap",
    "GlobalScheduler",
    "Placement",
    "ScheduleRequest",
    "ProximityScheduler",
    "RoundRobinScheduler",
    "LoadAwareScheduler",
    "estimate_time_to_ready",
    "RetryPolicy",
    "NO_RETRY",
    "BreakerConfig",
    "CircuitBreaker",
    "DeploymentEngine",
    "DeploymentRecord",
    "DeploymentError",
    "DeploymentPhaseError",
    "DeploymentTimeout",
    "DeploymentRetriesExhausted",
    "Dispatcher",
    "DispatchResult",
    "AttachmentPoint",
    "TransparentEdgeController",
    "ControllerConfig",
    "MobilityManager",
    "EwmaArrivalPredictor",
    "ProactiveDeployer",
    "EdgeHierarchy",
    "HierarchicalScheduler",
    "EdgeAdmin",
]
