"""Per-key cache revalidation — the OVS-revalidator idea in memo form.

Every memo in the control plane used to share one failure mode: validity
was keyed on a *global* generation counter, so one churn event (a service
registered, one client's flow idling out) wholesale-flushed answers for a
million unrelated keys. This module is the fine-grained replacement: a
:class:`RevalidatingCache` keeps each entry alive across global churn and
revalidates it *individually* against a per-key token when — and only
when — the global counter has moved.

The contract with the token provider: ``token_of(key)`` must compare equal
between two points in time **iff** the memoized computation for ``key``
would produce the same answer at both points. Cheap per-key tokens exist
for every memo in this codebase (``ServiceRegistry.generation_of``,
``FlowMemory.version_of``, ``_HostTable.version_of``,
``EdgeCluster.generation``); the cache itself stays agnostic.

This module is the one place allowed to wholesale-``clear()`` a
generation-keyed memo (capacity bound, explicit crash reset) — the REP009
linter rule flags it anywhere else.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

from repro.metrics.perf import PERF

__all__ = ["RevalidatingCache"]

K = TypeVar("K")
V = TypeVar("V")
T = TypeVar("T")


class RevalidatingCache(Generic[K, V, T]):
    """A bounded memo dict whose entries revalidate per key, not per flush.

    Each entry stores the memoized value, the revalidation token under
    which it was computed, and the global generation at which it was last
    known fresh. :meth:`get` then answers in three tiers:

    * global generation unchanged since the entry was last validated →
      O(1) hit; the token is not even recomputed;
    * generation moved → recompute *this key's* token only; if it matches
      the stored one the value is still exact (a **revalidation** — the
      entry is re-stamped and survives), otherwise the entry is dropped
      (an **invalidation**) and the caller recomputes;
    * capacity overflow on :meth:`store` → wholesale flush, the only flush
      this layer performs (plus the explicit :meth:`flush` crash reset).

    A generation bump never clears the cache — that is the point.
    """

    __slots__ = ("_token_of", "_generation_of", "_capacity", "_entries",
                 "hits", "misses", "revalidations", "invalidations", "flushes")

    def __init__(self, token_of: Callable[[K], T],
                 generation_of: Callable[[], int],
                 capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._token_of = token_of
        self._generation_of = generation_of
        self._capacity = capacity
        self._entries: Dict[K, Tuple[V, T, int]] = {}
        #: diagnostics (PERF mirrors the revalidation outcomes globally)
        self.hits = 0
        self.misses = 0
        self.revalidations = 0
        self.invalidations = 0
        self.flushes = 0

    def get(self, key: K) -> Tuple[bool, Optional[V]]:
        """``(True, value)`` when the memo answers, ``(False, None)`` when
        the caller must recompute (absent, or token changed)."""
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
            return (False, None)
        value, token, seen_generation = record
        generation = self._generation_of()
        if generation == seen_generation:
            self.hits += 1
            return (True, value)
        fresh = self._token_of(key)
        if fresh == token:
            # Global churn was irrelevant to this key: keep the entry and
            # re-stamp it so the next lookup is O(1) again.
            self._entries[key] = (value, fresh, generation)
            self.hits += 1
            self.revalidations += 1
            PERF.memo_revalidations += 1
            return (True, value)
        del self._entries[key]
        self.misses += 1
        self.invalidations += 1
        PERF.memo_invalidations += 1
        return (False, None)

    def store(self, key: K, value: V) -> None:
        """Memoize ``value`` under the key's *current* token."""
        if len(self._entries) >= self._capacity:
            self.flush()
        self._entries[key] = (value, self._token_of(key), self._generation_of())

    def flush(self) -> None:
        """Drop everything (capacity bound / crash reset)."""
        if self._entries:
            self.flushes += 1
            PERF.memo_flushes += 1
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "revalidations": self.revalidations,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
        }
