"""Operational management surface over a running platform ("edgectl").

The paper's open-source system is operated by a mobile edge platform
provider: services get registered/deregistered at runtime, clusters go in
and out of maintenance. :class:`EdgeAdmin` wraps those operations with the
bookkeeping each one needs to be *safe* on a live data path:

* deregistering a service also removes its switch flows and memorized
  decisions (otherwise stale rewrites would keep redirecting traffic);
* draining a cluster removes it from scheduling, invalidates every decision
  pointing at it, and scales its instances down — in that order, so no new
  request is dispatched to a cluster that is about to lose its instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.registry import EdgeService
from repro.core.serviceid import ServiceID
from repro.netsim.packet import ETH_TYPE_IP

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import TransparentEdgeController
    from repro.edge.cluster import EdgeCluster
    from repro.simcore import Process


class EdgeAdmin:
    """Admin API bound to a running :class:`TransparentEdgeController`."""

    def __init__(self, controller: "TransparentEdgeController"):
        self.controller = controller
        self._drained: Dict[str, "EdgeCluster"] = {}

    # ------------------------------------------------------------ inspection

    def list_services(self) -> List[dict]:
        """One row per registered service with live instance state."""
        out = []
        for service in self.controller.registry.services():
            instances = []
            for cluster in self._all_clusters():
                for info in cluster.instances(service.spec):
                    instances.append({"cluster": cluster.name,
                                      "endpoint": str(info.endpoint),
                                      "ready": info.ready})
            out.append({
                "service_id": str(service.service_id),
                "name": service.name,
                "instances": instances,
                "memorized_flows": len(
                    self.controller.memory.flows_for_service(service.service_id)),
            })
        return out

    def service_status(self, service_id: ServiceID) -> Optional[dict]:
        service = self.controller.registry.lookup(
            service_id.addr, service_id.port, service_id.protocol)
        if service is None:
            return None
        engine = self.controller.dispatcher.engine
        return {
            "service_id": str(service_id),
            "name": service.name,
            "max_initial_delay_s": service.max_initial_delay_s,
            "deployments": [
                {"cluster": record.cluster, "total_s": record.total_s,
                 "cold": record.cold_start, "phases": dict(record.phases)}
                for record in engine.records_for(service=service.name)
            ],
            "instances": [
                {"cluster": cluster.name, "ready": info.ready,
                 "endpoint": str(info.endpoint)}
                for cluster in self._all_clusters()
                for info in cluster.instances(service.spec)
            ],
        }

    def cluster_status(self) -> List[dict]:
        out = []
        for cluster in self._all_clusters():
            runtime = getattr(cluster, "runtime", None)
            out.append({
                "name": cluster.name,
                "type": cluster.cluster_type,
                "zone": cluster.zone,
                "drained": cluster.name in self._drained,
                "active_flows": self.controller.dispatcher.load.get(cluster.name, 0),
                "ops": dict(cluster.ops),
                "cached_bytes": runtime.cached_layer_bytes() if runtime else None,
            })
        return out

    def failure_counters(self) -> Dict[str, int]:
        """Platform-wide failure/resilience counters (docs/faults.md):
        dispatch failures, deployment retries, breaker opens, cloud
        fallbacks, evictions, injected pull failures/crashes, outages."""
        from repro.metrics.failures import snapshot_failures
        return snapshot_failures(
            controller=self.controller,
            clusters=self._all_clusters()).as_dict()

    def flow_table_snapshot(self) -> List[dict]:
        """Flows currently installed across all switches."""
        out = []
        for datapath in self.controller.manager.datapaths.values():
            for stat in datapath.switch.table.stats():
                out.append({"dpid": datapath.id, **stat,
                            "match": repr(stat["match"])})
        return out

    def _all_clusters(self) -> List["EdgeCluster"]:
        return list(self.controller.dispatcher.clusters) + list(self._drained.values())

    # ------------------------------------------------------------ operations

    def register_service(self, service_id: ServiceID,
                         yaml_text: Optional[str] = None,
                         image: Optional[str] = None,
                         container_port: Optional[int] = None,
                         max_initial_delay_s: Optional[float] = None) -> EdgeService:
        """Register a service on the live platform."""
        return self.controller.registry.register(
            service_id, yaml_text=yaml_text, image=image,
            container_port=container_port,
            max_initial_delay_s=max_initial_delay_s)

    def deregister_service(self, service_id: ServiceID,
                           undeploy: bool = True) -> Optional["Process"]:
        """Deregister + clean the data path; optionally remove instances.

        Returns the undeploy process (or None). After this returns, new
        packets to the address route like any unregistered (cloud) traffic.
        """
        controller = self.controller
        service = controller.registry.deregister(service_id)
        if service is None:
            return None
        # forget every memorized decision for the service
        for flow in controller.memory.flows_for_service(service_id):
            controller.memory.forget(flow.client, service_id)
        # delete the redirection flows (upstream+downstream) on all switches
        self._delete_service_flows(service_id)
        if not undeploy:
            return None

        engine = controller.dispatcher.engine
        sim = controller.sim

        def undeploy_proc():
            for cluster in self._all_clusters():
                if cluster.is_created(service.spec):
                    yield engine.remove(cluster, service)

        return sim.spawn(undeploy_proc(), name=f"undeploy:{service.name}")

    def _delete_service_flows(self, service_id: ServiceID) -> None:
        for datapath in self.controller.manager.datapaths.values():
            parser, ofp = datapath.ofproto_parser, datapath.ofproto
            upstream = parser.OFPMatch(eth_type=ETH_TYPE_IP, ip_proto=6,
                                       ipv4_dst=service_id.addr,
                                       tcp_dst=service_id.port)
            datapath.send_msg(parser.OFPFlowMod(datapath, match=upstream,
                                                command=ofp.OFPFC_DELETE))
            # downstream flows rewrite FROM instance endpoints; they carry
            # the same cookies but matching them generically is not possible
            # without endpoint knowledge — use the memorized endpoints.
            # (Memorized flows were captured before forgetting; conservative
            # fallback: downstream entries expire via their idle timeout.)

    def drain_cluster(self, name: str) -> Optional["Process"]:
        """Take a cluster out of service (maintenance).

        1. remove it from the Dispatcher's candidate list (no new FAST/BEST
           placements),
        2. invalidate memorized flows pointing at it and their switch rules,
        3. scale down everything it runs.
        """
        controller = self.controller
        dispatcher = controller.dispatcher
        cluster = next((c for c in dispatcher.clusters if c.name == name), None)
        if cluster is None:
            return None
        dispatcher.clusters.remove(cluster)
        self._drained[name] = cluster

        for flow in list(controller.memory._flows.values()):
            if flow.cluster is cluster:
                controller.memory.forget(flow.client, flow.service_id)
                self._delete_service_flows(flow.service_id)

        engine = dispatcher.engine
        sim = controller.sim

        def drain_proc():
            for service in controller.registry.services():
                if cluster.is_ready(service.spec):
                    yield engine.scale_down(cluster, service)

        controller.log("cluster-drained", cluster=name)
        return sim.spawn(drain_proc(), name=f"drain:{name}")

    def undrain_cluster(self, name: str) -> bool:
        """Return a drained cluster to scheduling."""
        cluster = self._drained.pop(name, None)
        if cluster is None:
            return False
        self.controller.dispatcher.clusters.append(cluster)
        self.controller.log("cluster-undrained", cluster=name)
        return True
