"""Flow-cookie encoding for controller warm-restart reconciliation.

Every FlowMod the controller installs carries a nonzero cookie encoding
*(controller epoch, flow kind, plan id)*:

* **epoch** — the controller's incarnation counter, bumped on every warm
  restart. A resyncing controller can tell its own freshly-installed flows
  (current epoch) from survivors of a previous incarnation (older epoch)
  without any other state.
* **kind** — what the flow is for: a service redirection pair, a plain L3
  route, or the table-miss entry. Reconciliation treats them differently
  (service flows are adopted or GC'd against live instances; route and
  miss entries age out or get replaced on their own).
* **plan id** — a per-epoch sequence number; all flows of one redirection
  install (both directions, every hop) share it, so the cookie identifies
  the *install*, which is what load bookkeeping counts.

The layout leaves the low 28 bits for the plan id (~268M installs per
epoch), 4 bits for the kind, and the rest for the epoch — cookies are
plain Python ints, so the epoch never wraps.
"""

from __future__ import annotations

EPOCH_SHIFT = 32
KIND_SHIFT = 28
KIND_MASK = 0xF
PLAN_MASK = (1 << KIND_SHIFT) - 1

#: flow kinds
KIND_SERVICE = 1  # redirection pair installed by _install_and_release
KIND_ROUTE = 2  # plain L3 route flow
KIND_MISS = 3  # the priority-0 table-miss entry


def make_cookie(epoch: int, kind: int, plan_id: int) -> int:
    """Encode *(epoch, kind, plan id)* into one nonzero cookie."""
    if epoch < 1:
        raise ValueError(f"epoch must be >= 1, got {epoch!r}")
    if not 1 <= kind <= KIND_MASK:
        raise ValueError(f"kind must be in [1, {KIND_MASK}], got {kind!r}")
    if not 0 <= plan_id <= PLAN_MASK:
        raise ValueError(f"plan id out of range: {plan_id!r}")
    return (epoch << EPOCH_SHIFT) | (kind << KIND_SHIFT) | plan_id


def cookie_epoch(cookie: int) -> int:
    """The controller incarnation that installed this flow."""
    return cookie >> EPOCH_SHIFT


def cookie_kind(cookie: int) -> int:
    """The flow kind (``KIND_SERVICE`` / ``KIND_ROUTE`` / ``KIND_MISS``)."""
    return (cookie >> KIND_SHIFT) & KIND_MASK


def cookie_plan(cookie: int) -> int:
    """The per-epoch install sequence number."""
    return cookie & PLAN_MASK


def is_controller_cookie(cookie: int) -> bool:
    """True for cookies this controller family stamped (nonzero, known
    kind). Zero-cookie flows were installed by something else."""
    return cookie != 0 and cookie_kind(cookie) in (KIND_SERVICE, KIND_ROUTE, KIND_MISS)
