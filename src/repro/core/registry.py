"""The mobile-edge platform's service registry (§II).

Services are registered with the platform by their cloud address (IP +
port); the network then intercepts any request from a client to a registered
service. Registration runs the annotation pipeline once and stores the
resulting cluster-neutral spec.

At web scale the registered address space is cloud-shaped — millions of
perceived-cloud addresses, whole provider prefixes — so the address-space
index is a :class:`~repro.core.trie.PrefixTrie` (longest-prefix-match,
O(address bits) per decision) rather than a flat set:

* exact identity lookups (``lookup``) stay O(1) on the ServiceID dict — the
  hot packet-in decision for host-registered services never walks the trie;
* ``is_registered_address`` / ``covering_prefixes`` / ``lookup_prefix``
  answer from the trie, which also admits *subnet-registered* services
  (``prefix_len < 32``): one registration covers every address of a cloud
  prefix, the LPM winner takes precedence.

Churn contract: :attr:`ServiceRegistry.generation` bumps on **every**
register/deregister.  Memoized consumers (the controller's slow-path caches,
``repro.verify`` incremental snapshots) must revalidate against it — see
docs/registry.md.  :meth:`ServiceRegistry.generation_of` refines the global
counter into a *per-key* revalidation token, so a memo entry for one
service identity survives churn on every other one (docs/performance.md,
"Revalidation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.annotate import AnnotatedService, AnnotationConfig, annotate_service, minimal_yaml
from repro.core.serviceid import ServiceID
from repro.core.trie import PrefixTrie, prefix_mask
from repro.edge.cluster import DeploymentSpec
from repro.netsim.addresses import IPv4

#: key of a service within one trie node's per-address map
_PortKey = Tuple[int, str]

#: per-key revalidation token (see :meth:`ServiceRegistry.generation_of`):
#: the exact identity's stamp plus the covering-prefix fingerprint
RegistryToken = Tuple[int, Tuple[Tuple[int, int, int], ...]]

#: bound on the per-identity token memo inside :meth:`generation_of` —
#: large enough that the controller's revalidation traffic never overflows
#: it in practice, small enough to cap worst-case growth from probing
#: arbitrary (unregistered) destinations
_TOKEN_CACHE_CAPACITY = 65_536


@dataclass
class EdgeService:
    """A registered edge service: identity + annotated deployment spec."""

    service_id: ServiceID
    annotated: AnnotatedService
    #: latency budget for the *initial* request; when a cold deployment is
    #: predicted to exceed it and an alternative instance exists, the
    #: scheduler picks On-Demand Deployment *without* waiting (§IV-A2).
    max_initial_delay_s: Optional[float] = None
    #: address-space width of the registration: 32 for a host service, less
    #: for a subnet-registered (cloud-prefix) service whose single identity
    #: covers every address in the prefix
    prefix_len: int = 32

    @property
    def spec(self) -> DeploymentSpec:
        return self.annotated.spec

    @property
    def name(self) -> str:
        return self.annotated.unique_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EdgeService {self.service_id} -> {self.name}>"


class ServiceRegistry:
    """ServiceID -> EdgeService lookup used by the controller's fast path."""

    def __init__(self, annotation_config: Optional[AnnotationConfig] = None):
        self.annotation_config = annotation_config or AnnotationConfig()
        self._services: Dict[ServiceID, EdgeService] = {}
        #: address-space index: prefix -> {(port, protocol) -> service};
        #: host registrations live at /32, subnet registrations wider
        self._trie: PrefixTrie[Dict[_PortKey, EdgeService]] = PrefixTrie()
        #: bumped on every register/deregister; memoized lookup results
        #: (controller slow-path caches) are valid only while it is unchanged
        self.generation = 0
        #: per-identity stamps — the global generation's value at each exact
        #: ServiceID's last register/deregister; feeds :meth:`generation_of`
        self._id_stamps: Dict[ServiceID, int] = {}
        #: generation-gated memo over :meth:`generation_of`: a token is a
        #: pure function of registry state and the global counter moves on
        #: every mutation, so a cached token is valid exactly while the
        #: generation it was computed under is still current. The controller
        #: probes the same identity several times per packet-in (service
        #: memo + install-plan epoch); this keeps that to one trie walk.
        #: Keyed on the plain ``(addr_value, port, protocol)`` tuple rather
        #: than a ServiceID: int/str tuple hashing is C-speed and skips a
        #: dataclass construction on the packet-in hot path.
        self._token_cache: Dict[Tuple[int, int, str],
                                Tuple[int, RegistryToken]] = {}

    def register(
        self,
        service_id: ServiceID,
        yaml_text: Optional[str] = None,
        image: Optional[str] = None,
        container_port: Optional[int] = None,
        max_initial_delay_s: Optional[float] = None,
        prefix_len: int = 32,
    ) -> EdgeService:
        """Register a service from YAML (or from just an image name)."""
        if yaml_text is None:
            if image is None:
                raise ValueError("register needs yaml_text or an image")
            yaml_text = minimal_yaml(image, container_port)
        annotated = annotate_service(yaml_text, service_id, self.annotation_config)
        service = EdgeService(service_id=service_id, annotated=annotated,
                              max_initial_delay_s=max_initial_delay_s,
                              prefix_len=prefix_len)
        return self.register_service(service)

    def register_service(self, service: EdgeService) -> EdgeService:
        """Register an already-annotated service (bulk/synthetic path: the
        churn workloads and benchmarks skip the per-service YAML pipeline)."""
        service_id = service.service_id
        if service_id in self._services:
            raise ValueError(f"service {service_id} already registered")
        network = self._network_of(service_id.addr, service.prefix_len)
        ports = self._trie.get(network, service.prefix_len)
        key = (service_id.port, service_id.protocol)
        if ports is not None and key in ports:
            raise ValueError(
                f"{service_id.protocol}:{service_id.port} already registered "
                f"on {IPv4(network)}/{service.prefix_len}")
        self._services[service_id] = service
        if ports is None:
            self._trie.insert(network, service.prefix_len, {key: service})
        else:
            ports[key] = service
            # In-place port-map mutation bypasses the trie's insert path, so
            # restamp the prefix explicitly (per-key revalidation contract).
            self._trie.touch(network, service.prefix_len)
        self.generation += 1
        self._id_stamps[service_id] = self.generation
        return service

    def deregister(self, service_id: ServiceID,
                   prefix_len: Optional[int] = None) -> Optional[EdgeService]:
        service = self._services.get(service_id)
        if service is None:
            return None
        if prefix_len is not None and prefix_len != service.prefix_len:
            return None
        del self._services[service_id]
        network = self._network_of(service_id.addr, service.prefix_len)
        ports = self._trie.get(network, service.prefix_len)
        if ports is not None:
            ports.pop((service_id.port, service_id.protocol), None)
            if not ports:
                self._trie.remove(network, service.prefix_len)
            else:
                self._trie.touch(network, service.prefix_len)
        self.generation += 1
        self._id_stamps[service_id] = self.generation
        return service

    # ------------------------------------------------------------- lookups

    def lookup(self, addr: IPv4, port: int, protocol: str = "TCP") -> Optional[EdgeService]:
        """Exact-identity lookup (host-registered services): O(1)."""
        return self._services.get(ServiceID(addr, port, protocol))

    def lookup_prefix(self, addr: IPv4, port: int,
                      protocol: str = "TCP") -> Optional[EdgeService]:
        """The packet-in decision: exact host registration first (O(1)),
        else the longest registered prefix covering ``addr`` that serves
        ``(port, protocol)``."""
        exact = self._services.get(ServiceID(addr, port, protocol))
        if exact is not None:
            return exact
        if not self._trie:
            return None
        key = (port, protocol)
        # Longest match wins: walk the covering chain most-specific first.
        for _, _, ports in reversed(self._trie.covering(addr.value)):
            service = ports.get(key)
            if service is not None:
                return service
        return None

    def generation_of(self, addr: IPv4, port: int,
                      protocol: str = "TCP") -> RegistryToken:
        """Per-key revalidation token for the ``lookup_prefix`` decision.

        The token compares equal across two points in time iff every
        registry mutation in between was irrelevant to this identity: the
        exact ServiceID stamp changes on register/deregister of the host
        identity, and the trie's covering fingerprint changes when a
        covering prefix appears, disappears, or has its port map touched.
        A memoized ``lookup_prefix(addr, port, protocol)`` answer —
        positive *or* negative — is therefore still correct while the token
        is unchanged, no matter how many unrelated services churned. An
        identity with no registration and no covering prefixes yields
        ``(0, ())``, the token a negative cache entry revalidates against.
        """
        key = (addr.value, port, protocol)
        cached = self._token_cache.get(key)
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        sid = ServiceID(addr, port, protocol)
        token: RegistryToken = (self._id_stamps.get(sid, 0),
                                self._trie.covering_fingerprint(addr.value))
        if len(self._token_cache) >= _TOKEN_CACHE_CAPACITY:
            # Capacity bound, not a generation shortcut: entries revalidate
            # per key against the generation they were computed under.
            self._token_cache.clear()  # repro: noqa[REP009]
        self._token_cache[key] = (self.generation, token)
        return token

    def is_registered_address(self, addr: IPv4) -> bool:
        """Any service registered on this IP (for proxy-ARP)?  True for any
        address inside a subnet-registered prefix."""
        return self._trie.covers(addr.value)

    def covering_prefixes(self, addr: IPv4) -> List[Tuple[IPv4, int]]:
        """Registered prefixes covering ``addr``, shortest first (the LPM
        winner — what `lookup_prefix` prefers — is last)."""
        return [(IPv4(network), plen)
                for network, plen, _ in self._trie.covering(addr.value)]

    def services(self) -> List[EdgeService]:
        return list(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, service_id: ServiceID) -> bool:
        return service_id in self._services

    @staticmethod
    def _network_of(addr: IPv4, prefix_len: int) -> int:
        network = addr.value & prefix_mask(prefix_len)
        if network != addr.value:
            raise ValueError(
                f"service address {addr} has host bits below /{prefix_len}")
        return network
