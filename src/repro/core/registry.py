"""The mobile-edge platform's service registry (§II).

Services are registered with the platform by their cloud address (IP +
port); the network then intercepts any request from a client to a registered
service. Registration runs the annotation pipeline once and stores the
resulting cluster-neutral spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.annotate import AnnotatedService, AnnotationConfig, annotate_service, minimal_yaml
from repro.core.serviceid import ServiceID
from repro.edge.cluster import DeploymentSpec
from repro.netsim.addresses import IPv4


@dataclass
class EdgeService:
    """A registered edge service: identity + annotated deployment spec."""

    service_id: ServiceID
    annotated: AnnotatedService
    #: latency budget for the *initial* request; when a cold deployment is
    #: predicted to exceed it and an alternative instance exists, the
    #: scheduler picks On-Demand Deployment *without* waiting (§IV-A2).
    max_initial_delay_s: Optional[float] = None

    @property
    def spec(self) -> DeploymentSpec:
        return self.annotated.spec

    @property
    def name(self) -> str:
        return self.annotated.unique_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EdgeService {self.service_id} -> {self.name}>"


class ServiceRegistry:
    """ServiceID -> EdgeService lookup used by the controller's fast path."""

    def __init__(self, annotation_config: Optional[AnnotationConfig] = None):
        self.annotation_config = annotation_config or AnnotationConfig()
        self._services: Dict[ServiceID, EdgeService] = {}
        #: secondary index: registered addresses (for proxy-ARP decisions)
        self._addresses: Dict[IPv4, int] = {}
        #: bumped on every register/deregister; memoized lookup results
        #: (controller slow-path caches) are valid only while it is unchanged
        self.generation = 0

    def register(
        self,
        service_id: ServiceID,
        yaml_text: Optional[str] = None,
        image: Optional[str] = None,
        container_port: Optional[int] = None,
        max_initial_delay_s: Optional[float] = None,
    ) -> EdgeService:
        """Register a service from YAML (or from just an image name)."""
        if service_id in self._services:
            raise ValueError(f"service {service_id} already registered")
        if yaml_text is None:
            if image is None:
                raise ValueError("register needs yaml_text or an image")
            yaml_text = minimal_yaml(image, container_port)
        annotated = annotate_service(yaml_text, service_id, self.annotation_config)
        service = EdgeService(service_id=service_id, annotated=annotated,
                              max_initial_delay_s=max_initial_delay_s)
        self._services[service_id] = service
        self._addresses[service_id.addr] = self._addresses.get(service_id.addr, 0) + 1
        self.generation += 1
        return service

    def deregister(self, service_id: ServiceID) -> Optional[EdgeService]:
        service = self._services.pop(service_id, None)
        if service is not None:
            self.generation += 1
            remaining = self._addresses.get(service_id.addr, 1) - 1
            if remaining <= 0:
                self._addresses.pop(service_id.addr, None)
            else:
                self._addresses[service_id.addr] = remaining
        return service

    # ------------------------------------------------------------- lookups

    def lookup(self, addr: IPv4, port: int, protocol: str = "TCP") -> Optional[EdgeService]:
        return self._services.get(ServiceID(addr, port, protocol))

    def is_registered_address(self, addr: IPv4) -> bool:
        """Any service registered on this IP (for proxy-ARP)?"""
        return addr in self._addresses

    def services(self) -> List[EdgeService]:
        return list(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, service_id: ServiceID) -> bool:
        return service_id in self._services
