"""FlowMemory: the controller-side mirror of installed redirection flows (§V).

Why it exists (two purposes, per the paper):

1. Switch flow entries can use *low* idle timeouts — when a re-miss occurs,
   the controller answers from FlowMemory without re-dispatching (no
   scheduler run, no deployment check), so re-installing the flow is cheap.
2. FlowMemory entries have their *own* (longer) idle timeout; when the last
   flow referencing a service instance expires, the controller may
   automatically scale the idle instance down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.serviceid import ServiceID
from repro.edge.cluster import Endpoint
from repro.netsim.addresses import IPv4

if TYPE_CHECKING:  # pragma: no cover
    from repro.edge.cluster import EdgeCluster
    from repro.simcore import Simulator

#: (client address, service identity)
FlowKey = Tuple[IPv4, ServiceID]


@dataclass
class MemorizedFlow:
    """One remembered redirection: client × service → chosen instance."""

    key: FlowKey
    cluster: "EdgeCluster"
    endpoint: Endpoint
    created_at: float
    last_used: float
    #: packets seen via this memorized decision (incl. re-misses answered)
    uses: int = 0

    @property
    def client(self) -> IPv4:
        return self.key[0]

    @property
    def service_id(self) -> ServiceID:
        return self.key[1]


class FlowMemory:
    """Idle-timeout-governed map of memorized flows.

    ``on_idle(flow, still_referenced)`` fires when an entry expires;
    ``still_referenced`` is True when other live entries still point at the
    same (cluster, endpoint) — the scale-down hook acts only when False.
    """

    def __init__(self, sim: "Simulator", idle_timeout_s: float = 60.0,
                 on_idle: Optional[Callable[[MemorizedFlow, bool], None]] = None):
        if idle_timeout_s <= 0:
            raise ValueError("idle timeout must be positive")
        self.sim = sim
        self.idle_timeout_s = idle_timeout_s
        self.on_idle = on_idle
        self._flows: Dict[FlowKey, MemorizedFlow] = {}
        #: bumped on every mutation (remember/forget/clear/expiry) — lookups
        #: only *touch*; coarse memoized consumers are valid only while the
        #: generation is unchanged
        self.generation = 0
        #: per-key stamps — the global generation's value at each flow key's
        #: last mutation; :meth:`version_of` turns them into a revalidation
        #: token so idle-expiry of one client's flow no longer invalidates
        #: every other client's memoized install plan
        self._versions: Dict[FlowKey, int] = {}
        #: bumped by :meth:`clear`, which wipes the per-key stamps; folding
        #: it into the token keeps a cleared key distinguishable from its
        #: pre-clear self (no ABA through remember → clear)
        self._clear_count = 0
        #: diagnostics
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    # --------------------------------------------------------------- access

    def lookup(self, client: IPv4, service_id: ServiceID) -> Optional[MemorizedFlow]:
        """Look up and *touch* (refresh idle timer of) a memorized flow."""
        flow = self._flows.get((client, service_id))
        if flow is None:
            self.misses += 1
            return None
        flow.last_used = self.sim.now
        flow.uses += 1
        self.hits += 1
        return flow

    def peek(self, client: IPv4, service_id: ServiceID) -> Optional[MemorizedFlow]:
        """Lookup without refreshing the idle timer (diagnostics)."""
        return self._flows.get((client, service_id))

    def remember(self, client: IPv4, service_id: ServiceID,
                 cluster: "EdgeCluster", endpoint: Endpoint) -> MemorizedFlow:
        key = (client, service_id)
        flow = MemorizedFlow(key=key, cluster=cluster, endpoint=endpoint,
                             created_at=self.sim.now, last_used=self.sim.now)
        fresh = key not in self._flows
        self._flows[key] = flow
        self.generation += 1
        self._versions[key] = self.generation
        if fresh:
            self.sim.schedule(self.idle_timeout_s, self._idle_check, key)
        return flow

    def forget(self, client: IPv4, service_id: ServiceID) -> Optional[MemorizedFlow]:
        key = (client, service_id)
        flow = self._flows.pop(key, None)
        if flow is not None:
            self.generation += 1
            self._versions[key] = self.generation
        return flow

    def clear(self) -> None:
        """Drop every memorized flow (no on_idle callbacks fire)."""
        self._flows.clear()
        self.generation += 1
        self._clear_count += 1
        self._versions.clear()

    def forget_endpoint(self, endpoint: Endpoint) -> int:
        """Drop every flow pointing at ``endpoint`` (instance went away)."""
        victims = [key for key, flow in self._flows.items() if flow.endpoint == endpoint]
        for key in victims:
            del self._flows[key]
        if victims:
            self.generation += 1
            for key in victims:
                self._versions[key] = self.generation
        return len(victims)

    def version_of(self, client: IPv4, service_id: ServiceID) -> Tuple[int, int]:
        """Per-key revalidation token for ``(client, service_id)``.

        Unchanged iff this key saw no remember/forget/expiry (and no
        global clear) since the token was taken — churn on every other
        client/service leaves it untouched. This is what fixed the
        idle-expiry invalidation storm: one client's flow expiring used to
        bump the global generation and cold every memoized install plan.
        """
        return (self._clear_count, self._versions.get((client, service_id), 0))

    # -------------------------------------------------------------- timeouts

    def _idle_check(self, key: FlowKey) -> None:
        flow = self._flows.get(key)
        if flow is None:
            return
        deadline = flow.last_used + self.idle_timeout_s
        if self.sim.now < deadline - 1e-12:
            self.sim.schedule(max(0.0, deadline - self.sim.now), self._idle_check, key)
            return
        del self._flows[key]
        self.generation += 1
        self._versions[key] = self.generation
        self.expirations += 1
        if self.on_idle is not None:
            still_referenced = any(
                other.endpoint == flow.endpoint and other.cluster is flow.cluster
                for other in self._flows.values())
            self.on_idle(flow, still_referenced)

    # --------------------------------------------------------------- queries

    def flows_for_service(self, service_id: ServiceID) -> List[MemorizedFlow]:
        return [flow for flow in self._flows.values() if flow.service_id == service_id]

    def flows_of(self, client: IPv4) -> List[MemorizedFlow]:
        """Every memorized flow belonging to ``client`` (handover support)."""
        return [flow for flow in self._flows.values() if flow.client == client]

    def flows_for_endpoint(self, endpoint: Endpoint) -> List[MemorizedFlow]:
        return [flow for flow in self._flows.values() if flow.endpoint == endpoint]

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows
