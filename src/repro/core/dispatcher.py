"""The Dispatcher: the controller's decision loop (fig. 7).

For a packet with no memorized flow, the Dispatcher

1. gathers the list of existing and running instances of the requested
   service across all clusters,
2. passes it (with the client's location) to the Global Scheduler,
3. receives the FAST choice (current request) and BEST choice (future
   requests),
4. ensures both chosen instances are created and scaled up — waiting for
   FAST, running BEST in the background,
5. returns where to redirect the client's request (or "toward the cloud").

It also tracks clients' current locations and per-cluster load, and feeds
the Scheduler with that system state (§IV-B: the Dispatcher "feeds the
Scheduler with information about the current system state").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.deployment import DeploymentEngine
from repro.core.flowmemory import FlowMemory
from repro.core.registry import EdgeService
from repro.core.scheduler import GlobalScheduler, Placement, ScheduleRequest
from repro.core.zones import ZoneMap
from repro.edge.cluster import EdgeCluster, Endpoint, InstanceInfo
from repro.netsim.addresses import IPv4

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Process, Simulator


@dataclass
class DispatchResult:
    """Where the current request goes."""

    #: ready endpoint to redirect to; None → forward toward the cloud
    endpoint: Optional[Endpoint]
    cluster: Optional[EdgeCluster]
    #: a BEST deployment was started in the background (without-waiting mode)
    background_best: bool = False
    #: the request waited for an on-demand deployment
    waited: bool = False

    @property
    def toward_cloud(self) -> bool:
        return self.endpoint is None


class Dispatcher:
    """Implements the fig. 7 flow chart against the cluster inventory."""

    def __init__(
        self,
        sim: "Simulator",
        clusters: List[EdgeCluster],
        scheduler: GlobalScheduler,
        engine: DeploymentEngine,
        memory: FlowMemory,
        zones: Optional[ZoneMap] = None,
    ):
        self.sim = sim
        self.clusters = list(clusters)
        self.scheduler = scheduler
        self.engine = engine
        self.memory = memory
        self.zones = zones if zones is not None else ZoneMap()
        #: client ip -> zone (current location tracking)
        self._client_locations: Dict[IPv4, str] = {}
        #: cluster name -> active flow count (load signal for schedulers)
        self.load: Dict[str, int] = {}
        #: diagnostics
        self.dispatches = 0
        self.cloud_fallbacks = 0
        self.without_waiting = 0

    # ----------------------------------------------------------- locations

    def observe_client(self, client: IPv4) -> str:
        zone = self.zones.zone_of(client)
        self._client_locations[client] = zone
        return zone

    def client_zone(self, client: IPv4) -> str:
        return self._client_locations.get(client) or self.zones.zone_of(client)

    # ------------------------------------------------------------ inventory

    def gather_instances(self, service: EdgeService) -> List[InstanceInfo]:
        """The "gather list of existing+running instances" box of fig. 7."""
        instances: List[InstanceInfo] = []
        for cluster in self.clusters:
            instances.extend(cluster.instances(service.spec))
        return instances

    def note_flow_installed(self, cluster: EdgeCluster) -> None:
        self.load[cluster.name] = self.load.get(cluster.name, 0) + 1

    def note_flow_removed(self, cluster: EdgeCluster) -> None:
        count = self.load.get(cluster.name, 0)
        self.load[cluster.name] = max(0, count - 1)

    # -------------------------------------------------------------- dispatch

    def dispatch(self, client: IPv4, service: EdgeService) -> "Process":
        """Run the full decision (a process yielding a DispatchResult)."""
        return self.sim.spawn(self._dispatch_proc(client, service),
                              name=f"dispatch:{client}:{service.name}")

    def _dispatch_proc(self, client: IPv4, service: EdgeService):
        self.dispatches += 1
        zone = self.observe_client(client)
        # Gathering existing+running instances costs real API round trips to
        # every cluster (fig. 7's first box) — the cost FlowMemory avoids on
        # re-misses. The queries run concurrently; the slowest one gates.
        if self.clusters:
            yield self.sim.timeout(max(c.inventory_query_s for c in self.clusters))
        instances = self.gather_instances(service)
        placement: Placement = self.scheduler.schedule(ScheduleRequest(
            service=service,
            client_zone=zone,
            instances=instances,
            clusters=self.clusters,
            load=dict(self.load),
        ))

        # BEST: deploy in the background for future requests (fig. 3).
        background_best = False
        if placement.best is not None:
            background_best = True
            self.without_waiting += 1
            self.engine.ensure_available(placement.best, service)

        if placement.fast is None:
            self.cloud_fallbacks += 1
            return DispatchResult(endpoint=None, cluster=None,
                                  background_best=background_best)

        fast = placement.fast
        waited = not fast.is_ready(service.spec)
        endpoint = yield self.engine.ensure_available(fast, service)
        return DispatchResult(endpoint=endpoint, cluster=fast,
                              background_best=background_best, waited=waited)
