"""The Dispatcher: the controller's decision loop (fig. 7).

For a packet with no memorized flow, the Dispatcher

1. gathers the list of existing and running instances of the requested
   service across all clusters,
2. passes it (with the client's location) to the Global Scheduler,
3. receives the FAST choice (current request) and BEST choice (future
   requests),
4. ensures both chosen instances are created and scaled up — waiting for
   FAST, running BEST in the background,
5. returns where to redirect the client's request (or "toward the cloud").

It also tracks clients' current locations and per-cluster load, and feeds
the Scheduler with that system state (§IV-B: the Dispatcher "feeds the
Scheduler with information about the current system state").

Resilience: each cluster sits behind a :class:`~repro.core.resilience.
CircuitBreaker`. Deployment failures (typed ``DeploymentError`` from the
engine) feed the breaker; after ``failure_threshold`` consecutive failures
the cluster is excluded from scheduling until its probation probe succeeds.
A failed FAST deployment never raises out of the dispatch — the result
degrades to "toward the cloud", which is the transparent fallback the paper's
architecture gets for free (the client addressed the cloud all along).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.deployment import DeploymentEngine, DeploymentError
from repro.core.flowmemory import FlowMemory
from repro.core.registry import EdgeService
from repro.core.resilience import BreakerConfig, CircuitBreaker
from repro.core.scheduler import GlobalScheduler, Placement, ScheduleRequest
from repro.core.zones import ZoneMap
from repro.edge.cluster import EdgeCluster, Endpoint, InstanceInfo
from repro.netsim.addresses import IPv4
from repro.simcore.errors import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Process, Simulator


@dataclass
class DispatchResult:
    """Where the current request goes."""

    #: ready endpoint to redirect to; None → forward toward the cloud
    endpoint: Optional[Endpoint]
    cluster: Optional[EdgeCluster]
    #: a BEST deployment was started in the background (without-waiting mode)
    background_best: bool = False
    #: the request waited for an on-demand deployment
    waited: bool = False
    #: the FAST deployment failed and the request degraded toward the cloud
    deploy_failed: bool = False

    @property
    def toward_cloud(self) -> bool:
        return self.endpoint is None


class Dispatcher:
    """Implements the fig. 7 flow chart against the cluster inventory."""

    def __init__(
        self,
        sim: "Simulator",
        clusters: List[EdgeCluster],
        scheduler: GlobalScheduler,
        engine: DeploymentEngine,
        memory: FlowMemory,
        zones: Optional[ZoneMap] = None,
        breaker_config: Optional[BreakerConfig] = None,
        use_breaker: bool = True,
    ):
        self.sim = sim
        self.clusters = list(clusters)
        self.scheduler = scheduler
        self.engine = engine
        self.memory = memory
        self.zones = zones if zones is not None else ZoneMap()
        #: circuit-breaker health tracking (one breaker per cluster)
        self.use_breaker = use_breaker
        self.breaker_config = (breaker_config if breaker_config is not None
                               else BreakerConfig())
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: ensure-processes already feeding a breaker (avoid double counting
        #: when coalesced dispatches share one deployment)
        self._watched: Dict[int, None] = {}
        #: client ip -> zone (current location tracking)
        self._client_locations: Dict[IPv4, str] = {}
        #: cluster name -> active flow count (load signal for schedulers)
        self.load: Dict[str, int] = {}
        #: diagnostics
        self.dispatches = 0
        self.cloud_fallbacks = 0
        self.without_waiting = 0
        #: FAST deployments that failed and degraded toward the cloud
        self.deploy_failures = 0

    # ----------------------------------------------------------- locations

    def observe_client(self, client: IPv4) -> str:
        zone = self.zones.zone_of(client)
        self._client_locations[client] = zone
        return zone

    def client_zone(self, client: IPv4) -> str:
        return self._client_locations.get(client) or self.zones.zone_of(client)

    def set_client_zone(self, client: IPv4, zone: str) -> None:
        """Authoritatively place ``client`` in ``zone`` (handover): updates
        both the ZoneMap assignment and the tracked current location."""
        self.zones.assign_client(client, zone)
        self._client_locations[client] = zone

    # --------------------------------------------------------------- health

    def breaker_for(self, cluster: EdgeCluster) -> CircuitBreaker:
        breaker = self._breakers.get(cluster.name)
        if breaker is None:
            breaker = CircuitBreaker(self.sim, cluster.name, self.breaker_config)
            self._breakers[cluster.name] = breaker
        return breaker

    @property
    def breaker_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    def schedulable_clusters(self) -> List[EdgeCluster]:
        """Clusters whose breaker currently admits a dispatch.

        Half-open breakers claim their single probation slot here; the slot
        is released again for every candidate the scheduler did not pick."""
        if not self.use_breaker:
            return list(self.clusters)
        return [c for c in self.clusters if self.breaker_for(c).allow()]

    def _record_outcome(self, cluster: EdgeCluster, ok: bool) -> None:
        if not self.use_breaker:
            return
        breaker = self.breaker_for(cluster)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def _watch_deployment(self, cluster: EdgeCluster, process: "Process") -> None:
        """Feed a background deployment's outcome into the cluster breaker."""
        if not self.use_breaker or id(process) in self._watched:
            return
        # id-keyed on purpose: a dedup marker that must not pin the process
        # object alive, never iterated or traced.
        self._watched[id(process)] = None  # repro: noqa[REP007]

        def done(proc: "Process") -> None:
            self._watched.pop(id(proc), None)  # repro: noqa[REP007]
            exc = proc.exception
            if isinstance(exc, ProcessKilled):
                return  # cancelled, not a health signal
            self._record_outcome(cluster, ok=exc is None)

        process._wait_subscribe(done)

    # ------------------------------------------------------------ inventory

    def gather_instances(self, service: EdgeService,
                         clusters: Optional[List[EdgeCluster]] = None,
                         ) -> List[InstanceInfo]:
        """The "gather list of existing+running instances" box of fig. 7."""
        instances: List[InstanceInfo] = []
        for cluster in (clusters if clusters is not None else self.clusters):
            instances.extend(cluster.instances(service.spec))
        return instances

    def note_flow_installed(self, cluster: EdgeCluster) -> None:
        self.load[cluster.name] = self.load.get(cluster.name, 0) + 1

    def note_flow_removed(self, cluster: EdgeCluster) -> None:
        count = self.load.get(cluster.name, 0)
        self.load[cluster.name] = max(0, count - 1)

    # -------------------------------------------------------------- dispatch

    def dispatch(self, client: IPv4, service: EdgeService) -> "Process":
        """Run the full decision (a process yielding a DispatchResult)."""
        return self.sim.spawn(self._dispatch_proc(client, service),
                              name=f"dispatch:{client}:{service.name}")

    def _dispatch_proc(self, client: IPv4, service: EdgeService):
        self.dispatches += 1
        zone = self.observe_client(client)
        candidates = self.schedulable_clusters()
        # Gathering existing+running instances costs real API round trips to
        # every cluster (fig. 7's first box) — the cost FlowMemory avoids on
        # re-misses. The queries run concurrently; the slowest one gates.
        if candidates:
            yield self.sim.timeout(max(c.inventory_query_s for c in candidates))
        instances = self.gather_instances(service, candidates)
        placement: Placement = self.scheduler.schedule(ScheduleRequest(
            service=service,
            client_zone=zone,
            instances=instances,
            clusters=candidates,
            load=dict(self.load),
        ))

        # Candidates the scheduler passed over must hand back any half-open
        # probation slot they claimed in schedulable_clusters().
        if self.use_breaker:
            for cluster in candidates:
                if cluster is not placement.fast and cluster is not placement.best:
                    self.breaker_for(cluster).release_probe()

        # BEST: deploy in the background for future requests (fig. 3).
        background_best = False
        if placement.best is not None:
            background_best = True
            self.without_waiting += 1
            best_proc = self.engine.ensure_available(placement.best, service)
            if placement.best is not placement.fast:
                # fast is awaited below and reports its own outcome
                self._watch_deployment(placement.best, best_proc)

        if placement.fast is None:
            self.cloud_fallbacks += 1
            return DispatchResult(endpoint=None, cluster=None,
                                  background_best=background_best)

        fast = placement.fast
        waited = not fast.is_ready(service.spec)
        try:
            endpoint = yield self.engine.ensure_available(fast, service)
        except ProcessKilled:
            raise  # this dispatch itself was killed
        except DeploymentError as exc:
            # Guaranteed disposition: a broken edge degrades the request to
            # the cloud path — the client must never hang on our account.
            self._record_outcome(fast, ok=False)
            self.deploy_failures += 1
            self.cloud_fallbacks += 1
            self.sim.trace.emit(self.sim.now, "dispatch", "deploy-failed",
                                {"client": str(client), "service": service.name,
                                 "cluster": fast.name, "error": repr(exc)})
            return DispatchResult(endpoint=None, cluster=None,
                                  background_best=background_best,
                                  waited=waited, deploy_failed=True)
        self._record_outcome(fast, ok=True)
        return DispatchResult(endpoint=endpoint, cluster=fast,
                              background_best=background_best, waited=waited)
