"""Service identity: the unique combination of address and port (§II).

Clients address edge services exactly as they would address the cloud
original; the platform recognises registered services by ``(IP, port,
protocol)``. Domain names resolve to IPs before registration (a static DNS
table stands in for resolution here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netsim.addresses import IPv4, ip


@dataclass(frozen=True)
class ServiceID:
    """``(address, port, protocol)`` — how the platform identifies a service."""

    addr: IPv4
    port: int
    protocol: str = "TCP"

    def __post_init__(self):
        if not 0 < self.port <= 65535:
            raise ValueError(f"bad port {self.port}")
        if self.protocol not in ("TCP", "UDP"):
            raise ValueError(f"unsupported protocol {self.protocol!r}")

    @classmethod
    def parse(cls, text: str, dns: Optional[Dict[str, IPv4]] = None,
              protocol: str = "TCP") -> "ServiceID":
        """Parse ``"1.2.3.4:80"`` or ``"api.example.com:443"`` (the latter
        needs a ``dns`` table)."""
        host, sep, port_text = text.rpartition(":")
        if not sep or not port_text.isdigit():
            raise ValueError(f"malformed service address {text!r}")
        try:
            addr = ip(host)
        except (ValueError, TypeError):
            if dns is None or host not in dns:
                raise ValueError(f"cannot resolve host {host!r}") from None
            addr = dns[host]
        return cls(addr=addr, port=int(port_text), protocol=protocol)

    @property
    def slug(self) -> str:
        """Filesystem/label-safe identifier used in annotations."""
        return f"{str(self.addr).replace('.', '-')}-{self.port}"

    def __str__(self) -> str:
        return f"{self.addr}:{self.port}"
