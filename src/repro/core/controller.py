"""The Transparent-Edge SDN controller (Ryu application).

Implements the transparent-access data path of the paper:

* **Proxy-ARP** for the fabric's virtual gateway — every host's default
  gateway resolves to the controller-owned virtual MAC, so the ingress
  switch sees all off-subnet traffic;
* **Interception**: a table-miss TCP packet whose ``(ipv4_dst, tcp_dst)``
  matches a registered service triggers the Dispatcher (fig. 7);
* **Rewriting**: the chosen instance is wired in with a pair of OpenFlow
  set-field flows — upstream rewrites ``(dst IP, dst port, MACs)`` to the
  instance endpoint, downstream rewrites the source back to the original
  cloud address, so the redirection stays invisible to the client (fig. 2);
* **On-demand deployment**: when no instance runs in the chosen edge, the
  client's packet stays buffered at the switch while the deployment engine
  brings one up (*with waiting*, fig. 5), or the request is redirected to a
  farther instance while the optimal edge deploys in the background
  (*without waiting*, fig. 3);
* **Cloud fallback**: unregistered destinations — and registered services
  the scheduler sends cloudward — are routed toward the cloud uplink
  unchanged, exactly as the perceived-cloud model requires (fig. 1);
* **FlowMemory**: every installed redirection is memorized so switch idle
  timeouts can stay low, and idle instances are scaled down when the last
  memorized flow for them expires (§V).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.core.cookies import (
    KIND_MISS,
    KIND_ROUTE,
    KIND_SERVICE,
    cookie_kind,
    is_controller_cookie,
    make_cookie,
)
from repro.core.dispatcher import Dispatcher, DispatchResult
from repro.core.fabric import FabricTopology
from repro.core.flowmemory import FlowMemory, MemorizedFlow
from repro.core.registry import EdgeService, RegistryToken, ServiceRegistry
from repro.core.revalidation import RevalidatingCache
from repro.core.serviceid import ServiceID
from repro.edge.cluster import EdgeCluster, Endpoint
from repro.metrics.perf import PERF
from repro.netsim.addresses import MAC, IPv4
from repro.netsim.packet import ETH_TYPE_ARP, ETH_TYPE_IP, ArpOp, ArpPacket, EthernetFrame
from repro.openflow.actions import SetFieldAction
from repro.ryuapp import (
    DEAD_DISPATCHER,
    MAIN_DISPATCHER,
    EventOFPBarrierReply,
    EventOFPFlowRemoved,
    EventOFPFlowStatsReply,
    EventOFPPacketIn,
    EventOFPStateChange,
    RyuApp,
    set_ev_cls,
)
from repro.simcore.errors import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.ryuapp.datapath import Datapath
    from repro.simcore import Process


@dataclass(frozen=True)
class AttachmentPoint:
    """Where a host or cluster node attaches to the switch fabric."""

    dpid: int
    port_no: int
    mac: MAC
    ip: IPv4


class _HostTable(Dict[IPv4, Tuple[int, int, MAC]]):
    """The learned-hosts dict plus version counters.

    Memoized install plans embed host locations; any write — including the
    direct writes testbed builders do (``controller.hosts[ip] = ...``) —
    bumps the global ``version`` (the coarse revalidation token) and stamps
    the written key, so :meth:`version_of` can revalidate a plan against
    *that client's* location only (the fine-grained token).
    """

    __slots__ = ("version", "_key_versions", "_clears")

    def __init__(self, *args, **kwargs):
        self.version = 0
        self._key_versions: Dict[IPv4, int] = {}
        self._clears = 0
        super().__init__(*args, **kwargs)

    def __setitem__(self, key: IPv4, value: Tuple[int, int, MAC]) -> None:
        super().__setitem__(key, value)
        self.version += 1
        self._key_versions[key] = self.version

    def __delitem__(self, key: IPv4) -> None:
        super().__delitem__(key)
        self.version += 1
        self._key_versions[key] = self.version

    def pop(self, *args):
        self.version += 1
        if args:
            self._key_versions[args[0]] = self.version
        return super().pop(*args)

    def clear(self) -> None:
        super().clear()
        self.version += 1
        self._clears += 1
        self._key_versions.clear()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self.version += 1
        for key in dict(*args, **kwargs):
            self._key_versions[key] = self.version

    def version_of(self, key: IPv4) -> Tuple[int, int]:
        """Per-key revalidation token: unchanged iff this host's location
        saw no write (and no wholesale clear) since the token was taken."""
        return (self._clears, self._key_versions.get(key, 0))


@dataclass
class _InstallPlan:
    """A memoized slow-path decision: everything `_install_and_release`
    computes that does not change between identical packet-ins — host
    locations, the dpid path, and the per-hop matches/action lists. Cookies
    are NOT part of the plan (every install draws a fresh one) and datapaths
    are fetched live at send time."""

    #: validity token (registry, flow-memory, hosts, cluster) the plan was
    #: computed under, compared per entry on reuse. Fine-grained mode uses
    #: per-key tokens (see ``_plan_epoch``), coarse mode the four global
    #: generation counters.
    epoch: Tuple[object, ...]
    #: the four *global* counters at compute/last-revalidation time — the
    #: O(1) fast path on reuse: while no counter moved anywhere, the
    #: per-key tokens cannot have moved either, so the epoch needn't be
    #: recomputed. Re-stamped whenever a generation move revalidates.
    global_epoch: Tuple[int, int, int, int]
    client_mac: MAC
    #: (dpid, first, down_match, down_actions, up_match, up_actions, flags)
    #: in install order (farthest-first, downstream-before-upstream)
    hops: List[Tuple[int, bool, object, list, object, list, int]]
    #: dpid -> upstream action list used to release buffered packets
    release_actions: Dict[int, list]


#: memoized install plans kept per controller before a wholesale flush
PLAN_CACHE_CAPACITY = 4096


@dataclass
class ControllerConfig:
    """Deploy-time configuration of the controller.

    Resilience knobs (see docs/faults.md):

    * ``evict_dead_instances`` — when a memorized instance turns out to be
      gone (crashed container, cluster outage, scale-down elsewhere), forget
      **every** client's memorized flow to that endpoint and delete the
      matching switch flows, instead of only dropping the one triggering
      entry. Keeps other clients from being switched into a dead endpoint
      until their own idle timeout.
    * The dispatcher's circuit breaker and the deployment engine's
      retry/deadline policy are configured on those objects directly
      (:class:`~repro.core.resilience.BreakerConfig`,
      :class:`~repro.core.resilience.RetryPolicy`).

    Failure accounting lands in :attr:`TransparentEdgeController.stats`
    (``dispatch_failures``, ``instances_evicted``) — a dispatch failure
    never drops the buffered packets; they are released toward the cloud
    origin instead.
    """

    #: the fabric's virtual gateway (every host's default gateway)
    vgw_ip: IPv4
    vgw_mac: MAC
    #: idle timeout of switch redirection flows — kept LOW thanks to FlowMemory
    switch_idle_timeout_s: float = 10.0
    #: idle timeout of plain L3 route flows
    route_idle_timeout_s: float = 30.0
    #: priority bands
    service_flow_priority: int = 20
    route_flow_priority: int = 10
    #: automatically scale down instances whose last memorized flow expired
    auto_scale_down: bool = True
    #: after an auto scale-down, Remove the service's containers/objects if
    #: it stayed unused this much longer (fig. 4's Remove phase; None: keep
    #: the created containers around for fast re-scale-ups)
    auto_remove_after_s: Optional[float] = None
    #: ablation switch: with False, re-misses always run the full dispatch
    use_flow_memory: bool = True
    #: memoize the packet-in slow path (registry lookup result + computed
    #: install plan) with generation-counter invalidation; behaviour-neutral
    #: (tests/core/test_controller_memoization.py proves it differentially)
    memoize_slow_path: bool = True
    #: revalidate slow-path memos per key instead of flushing wholesale:
    #: the service memo revalidates each entry against
    #: ``ServiceRegistry.generation_of`` and install plans against per-key
    #: epochs (registry token, per-(client, service) FlowMemory version,
    #: per-client host version, per-cluster generation), so churn on
    #: service X never colds the caches for service Y. ``False`` selects
    #: the coarse global-generation path, kept as the differential oracle
    #: (tests/core/test_fine_revalidation.py).
    fine_grained_revalidation: bool = True
    #: inter-switch topology for multi-switch deployments (None: single
    #: switch, the fig. 8 testbed)
    fabric: Optional["FabricTopology"] = None
    #: statically known hosts (cloud servers, cluster nodes): ip -> attachment
    static_hosts: Dict[IPv4, AttachmentPoint] = field(default_factory=dict)
    #: evict a vanished instance from FlowMemory for ALL clients and delete
    #: its switch flows (see class docstring)
    evict_dead_instances: bool = True


#: packet-ins held per datapath while its resync is in flight; beyond this
#: the oldest buffered packet-in is expired (the client retransmits)
RESYNC_BUFFER_CAPACITY = 128


@dataclass
class _ResyncState:
    """One datapath's in-flight flow-state reconciliation (docs/faults.md).

    Created when a MAIN state-change arrives for an already-known datapath
    (controller warm restart, channel revival); closed by the BarrierReply
    that trails the FlowStatsRequest. Packet-ins from the datapath are
    buffered here meanwhile and replayed once reconciliation is done, so
    redirection decisions never race the adopted flow state."""

    started_at: float
    buffered: Deque = field(default_factory=deque)
    dropped: int = 0
    flows_seen: int = 0
    reconciled: int = 0
    gcd: int = 0
    #: the FlowStatsReply was processed (a barrier without stats is stale)
    stats_done: bool = False


class TransparentEdgeController(RyuApp):
    """The controller application.

    Constructor config (via :meth:`AppManager.register` kwargs):

    * ``registry`` — :class:`ServiceRegistry`;
    * ``dispatcher`` — :class:`Dispatcher` (owns scheduler + engine);
    * ``memory`` — :class:`FlowMemory`;
    * ``config`` — :class:`ControllerConfig`;
    * ``cluster_attachments`` — cluster name → :class:`AttachmentPoint`.
    """

    def __init__(self, manager, **config):
        super().__init__(manager, **config)
        self.registry: ServiceRegistry = config["registry"]
        self.dispatcher: Dispatcher = config["dispatcher"]
        self.memory: FlowMemory = config["memory"]
        self.cfg: ControllerConfig = config["config"]
        self.cluster_attachments: Dict[str, AttachmentPoint] = config["cluster_attachments"]
        #: optional proactive deployer (repro.core.predictor) observing the
        #: request stream
        self.predeployer = config.get("predeployer")
        self.memory.on_idle = self._on_memory_idle
        #: learned host locations: ip -> (dpid, port_no, mac)
        self.hosts: _HostTable = _HostTable()
        for addr, attachment in self.cfg.static_hosts.items():
            self.hosts[addr] = (attachment.dpid, attachment.port_no, attachment.mac)
        #: memoized registry lookups: (dst ip, dst port, protocol) ->
        #: EdgeService | None, valid while the registry generation is
        #: unchanged. Protocol is part of the key — a TCP and a UDP service
        #: on the same address:port are distinct registrations and must not
        #: collide in the memo.
        self._service_cache: Dict[Tuple[IPv4, int, str],
                                  Optional[EdgeService]] = {}
        self._service_cache_gen = -1
        #: the fine-grained replacement for ``_service_cache``: same keys,
        #: but entries revalidate individually against the registry's
        #: per-key token instead of being flushed on a generation mismatch
        self._service_memo: RevalidatingCache[Tuple[IPv4, int, str],
                                              Optional[EdgeService],
                                              RegistryToken] = RevalidatingCache(
            token_of=self._service_token,
            generation_of=self._registry_generation,
            capacity=PLAN_CACHE_CAPACITY)
        #: memoized install plans: (client, service_id, cluster name,
        #: endpoint) -> _InstallPlan, validated per entry by its epoch
        self._plan_cache: Dict[Tuple, _InstallPlan] = {}
        #: pending dispatches: (client, service_id) -> buffered packet-ins
        self._pending: Dict[Tuple[IPv4, ServiceID], List] = {}
        #: cookie -> cluster name (for load bookkeeping on FlowRemoved and
        #: for reclaiming stale flows after a resync round)
        self._cookie_cluster: Dict[int, str] = {}
        #: cookie -> client (when known): lets a handover release the
        #: client's load bookkeeping synchronously instead of waiting for
        #: the switches' FlowRemoved notifications
        self._cookie_client: Dict[int, IPv4] = {}
        #: controller incarnation, embedded in every cookie; bumped on
        #: warm restart so pre-crash flows are recognizable on the wire
        self.epoch = 1
        self._next_plan_id = 1
        #: dpids that completed their first connect (a later MAIN
        #: state-change for them means reconnection -> resync)
        self._seen_dpids: Set[int] = set()
        #: in-flight dispatch processes, killed on crash
        self._dispatch_procs: Dict[Tuple[IPv4, ServiceID], "Process"] = {}
        #: per-dpid in-flight reconciliations + round bookkeeping
        self._resync: Dict[int, _ResyncState] = {}
        self._resync_round_dpids: Set[int] = set()
        self._resync_round_candidates: Set[int] = set()
        self._resync_seen_cookies: Set[int] = set()
        self._resync_round_aborted = False
        #: diagnostics
        self.stats = {
            "packet_ins": 0,
            "arp_proxied": 0,
            "service_hits_memory": 0,
            "service_dispatches": 0,
            "cloud_routed": 0,
            "l3_routed": 0,
            "dropped_unknown_dst": 0,
            "pending_coalesced": 0,
            "dispatch_failures": 0,
            "instances_evicted": 0,
            "slow_path_plan_hits": 0,
            "slow_path_plan_misses": 0,
            "packet_ins_buffered_resync": 0,
            "packet_ins_dropped_resync": 0,
            "flows_reconciled": 0,
            "flows_gcd": 0,
            "pending_lost_on_crash": 0,
        }

    def _alloc_cookie(self, kind: int) -> int:
        """A fresh cookie stamped with the current controller epoch."""
        cookie = make_cookie(self.epoch, kind, self._next_plan_id)
        self._next_plan_id += 1
        return cookie

    # ------------------------------------------------------------- datapaths

    @set_ev_cls(EventOFPStateChange, MAIN_DISPATCHER)
    def on_state_change(self, ev) -> None:
        datapath = ev.datapath
        if ev.state == DEAD_DISPATCHER:
            # Heartbeat declared the datapath unreachable: any resync in
            # flight toward it can never finish — abandon it.
            self._abort_resync(datapath.id)
            self.log("switch-dead", dpid=datapath.id)
            return
        if ev.state != MAIN_DISPATCHER:
            return
        # (Re-)install the table-miss entry (send to controller). Harmless
        # on reconnect: the switch kept its tables, the entry is refreshed.
        parser, ofp = datapath.ofproto_parser, datapath.ofproto
        datapath.send_msg(parser.OFPFlowMod(
            datapath, match=parser.OFPMatch(), priority=0,
            actions=[parser.OFPActionOutput(ofp.OFPP_CONTROLLER)],
            cookie=self._alloc_cookie(KIND_MISS)))
        if datapath.id in self._seen_dpids:
            # Not the first MAIN transition: we reconnected after a crash,
            # channel outage, or liveness revival. The switch kept forwarding
            # on its installed flows; reconcile before taking new decisions.
            self._start_resync(datapath)
        else:
            self._seen_dpids.add(datapath.id)
        self.log("switch-connected", dpid=datapath.id)

    # -------------------------------------------------------------- packet-in

    @set_ev_cls(EventOFPPacketIn, MAIN_DISPATCHER)
    def on_packet_in(self, ev) -> None:
        msg = ev.msg
        self.stats["packet_ins"] += 1
        state = self._resync.get(msg.datapath.id)
        if state is not None:
            # Reconciliation in flight for this datapath: hold the packet-in
            # until the adopted flow state is known, bounded so a miss storm
            # cannot pin unbounded memory (expired clients retransmit).
            if len(state.buffered) >= RESYNC_BUFFER_CAPACITY:
                state.buffered.popleft()
                state.dropped += 1
                self.stats["packet_ins_dropped_resync"] += 1
            state.buffered.append(msg)
            self.stats["packet_ins_buffered_resync"] += 1
            return
        self._process_packet_in(msg)

    def _process_packet_in(self, msg) -> None:
        frame: EthernetFrame = msg.frame
        datapath = msg.datapath
        self._learn(datapath.id, msg.in_port, frame)

        arp = frame.arp
        if arp is not None:
            self._handle_arp(datapath, msg, arp)
            return

        packet = frame.ipv4
        if packet is None:
            return  # non-IP, non-ARP: ignore

        fields = msg.fields
        dst_port = fields.get("tcp_dst")
        if dst_port is not None:
            service = self._lookup_service(packet.dst, dst_port, "TCP")
            if service is not None:
                self._handle_service_packet(datapath, msg, service)
                return
        self._handle_plain_routing(datapath, msg)

    def service_decision(self, dst: IPv4, dst_port: int,
                         protocol: str = "TCP") -> Optional[EdgeService]:
        """Public probe of the packet-in service decision (memoized exactly
        like the data path): invariant checks compare this against the live
        registry to prove the memo never leaks a stale answer under churn."""
        return self._lookup_service(dst, dst_port, protocol)

    def service_memo_stats(self) -> Dict[str, int]:
        """Diagnostics of the fine-grained service memo (hits, misses,
        revalidations, invalidations, flushes) — what ``bench_warm_churn``
        and the CI hit-rate gates read."""
        return self._service_memo.stats()

    def _service_token(self, key: Tuple[IPv4, int, str]) -> RegistryToken:
        """The service memo's per-key revalidation token."""
        dst, dst_port, protocol = key
        return self.registry.generation_of(dst, dst_port, protocol)

    def _registry_generation(self) -> int:
        return self.registry.generation

    def _lookup_service(self, dst: IPv4, dst_port: int,
                        protocol: str = "TCP") -> Optional[EdgeService]:
        """Registry lookup, memoized per (dst, port, protocol). Negative
        answers are cached too — the common miss is plain L3 traffic
        hammering the same non-service destination. Prefix-aware: an
        address inside a subnet-registered prefix resolves to that service
        (longest match wins).

        Fine-grained mode (default) revalidates each memo entry against
        the registry's per-key token, so churn on unrelated services keeps
        the whole cache warm; the coarse path clears everything on any
        registry mutation and is kept as the differential oracle."""
        if not self.cfg.memoize_slow_path:
            return self.registry.lookup_prefix(dst, dst_port, protocol)
        key = (dst, dst_port, protocol)
        if self.cfg.fine_grained_revalidation:
            found, cached = self._service_memo.get(key)
            if found:
                return cached
            service = self.registry.lookup_prefix(dst, dst_port, protocol)
            self._service_memo.store(key, service)
            return service
        if self._service_cache_gen != self.registry.generation:
            # Coarse differential oracle: any registry mutation colds the
            # entire memo (the behaviour fine-grained revalidation replaces).
            self._service_cache.clear()  # repro: noqa[REP009]
            self._service_cache_gen = self.registry.generation
        try:
            return self._service_cache[key]
        except KeyError:
            service = self.registry.lookup_prefix(dst, dst_port, protocol)
            if len(self._service_cache) >= PLAN_CACHE_CAPACITY:
                self._service_cache.clear()  # repro: noqa[REP009]
            self._service_cache[key] = service
            return service

    # ------------------------------------------------------------- learning

    def _learn(self, dpid: int, in_port: int, frame: EthernetFrame) -> None:
        fabric = self.cfg.fabric
        if fabric is not None and fabric.is_interswitch_port(dpid, in_port):
            return  # not a host-facing port: never a host location
        src_ip: Optional[IPv4] = None
        arp = frame.arp
        if arp is not None:
            src_ip = arp.sender_ip
        elif frame.ipv4 is not None:
            src_ip = frame.ipv4.src
        if src_ip is not None and not self.registry.is_registered_address(src_ip):
            location = (dpid, in_port, frame.src)
            # Write only on change: a stationary host re-learned on every
            # packet-in must not bump the hosts version (and with it the
            # memoized install plans).
            if self.hosts.get(src_ip) != location:
                self.hosts[src_ip] = location

    # ------------------------------------------------------------------ ARP

    def _handle_arp(self, datapath: "Datapath", msg, arp: ArpPacket) -> None:
        if arp.op != ArpOp.REQUEST:
            return  # replies only interest the learning table (done above)
        parser = datapath.ofproto_parser
        target = arp.target_ip
        reply_mac: Optional[MAC] = None
        if target == self.cfg.vgw_ip or self.registry.is_registered_address(target):
            # The fabric answers for the gateway and for every registered
            # (perceived-cloud) service address.
            reply_mac = self.cfg.vgw_mac
        elif target in self.hosts:
            reply_mac = self.hosts[target][2]
        if reply_mac is None:
            # Unknown target: flood the request (normal L2 behaviour).
            datapath.send_msg(parser.OFPPacketOut(
                datapath, buffer_id=msg.buffer_id, in_port=msg.in_port,
                actions=[parser.OFPActionOutput(datapath.ofproto.OFPP_FLOOD)]))
            return
        self.stats["arp_proxied"] += 1
        reply = EthernetFrame(
            src=reply_mac, dst=arp.sender_mac, ethertype=ETH_TYPE_ARP,
            payload=ArpPacket(op=ArpOp.REPLY,
                              sender_mac=reply_mac, sender_ip=target,
                              target_mac=arp.sender_mac, target_ip=arp.sender_ip))
        datapath.send_msg(parser.OFPPacketOut(
            datapath, in_port=msg.in_port,
            actions=[parser.OFPActionOutput(msg.in_port)], data=reply))

    # --------------------------------------------------------- service path

    def _handle_service_packet(self, datapath: "Datapath", msg,
                               service: EdgeService) -> None:
        client = msg.frame.ipv4.src
        key = (client, service.service_id)
        if self.predeployer is not None:
            ready_now = any(cluster.is_ready(service.spec)
                            for cluster in self.dispatcher.clusters)
            self.predeployer.observe(client, service, ready_now)
        pending = self._pending.get(key)
        if pending is not None:
            # A dispatch for this client+service is already in flight
            # (e.g. a retransmitted SYN while deploying): hold this one too.
            pending.append((datapath, msg))
            self.stats["pending_coalesced"] += 1
            return

        remembered = (self.memory.lookup(client, service.service_id)
                      if self.cfg.use_flow_memory else None)
        if remembered is not None and remembered.cluster.is_ready(service.spec):
            # Fast re-miss path: switch flow idled out but FlowMemory knows
            # the decision — reinstall without dispatching (§V).
            self.stats["service_hits_memory"] += 1
            self._install_and_release(service, [(datapath, msg)],
                                      remembered.cluster, remembered.endpoint)
            return
        if remembered is not None:
            # Instance vanished (crashed, cluster outage, or scaled down
            # elsewhere); forget and re-dispatch. With eviction enabled this
            # also drops every OTHER client's memory/flows to the dead
            # endpoint — they would otherwise keep being switched into it.
            if self.cfg.evict_dead_instances:
                self._evict_dead_instance(remembered.cluster, remembered.endpoint)
            else:
                self.memory.forget(client, service.service_id)

        self.stats["service_dispatches"] += 1
        self._pending[key] = [(datapath, msg)]
        self._dispatch_procs[key] = self.spawn(
            self._dispatch_and_install(client, service, key),
            name=f"edge-dispatch:{client}:{service.name}")

    def _dispatch_and_install(self, client: IPv4, service: EdgeService, key):
        try:
            try:
                result: DispatchResult = yield self.dispatcher.dispatch(client, service)
            except ProcessKilled:
                # The hosting controller crashed mid-dispatch; the pending
                # packets were already accounted as lost by on_crash.
                raise
            except Exception as exc:  # noqa: BLE001 - unexpected dispatch error
                # Guaranteed disposition: buffered packets are NEVER dropped on
                # a failed dispatch — they continue toward the cloud origin,
                # which is where the client thinks it is talking to anyway.
                self.log("dispatch-failed", client=str(client),
                         service=service.name, error=repr(exc))
                self.stats["dispatch_failures"] += 1
                self._release_toward_cloud(self._pending.pop(key, []))
                return
            pending = self._pending.pop(key, [])
            if result.deploy_failed:
                self.stats["dispatch_failures"] += 1
            if result.toward_cloud:
                self._release_toward_cloud(pending)
                return
            if self.cfg.use_flow_memory:
                self.memory.remember(client, service.service_id,
                                     result.cluster, result.endpoint)
            self._install_and_release(service, pending, result.cluster, result.endpoint)
        finally:
            self._dispatch_procs.pop(key, None)

    def _release_toward_cloud(self, pending) -> None:
        """Send buffered packet-ins on toward their original (cloud) dst."""
        if not pending:
            return
        self.stats["cloud_routed"] += 1
        for datapath, msg in pending:
            self._route_toward(datapath, msg, msg.frame.ipv4.dst)

    def _plan_epoch(self, service: EdgeService, client: IPv4,
                    dst_addr: IPv4, cluster: EdgeCluster) -> Tuple[object, ...]:
        """The validity token an install plan is compared against on reuse.

        Fine-grained mode keys it on exactly what the plan depends on: the
        registry token of the addressed identity, this (client, service)
        pair's FlowMemory version, this client's host-table version, and
        the chosen cluster's own generation — so churn on service X or
        client Y never invalidates the plans of anyone else. Coarse mode
        uses the four *global* counters (any churn anywhere invalidates
        every plan) and is kept as the differential oracle.
        """
        if self.cfg.fine_grained_revalidation:
            sid = service.service_id
            return (self.registry.generation_of(dst_addr, sid.port, sid.protocol),
                    self.memory.version_of(client, sid),
                    self.hosts.version_of(client),
                    cluster.generation)
        return self._global_epoch(cluster)

    def _global_epoch(self, cluster: EdgeCluster) -> Tuple[int, int, int, int]:
        """The four global generation counters — unchanged iff *nothing*
        (registry, FlowMemory, host table, this cluster) mutated at all."""
        return (self.registry.generation, self.memory.generation,
                self.hosts.version, cluster.generation)

    def _build_install_plan(self, service: EdgeService, client: IPv4,
                            dst_addr: IPv4, cluster: EdgeCluster,
                            endpoint: Endpoint,
                            parser, ofp) -> Optional[_InstallPlan]:
        """The pure-CPU half of `_install_and_release`: host/attachment
        lookups, path computation, and the per-hop matches + action lists.
        Returns None when the topology info to wire the redirection is
        missing (the caller degrades to the cloud path)."""
        client_loc = self.hosts.get(client)
        attachment = self.cluster_attachments.get(cluster.name)
        if client_loc is None or attachment is None:
            return None
        client_dpid, client_port, client_mac = client_loc
        service_id = service.service_id

        # The dpid path from the client's ingress switch to the switch in
        # front of the instance (a single element for the fig. 8 testbed).
        fabric = self.cfg.fabric
        if fabric is not None and client_dpid != attachment.dpid:
            path = fabric.path(client_dpid, attachment.dpid)
        else:
            path = [client_dpid]

        def egress_port(dpid: int, index: int) -> int:
            """Upstream output port of switch ``path[index]``."""
            if index + 1 < len(path):
                return fabric.port_toward(dpid, path[index + 1])
            return attachment.port_no

        def ingress_port(dpid: int, index: int) -> int:
            """Downstream output port of switch ``path[index]``."""
            if index > 0:
                return fabric.port_toward(dpid, path[index - 1])
            return client_port

        # Match/rewrite on the address the client actually addressed: for a
        # host-registered service that IS service_id.addr; for a
        # subnet-registered service it is some address inside the prefix.
        upstream_match = parser.OFPMatch(
            eth_type=ETH_TYPE_IP, ip_proto=6,
            ipv4_src=client, ipv4_dst=dst_addr, tcp_dst=service_id.port)
        downstream_match = parser.OFPMatch(
            eth_type=ETH_TYPE_IP, ip_proto=6,
            ipv4_src=endpoint.ip, tcp_src=endpoint.port, ipv4_dst=client)
        # After the ingress rewrite, upstream packets carry the endpoint
        # address — transit/egress switches match on that.
        rewritten_match = parser.OFPMatch(
            eth_type=ETH_TYPE_IP, ip_proto=6,
            ipv4_src=client, ipv4_dst=endpoint.ip, tcp_dst=endpoint.port)

        hops: List[Tuple[int, bool, object, list, object, list, int]] = []
        release_actions: Dict[int, list] = {}
        # Install order: farthest-first and downstream-before-upstream (see
        # _install_and_release for why).
        for index in range(len(path) - 1, -1, -1):
            dpid = path[index]
            first = index == 0
            last = index == len(path) - 1

            down_actions = []
            if first:
                down_actions += [
                    parser.OFPActionSetField(ipv4_src=dst_addr),
                    parser.OFPActionSetField(tcp_src=service_id.port),
                    parser.OFPActionSetField(eth_src=self.cfg.vgw_mac),
                    parser.OFPActionSetField(eth_dst=client_mac),
                ]
            down_actions.append(parser.OFPActionOutput(ingress_port(dpid, index)))

            up_actions = []
            if first:
                up_actions += [
                    parser.OFPActionSetField(ipv4_dst=endpoint.ip),
                    parser.OFPActionSetField(tcp_dst=endpoint.port),
                ]
            if last:
                up_actions += [
                    parser.OFPActionSetField(eth_src=self.cfg.vgw_mac),
                    parser.OFPActionSetField(eth_dst=attachment.mac),
                ]
            up_actions.append(parser.OFPActionOutput(egress_port(dpid, index)))

            hops.append((dpid, first,
                         downstream_match, down_actions,
                         upstream_match if first else rewritten_match,
                         up_actions,
                         ofp.OFPFF_SEND_FLOW_REM if first else 0))
            release_actions[dpid] = up_actions

        return _InstallPlan(epoch=self._plan_epoch(service, client, dst_addr, cluster),
                            global_epoch=self._global_epoch(cluster),
                            client_mac=client_mac, hops=hops,
                            release_actions=release_actions)

    def _install_and_release(self, service: EdgeService, pending,
                             cluster: EdgeCluster, endpoint: Endpoint) -> None:
        if not pending:
            return
        datapath, first_msg = pending[0]
        client = first_msg.frame.ipv4.src
        dst_addr = first_msg.frame.ipv4.dst
        parser, ofp = datapath.ofproto_parser, datapath.ofproto

        # Memoized slow path: identical re-misses (same client, service,
        # cluster, endpoint) reuse the computed plan — matches and action
        # lists are immutable/copied-on-send, so reuse is safe. Mirrors the
        # switch microflow cache: per-entry generation epoch, wholesale
        # flush on capacity overflow. Cookies are always fresh and
        # datapaths always fetched live, so the observable message stream
        # is identical to the unmemoized path.
        plan: Optional[_InstallPlan] = None
        plan_key = None
        if self.cfg.memoize_slow_path:
            plan_key = (client, dst_addr, service.service_id,
                        cluster.name, endpoint)
            cached = self._plan_cache.get(plan_key)
            if cached is not None:
                current_global = self._global_epoch(cluster)
                if cached.global_epoch == current_global:
                    # Nothing anywhere mutated: the per-key tokens cannot
                    # have moved, so skip recomputing them entirely.
                    plan = cached
                elif cached.epoch == self._plan_epoch(service, client,
                                                      dst_addr, cluster):
                    # Something mutated somewhere, but everything THIS plan
                    # depends on is untouched: revalidate and re-stamp.
                    plan = cached
                    cached.global_epoch = current_global
                    PERF.memo_revalidations += 1
            if plan is not None:
                self.stats["slow_path_plan_hits"] += 1
        if plan is None:
            plan = self._build_install_plan(service, client, dst_addr,
                                            cluster, endpoint, parser, ofp)
            if self.cfg.memoize_slow_path:
                self.stats["slow_path_plan_misses"] += 1
                if plan is not None:
                    if len(self._plan_cache) >= PLAN_CACHE_CAPACITY:
                        # Capacity bound, not a generation shortcut: plans
                        # revalidate per entry by their epoch either way.
                        self._plan_cache.clear()  # repro: noqa[REP009]
                    self._plan_cache[plan_key] = plan
        if plan is None:
            # Cannot wire the redirection — degrade to the cloud path rather
            # than silently dropping the buffered packets.
            self.log("missing-topology-info", client=str(client),
                     cluster=cluster.name)
            self.stats["dispatch_failures"] += 1
            self._release_toward_cloud(pending)
            return

        cookie = self._alloc_cookie(KIND_SERVICE)
        # Load accounting is keyed to the cookie ledger: EVERY registered
        # cookie counts one installed service flow (re-miss reinstalls
        # included — their removal decrements, so skipping the increment
        # here would steal a count from the cluster), and every ledger pop
        # (FlowRemoved, handover release, stale reclaim) releases it once.
        self._cookie_cluster[cookie] = cluster.name
        self._cookie_client[cookie] = client
        self.dispatcher.note_flow_installed(cluster)

        # Install farthest-first and downstream-before-upstream: every
        # control channel has the same latency, so by the time the released
        # packet reaches any switch its rules are already there.
        for (dpid, first, down_match, down_actions,
             up_match, up_actions, flags) in plan.hops:
            hop_dp = self.manager.datapaths.get(dpid)
            if hop_dp is None:
                # A switch on the chosen path is gone (e.g. mid-outage):
                # abandon the redirection, release the packets cloudward.
                # Flows already sent to other hops idle out on their own.
                self.log("missing-datapath", dpid=dpid)
                self.stats["dispatch_failures"] += 1
                self._cookie_cluster.pop(cookie, None)
                self._cookie_client.pop(cookie, None)
                self.dispatcher.note_flow_removed(cluster)
                self._release_toward_cloud(pending)
                return
            hop_dp.send_msg(parser.OFPFlowMod(
                hop_dp, match=down_match, actions=down_actions,
                priority=self.cfg.service_flow_priority,
                idle_timeout=self.cfg.switch_idle_timeout_s, cookie=cookie))
            hop_dp.send_msg(parser.OFPFlowMod(
                hop_dp, match=up_match, actions=up_actions,
                priority=self.cfg.service_flow_priority,
                idle_timeout=self.cfg.switch_idle_timeout_s, cookie=cookie,
                flags=flags))

        # Release every buffered packet through its switch's upstream rules.
        for release_dp, release_msg in pending:
            actions = plan.release_actions.get(release_dp.id)
            if actions is None:
                continue  # buffered at a switch off the chosen path
            release_dp.send_msg(parser.OFPPacketOut(
                release_dp, buffer_id=release_msg.buffer_id,
                in_port=release_msg.in_port, actions=list(actions),
                data=release_msg.frame if release_msg.buffer_id == ofp.OFP_NO_BUFFER else None))
        if self.sim.trace.enabled:
            # Guarded: str(client)/str(endpoint) formatting is pure waste
            # when tracing is off, and this runs once per packet-in.
            self.log("flows-installed", client=str(client), service=service.name,
                     endpoint=str(endpoint), cluster=cluster.name,
                     hops=len(plan.hops))

    # ------------------------------------------------------ dead instance GC

    def _evict_dead_instance(self, cluster: EdgeCluster, endpoint: Endpoint) -> None:
        """An instance endpoint turned out dead: purge every client's
        FlowMemory entry to it and delete the matching switch flows.

        Without this, every other client with a memorized flow to the dead
        endpoint keeps getting switched into it until their own re-miss —
        with a still-live switch flow, until the idle timeout."""
        flows = self.memory.flows_for_endpoint(endpoint)
        self.memory.forget_endpoint(endpoint)
        self.stats["instances_evicted"] += 1
        for datapath in self.manager.datapaths.values():
            parser, ofp = datapath.ofproto_parser, datapath.ofproto
            for flow in flows:
                sid = flow.service_id
                # The exact matches _install_and_release installed: first-hop
                # upstream, rewritten transit/egress upstream, downstream.
                for match in (
                    parser.OFPMatch(eth_type=ETH_TYPE_IP, ip_proto=6,
                                    ipv4_src=flow.client, ipv4_dst=sid.addr,
                                    tcp_dst=sid.port),
                    parser.OFPMatch(eth_type=ETH_TYPE_IP, ip_proto=6,
                                    ipv4_src=flow.client, ipv4_dst=endpoint.ip,
                                    tcp_dst=endpoint.port),
                    parser.OFPMatch(eth_type=ETH_TYPE_IP, ip_proto=6,
                                    ipv4_src=endpoint.ip, tcp_src=endpoint.port,
                                    ipv4_dst=flow.client),
                ):
                    datapath.send_msg(parser.OFPFlowMod(
                        datapath, match=match, command=ofp.OFPFC_DELETE,
                        priority=self.cfg.service_flow_priority))
        self.log("evicted-dead-instance", endpoint=str(endpoint),
                 cluster=cluster.name, flows=len(flows))

    # --------------------------------------------------------- plain routing

    def _handle_plain_routing(self, datapath: "Datapath", msg) -> None:
        dst = msg.frame.ipv4.dst
        self._route_toward(datapath, msg, dst)

    def _route_toward(self, datapath: "Datapath", msg, dst: IPv4) -> None:
        location = self.hosts.get(dst)
        parser = datapath.ofproto_parser
        if location is None:
            self.stats["dropped_unknown_dst"] += 1
            self.log("unknown-destination", dst=str(dst))
            return
        dst_dpid, dst_port, dst_mac = location
        self.stats["l3_routed"] += 1
        fabric = self.cfg.fabric
        if fabric is not None and datapath.id != dst_dpid:
            path = fabric.path(datapath.id, dst_dpid)
        else:
            path = [datapath.id]
        match = parser.OFPMatch(eth_type=ETH_TYPE_IP, ipv4_dst=dst)
        first_hop_actions = None
        for index, dpid in enumerate(path):
            hop_dp = self.manager.datapaths.get(dpid)
            if hop_dp is None:
                return
            if index + 1 < len(path):
                actions = [parser.OFPActionOutput(
                    fabric.port_toward(dpid, path[index + 1]))]
            else:
                actions = [
                    parser.OFPActionSetField(eth_src=self.cfg.vgw_mac),
                    parser.OFPActionSetField(eth_dst=dst_mac),
                    parser.OFPActionOutput(dst_port),
                ]
            hop_dp.send_msg(parser.OFPFlowMod(
                hop_dp, match=match, actions=actions,
                priority=self.cfg.route_flow_priority,
                idle_timeout=self.cfg.route_idle_timeout_s,
                cookie=make_cookie(self.epoch, KIND_ROUTE, 0)))
            if index == 0:
                first_hop_actions = actions
        datapath.send_msg(parser.OFPPacketOut(
            datapath, buffer_id=msg.buffer_id, in_port=msg.in_port,
            actions=list(first_hop_actions or []),
            data=msg.frame if msg.buffer_id == datapath.ofproto.OFP_NO_BUFFER else None))

    # ----------------------------------------------------------- flow events

    @set_ev_cls(EventOFPFlowRemoved, MAIN_DISPATCHER)
    def on_flow_removed(self, ev) -> None:
        cookie = ev.msg.cookie
        cluster_name = self._cookie_cluster.pop(cookie, None)
        self._cookie_client.pop(cookie, None)
        if cluster_name is not None:
            for cluster in self.dispatcher.clusters:
                if cluster.name == cluster_name:
                    self.dispatcher.note_flow_removed(cluster)
                    break

    def release_client_flows(self, client: IPv4) -> int:
        """Release the load bookkeeping for every live service flow of
        ``client`` (handover path): the caller is about to delete the
        client's switch flows, so their per-cluster load must come back
        *now* — synchronously — not whenever the switches' FlowRemoved
        notifications arrive (or never, for an unreachable datapath).
        Popping the cookie ledger here makes the later FlowRemoved a
        no-op, so the release never double-counts. Returns the number of
        flows released."""
        cookies = sorted(cookie for cookie, owner in self._cookie_client.items()
                         if owner == client)
        for cookie in cookies:
            self._cookie_client.pop(cookie, None)
            cluster_name = self._cookie_cluster.pop(cookie, None)
            if cluster_name is None:
                continue
            for cluster in self.dispatcher.clusters:
                if cluster.name == cluster_name:
                    self.dispatcher.note_flow_removed(cluster)
                    break
        return len(cookies)

    # ------------------------------------------------- crash / warm restart

    def on_crash(self) -> None:
        """Drop ALL volatile state (docs/faults.md): a warm-restarted
        controller remembers nothing and must reconcile from the switches.
        Buffered packet-ins die with the process — the accounting survives
        in :attr:`stats` because the experiment driver owns this object."""
        for proc in list(self._dispatch_procs.values()):
            if proc.alive:
                proc.kill("controller crashed")
        self._dispatch_procs.clear()
        lost = sum(len(msgs) for msgs in self._pending.values())
        self.stats["pending_lost_on_crash"] += lost
        self._pending.clear()
        self.memory.clear()
        self.hosts.clear()
        for addr, attachment in self.cfg.static_hosts.items():
            self.hosts[addr] = (attachment.dpid, attachment.port_no,
                                attachment.mac)
        # Crash reset: a warm-restarted controller must forget every memo,
        # fine-grained or not — this is the one legitimate wholesale wipe.
        self._service_cache.clear()  # repro: noqa[REP009]
        self._service_cache_gen = -1
        self._service_memo.flush()
        self._plan_cache.clear()  # repro: noqa[REP009]
        self._cookie_cluster.clear()
        self._cookie_client.clear()
        for cluster in self.dispatcher.clusters:
            self.dispatcher.load[cluster.name] = 0
        for dpid in list(self._resync):
            self._abort_resync(dpid)
        self._resync_round_dpids.clear()
        self._resync_round_candidates.clear()
        self._resync_seen_cookies.clear()
        self._resync_round_aborted = False
        self.log("crash", pending_lost=lost)

    def on_restart(self) -> None:
        """New incarnation: cookies minted from here on carry the new epoch,
        so reconciliation can tell adopted pre-crash flows apart."""
        self.epoch += 1
        self._next_plan_id = 1
        self.log("restart", epoch=self.epoch)

    # ------------------------------------------------ flow-state resync

    def _start_resync(self, datapath: "Datapath") -> None:
        """Snapshot the datapath's flow table and reconcile against it.

        A *round* is the set of resyncs started while none was in flight;
        stale-cookie reclaim only runs when a round covered every datapath
        and none was aborted — otherwise a flow on an unreachable switch
        would be misjudged as gone."""
        old = self._resync.pop(datapath.id, None)
        if old is not None:
            # Restarted before the previous resync finished: its buffered
            # packet-ins refer to pre-restart state — expire them.
            self.stats["packet_ins_dropped_resync"] += len(old.buffered)
        if not self._resync:
            self._resync_round_dpids = set()
            self._resync_round_aborted = False
            self._resync_round_candidates = set(self._cookie_cluster)
            self._resync_seen_cookies = set()
        self._resync_round_dpids.add(datapath.id)
        self._resync[datapath.id] = _ResyncState(started_at=self.sim.now)
        parser = datapath.ofproto_parser
        datapath.send_msg(parser.OFPFlowStatsRequest(datapath,
                                                     match=parser.OFPMatch()))
        # The channel is FIFO, so the barrier reply trails the stats reply:
        # when it arrives, reconciliation (including GC deletes sent from
        # the stats handler) is ordered before any replayed packet-in.
        datapath.send_msg(parser.OFPBarrierRequest(datapath))
        self.log("resync-start", dpid=datapath.id)

    def _abort_resync(self, dpid: int) -> None:
        state = self._resync.pop(dpid, None)
        if state is None:
            return
        self.stats["packet_ins_dropped_resync"] += len(state.buffered)
        self._resync_round_aborted = True
        self.log("resync-aborted", dpid=dpid)

    @set_ev_cls(EventOFPFlowStatsReply, MAIN_DISPATCHER)
    def on_flow_stats_reply(self, ev) -> None:
        datapath = ev.msg.datapath
        state = self._resync.get(datapath.id)
        if state is None or state.stats_done:
            return  # unsolicited or duplicate snapshot
        state.stats_done = True
        self._reconcile(datapath, ev.msg.stats, state)

    @set_ev_cls(EventOFPBarrierReply, MAIN_DISPATCHER)
    def on_barrier_reply(self, ev) -> None:
        datapath = ev.msg.datapath
        state = self._resync.pop(datapath.id, None)
        if state is None:
            return
        self.manager.recovery.record_resync(
            dpid=datapath.id, epoch=self.epoch,
            started_at=state.started_at, finished_at=self.sim.now,
            flows_seen=state.flows_seen, flows_reconciled=state.reconciled,
            flows_gcd=state.gcd, packet_ins_buffered=len(state.buffered),
            packet_ins_dropped=state.dropped)
        self.stats["flows_reconciled"] += state.reconciled
        self.stats["flows_gcd"] += state.gcd
        if not self._resync:
            # Round complete. Reclaim bookkeeping for cookies no switch
            # reported — their flows are gone (expired during the outage) —
            # but only from a full, unaborted round.
            if (not self._resync_round_aborted
                    and self._resync_round_dpids == set(self.manager.datapaths)):
                self._reclaim_stale_cookies()
            self._resync_round_dpids = set()
            self._resync_round_candidates = set()
            self._resync_seen_cookies = set()
            self._resync_round_aborted = False
        self.log("resync-done", dpid=datapath.id, seen=state.flows_seen,
                 reconciled=state.reconciled, gcd=state.gcd,
                 replayed=len(state.buffered), dropped=state.dropped)
        while state.buffered:
            self._process_packet_in(state.buffered.popleft())

    def _reclaim_stale_cookies(self) -> None:
        stale = [cookie for cookie in self._resync_round_candidates
                 if cookie in self._cookie_cluster
                 and cookie not in self._resync_seen_cookies]
        for cookie in sorted(stale):
            cluster_name = self._cookie_cluster.pop(cookie, None)
            self._cookie_client.pop(cookie, None)
            if cluster_name is None:
                continue
            for cluster in self.dispatcher.clusters:
                if cluster.name == cluster_name:
                    self.dispatcher.note_flow_removed(cluster)
                    break
        if stale:
            self.log("reclaimed-stale-cookies", count=len(stale))

    def _live_endpoints(self) -> Dict[Endpoint, Tuple[EdgeCluster, EdgeService]]:
        """Every currently-servable instance endpoint across all clusters."""
        live: Dict[Endpoint, Tuple[EdgeCluster, EdgeService]] = {}
        for service in self.registry.services():
            for cluster in self.dispatcher.clusters:
                if not cluster.is_ready(service.spec):
                    continue
                endpoint = cluster.endpoint(service.spec)
                if endpoint is not None:
                    live[endpoint] = (cluster, service)
        return live

    def _reconcile(self, datapath: "Datapath", stats: List[Dict],
                   state: _ResyncState) -> None:
        """Adopt or GC every controller-stamped flow in the snapshot.

        Adopt: the flow redirects to an instance that is still live —
        FlowMemory and load bookkeeping are rebuilt from it, so established
        clients keep their pre-crash instance without a new dispatch.
        GC: the instance is dead or the flow is unrecognizable — strict
        delete (cookie-filtered, so a same-match current-epoch replacement
        is never collateral damage)."""
        state.flows_seen = len(stats)
        parser, ofp = datapath.ofproto_parser, datapath.ofproto
        live = self._live_endpoints()
        for stat in stats:
            cookie = stat.get("cookie", 0)
            if not is_controller_cookie(cookie):
                continue  # not ours (pre-cookie tooling, test fixtures)
            kind = cookie_kind(cookie)
            if kind != KIND_SERVICE:
                continue  # table-miss / route flows carry no instance state
            verdict = self._classify_service_flow(stat["match"],
                                                  stat.get("actions", []), live)
            if verdict is None:
                datapath.send_msg(parser.OFPFlowMod(
                    datapath, match=stat["match"],
                    command=ofp.OFPFC_DELETE_STRICT,
                    priority=stat["priority"], cookie=cookie))
                state.gcd += 1
                continue
            first_hop, client, service, cluster, endpoint = verdict
            if first_hop:
                self._resync_seen_cookies.add(cookie)
            if cookie not in self._cookie_cluster:
                self._cookie_cluster[cookie] = cluster.name
                if client is not None:
                    self._cookie_client[cookie] = client
                self.dispatcher.note_flow_installed(cluster)
            if (self.cfg.use_flow_memory and client is not None
                    and self.memory.peek(client, service.service_id) is None):
                self.memory.remember(client, service.service_id,
                                     cluster, endpoint)
            state.reconciled += 1

    def _classify_service_flow(self, match, actions, live):
        """Recognize one of the three flow shapes `_install_and_release`
        wires and check its instance is still live. Returns ``(first_hop,
        client, service, cluster, endpoint)`` or None (-> GC)."""
        src = match.exact_value("ipv4_src")
        dst = match.exact_value("ipv4_dst")
        tcp_dst = match.exact_value("tcp_dst")
        tcp_src = match.exact_value("tcp_src")
        if dst is not None and tcp_dst is not None:
            # Prefix-aware: a first-hop flow for a subnet-registered service
            # matches a covered address, not the registration network.
            service = self.registry.lookup_prefix(dst, tcp_dst)
            if service is not None:
                # First-hop upstream: matches the service address, rewrites
                # to the instance endpoint in its set-field actions.
                endpoint = self._endpoint_from_actions(actions)
                if endpoint is None or endpoint not in live:
                    return None
                cluster, live_service = live[endpoint]
                if live_service.service_id != service.service_id:
                    return None  # endpoint now serves a different service
                return (True, src, service, cluster, endpoint)
            candidate = Endpoint(ip=dst, port=tcp_dst)
            if candidate in live:
                # Transit/egress upstream: matches the rewritten endpoint.
                cluster, service = live[candidate]
                return (False, src, service, cluster, candidate)
            return None
        if src is not None and tcp_src is not None:
            candidate = Endpoint(ip=src, port=tcp_src)
            if candidate in live:
                # Downstream: source is the instance endpoint.
                cluster, service = live[candidate]
                return (False, dst, service, cluster, candidate)
        return None

    def audit_stale_service_flows(self) -> int:
        """Count installed service flows that redirect to an endpoint that
        is no longer live. The reconciliation invariant (docs/faults.md):
        after a completed resync round this is 0 — no client is being
        switched into a dead instance."""
        live = self._live_endpoints()
        stale = 0
        for datapath in self.manager.datapaths.values():
            for stat in datapath.switch.table.stats():
                cookie = stat.get("cookie", 0)
                if (not is_controller_cookie(cookie)
                        or cookie_kind(cookie) != KIND_SERVICE):
                    continue
                if self._classify_service_flow(stat["match"],
                                               stat.get("actions", []),
                                               live) is None:
                    stale += 1
        return stale

    @staticmethod
    def _endpoint_from_actions(actions) -> Optional[Endpoint]:
        """The (ipv4_dst, tcp_dst) rewrite target of a first-hop upstream
        flow's action list, if both set-fields are present."""
        ip = port = None
        for action in actions:
            if isinstance(action, SetFieldAction):
                if action.field == "ipv4_dst":
                    ip = action.value
                elif action.field == "tcp_dst":
                    port = action.value
        if ip is None or port is None:
            return None
        return Endpoint(ip=ip, port=port)

    # -------------------------------------------------------- idle scaledown

    def _on_memory_idle(self, flow: MemorizedFlow, still_referenced: bool) -> None:
        if still_referenced or not self.cfg.auto_scale_down:
            return
        service = self.registry.lookup(flow.service_id.addr, flow.service_id.port,
                                       flow.service_id.protocol)
        if service is None:
            return
        self.log("auto-scale-down", service=service.name, cluster=flow.cluster.name)
        self.dispatcher.engine.scale_down(flow.cluster, service)
        if self.cfg.auto_remove_after_s is not None:
            self.sim.schedule(self.cfg.auto_remove_after_s,
                              self._auto_remove_check, flow.cluster, service)

    def _auto_remove_check(self, cluster: EdgeCluster, service: EdgeService) -> None:
        """Remove the (stopped) containers/objects of a service that stayed
        unused through the grace period (fig. 4's Remove phase)."""
        if self.memory.flows_for_service(service.service_id):
            return  # came back into use
        if cluster.is_ready(service.spec):
            return  # re-deployed meanwhile
        if not cluster.is_created(service.spec):
            return  # already gone
        if self.registry.lookup(service.service_id.addr, service.service_id.port,
                                service.service_id.protocol) is None:
            return  # deregistered; EdgeAdmin owns the cleanup
        self.log("auto-remove", service=service.name, cluster=cluster.name)
        self.dispatcher.engine.remove(cluster, service)
