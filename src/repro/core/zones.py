"""Proximity model: zones and inter-zone RTTs.

Edge clusters are organised hierarchically (§IV-A2): clusters close to the
users are small, clusters on the route to the cloud are bigger and more
likely to have images cached or instances running. A :class:`ZoneMap`
captures that geometry as named zones with pairwise RTTs; the Global
Scheduler uses it to rank clusters by proximity to the requesting client.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.trie import PrefixTrie, prefix_mask
from repro.netsim.addresses import IPv4


class ZoneMap:
    """Named zones with symmetric pairwise RTTs and client-IP assignment."""

    def __init__(self, default_rtt_s: float = 0.050):
        self._rtt: Dict[Tuple[str, str], float] = {}
        self._client_zone: Dict[IPv4, str] = {}
        #: subnet -> zone assignment, longest-prefix-match semantics
        self._subnet_zone: PrefixTrie[str] = PrefixTrie()
        self.default_rtt_s = default_rtt_s
        self._zones: set[str] = set()

    # ------------------------------------------------------------ topology

    def add_zone(self, name: str) -> None:
        self._zones.add(name)

    def set_rtt(self, a: str, b: str, rtt_s: float) -> None:
        if rtt_s < 0:
            raise ValueError("negative RTT")
        self._zones.update((a, b))
        self._rtt[(a, b)] = rtt_s
        self._rtt[(b, a)] = rtt_s

    def rtt(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._rtt.get((a, b), self.default_rtt_s)

    @property
    def zones(self) -> set:
        return set(self._zones)

    # ------------------------------------------------------------- clients

    def assign_client(self, addr: IPv4, zone: str) -> None:
        self._zones.add(zone)
        self._client_zone[addr] = zone

    def assign_subnet(self, network: IPv4, prefix_len: int, zone: str) -> None:
        """Assign a whole subnet to a zone (longest-prefix-match wins over
        wider assignments; re-assigning an identical prefix replaces it)."""
        self._zones.add(zone)
        self._subnet_zone.insert(network.value & prefix_mask(prefix_len),
                                 prefix_len, zone)

    def zone_of(self, addr: IPv4, default: str = "default") -> str:
        zone = self._client_zone.get(addr)
        if zone is not None:
            return zone
        match = self._subnet_zone.lookup(addr.value)
        if match is not None:
            return match[2]
        return default

    def nearest(self, client_zone: str, candidates: Iterable[str]) -> Optional[str]:
        best: Optional[str] = None
        best_rtt = float("inf")
        for zone in candidates:
            rtt = self.rtt(client_zone, zone)
            # Ties break on the zone name, NOT on iteration order: callers
            # pass sets, and "first seen wins" would make the winner depend
            # on PYTHONHASHSEED (REP003).
            if rtt < best_rtt or (rtt == best_rtt
                                  and best is not None and zone < best):
                best, best_rtt = zone, rtt
        return best
