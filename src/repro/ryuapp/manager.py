"""The controller runtime: single-threaded event dispatch to RyuApps.

Ryu runs applications on one eventlet thread; handler execution serializes.
The :class:`AppManager` reproduces that: messages from all switches enter one
FIFO queue and a dispatcher process charges a configurable per-event service
time before running the handlers. Controller CPU time is therefore a shared,
contended resource — which is exactly what experiment A3 measures when many
new flows arrive at once.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Type

from repro.openflow.channel import ControlChannel
from repro.openflow.messages import Message
from repro.openflow.switch import OpenFlowSwitch
from repro.ryuapp.base import RyuApp
from repro.ryuapp.datapath import Datapath
from repro.ryuapp.events import MAIN_DISPATCHER, MESSAGE_EVENTS, EventBase, EventOFPStateChange

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Simulator


class AppManager:
    """Hosts RyuApps and pumps switch messages through their handlers.

    Parameters
    ----------
    service_time_s:
        CPU time charged per dispatched event (controller processing cost).
        The paper's EGS-hosted Ryu controller handles a packet-in in a few
        hundred microseconds; 0.0002 s is the calibrated default.
    """

    def __init__(self, sim: "Simulator", service_time_s: float = 0.0002):
        self.sim = sim
        self.service_time_s = service_time_s
        self.apps: List[RyuApp] = []
        self._handlers: Dict[Type[EventBase], List] = {}
        self.datapaths: Dict[int, Datapath] = {}
        self._queue: deque = deque()
        self._pump_running = False
        #: diagnostics
        self.events_dispatched = 0
        self.max_queue_depth = 0

    # ---------------------------------------------------------------- apps

    def register(self, app_class: Type[RyuApp], **config) -> RyuApp:
        """Instantiate ``app_class`` and wire up its declared handlers."""
        app = app_class(self, **config)
        self.apps.append(app)
        for event_class, method in app_class.handlers():
            self._handlers.setdefault(event_class, []).append((app, method))
        app.start()
        return app

    def app(self, app_class: Type[RyuApp]) -> Optional[RyuApp]:
        for candidate in self.apps:
            if isinstance(candidate, app_class):
                return candidate
        return None

    # ------------------------------------------------------------ switches

    def connect_switch(self, switch: OpenFlowSwitch, channel: ControlChannel) -> Datapath:
        """Attach a switch via ``channel``; fires EventOFPStateChange(MAIN)."""
        datapath = Datapath(switch, channel)
        self.datapaths[switch.dpid] = datapath
        switch.connect_controller(channel, self)
        self._enqueue(EventOFPStateChange(datapath, MAIN_DISPATCHER))
        return datapath

    # ControllerEndpoint protocol ----------------------------------------

    def on_switch_message(self, switch: OpenFlowSwitch, message: Message) -> None:
        datapath = self.datapaths.get(switch.dpid)
        if datapath is None:
            return  # message from a switch that was never connected
        message.datapath = datapath  # type: ignore[attr-defined]
        event_class = MESSAGE_EVENTS.get(type(message).__name__)
        if event_class is None:
            return
        self._enqueue(event_class(message))

    # ------------------------------------------------------------- dispatch

    def _enqueue(self, event: EventBase) -> None:
        self._queue.append(event)
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        if not self._pump_running:
            self._pump_running = True
            self.sim.schedule(self.service_time_s, self._pump)

    def _pump(self) -> None:
        if not self._queue:
            self._pump_running = False
            return
        event = self._queue.popleft()
        self._dispatch(event)
        if self._queue:
            self.sim.schedule(self.service_time_s, self._pump)
        else:
            self._pump_running = False

    def _dispatch(self, event: EventBase) -> None:
        self.events_dispatched += 1
        for event_class, handlers in self._handlers.items():
            if isinstance(event, event_class):
                for app, method in handlers:
                    method(app, event)

    # ------------------------------------------------------------- shutdown

    def stop(self) -> None:
        for app in self.apps:
            app.stop()
