"""The controller runtime: single-threaded event dispatch to RyuApps.

Ryu runs applications on one eventlet thread; handler execution serializes.
The :class:`AppManager` reproduces that: messages from all switches enter one
FIFO queue and a dispatcher process charges a configurable per-event service
time before running the handlers. Controller CPU time is therefore a shared,
contended resource — which is exactly what experiment A3 measures when many
new flows arrive at once.

Resilience (docs/faults.md): the manager also models the controller
*process*. :meth:`crash` kills it — queued events are lost, every control
channel drops, apps get their ``on_crash`` hook — and :meth:`restart` brings
it back (channels reconnect, apps get ``on_restart``, and a MAIN state-change
fires per datapath so apps can resynchronize). The ``controller.crash``
fault point rolls per dispatched event; ``controller.restart`` sets the
injected downtime. :meth:`enable_heartbeat` arms the controller-side echo
heartbeat that detects switch/channel outages.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Type

from repro.metrics.recovery import RecoveryLog
from repro.openflow.channel import ControlChannel
from repro.openflow.messages import EchoReply, EchoRequest, Message
from repro.openflow.switch import OpenFlowSwitch
from repro.ryuapp.base import RyuApp
from repro.ryuapp.datapath import Datapath
from repro.ryuapp.events import (
    DEAD_DISPATCHER,
    MAIN_DISPATCHER,
    MESSAGE_EVENTS,
    EventBase,
    EventOFPStateChange,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Simulator

#: injected downtime of a ``controller.crash`` when the ``controller.restart``
#: fault point does not specify one
DEFAULT_RESTART_DELAY_S = 1.0


class AppManager:
    """Hosts RyuApps and pumps switch messages through their handlers.

    Parameters
    ----------
    service_time_s:
        CPU time charged per dispatched event (controller processing cost).
        The paper's EGS-hosted Ryu controller handles a packet-in in a few
        hundred microseconds; 0.0002 s is the calibrated default.
    """

    def __init__(self, sim: "Simulator", service_time_s: float = 0.0002):
        self.sim = sim
        self.service_time_s = service_time_s
        self.apps: List[RyuApp] = []
        self._handlers: Dict[Type[EventBase], List] = {}
        self.datapaths: Dict[int, Datapath] = {}
        self._queue: deque = deque()
        self._pump_running = False
        #: False while the controller process is crashed
        self.alive = True
        #: recovery measurement (detections + resyncs; see repro.metrics)
        self.recovery = RecoveryLog()
        # ---- heartbeat (off unless enable_heartbeat() is called)
        self._heartbeat_interval_s: Optional[float] = None
        self._heartbeat_miss_limit = 3
        self._heartbeat_handle: Optional[Any] = None
        self._next_echo_xid = 1
        #: diagnostics
        self.events_dispatched = 0
        self.max_queue_depth = 0
        self.crashes = 0
        self.events_lost = 0

    # ---------------------------------------------------------------- apps

    def register(self, app_class: Type[RyuApp], **config: Any) -> RyuApp:
        """Instantiate ``app_class`` and wire up its declared handlers."""
        app = app_class(self, **config)
        self.apps.append(app)
        for event_class, method in app_class.handlers():
            self._handlers.setdefault(event_class, []).append((app, method))
        app.start()
        return app

    def app(self, app_class: Type[RyuApp]) -> Optional[RyuApp]:
        for candidate in self.apps:
            if isinstance(candidate, app_class):
                return candidate
        return None

    # ------------------------------------------------------------ switches

    def connect_switch(self, switch: OpenFlowSwitch, channel: ControlChannel) -> Datapath:
        """Attach a switch via ``channel``; fires EventOFPStateChange(MAIN)."""
        datapath = Datapath(switch, channel)
        self.datapaths[switch.dpid] = datapath
        switch.connect_controller(channel, self)
        self._enqueue(EventOFPStateChange(datapath, MAIN_DISPATCHER))
        return datapath

    # ControllerEndpoint protocol ----------------------------------------

    def on_switch_message(self, switch: OpenFlowSwitch, message: Message) -> None:
        if not self.alive:
            return  # crashed process reads nothing off its sockets
        datapath = self.datapaths.get(switch.dpid)
        if datapath is None:
            return  # message from a switch that was never connected
        # Any message from the switch proves the channel is alive.
        datapath.echo_outstanding = 0
        if not datapath.alive:
            self._revive_datapath(datapath)
        if isinstance(message, EchoRequest):
            # Answered at the protocol layer (like Ryu's OF handshake code),
            # not queued through app dispatch.
            datapath.channel.to_switch(EchoReply(payload=message.payload,
                                                 xid=message.xid))
            return
        message.datapath = datapath  # type: ignore[attr-defined]
        event_class = MESSAGE_EVENTS.get(type(message).__name__)
        if event_class is None:
            return
        self._enqueue(event_class(message))

    # ------------------------------------------------------------ heartbeat

    def enable_heartbeat(self, interval_s: float = 1.0, miss_limit: int = 3) -> None:
        """Probe every datapath with an EchoRequest each ``interval_s``;
        after ``miss_limit`` unanswered probes the datapath is declared
        dead (``EventOFPStateChange(DEAD_DISPATCHER)``); the first message
        it sends afterwards revives it (``MAIN_DISPATCHER`` fires again so
        apps can resynchronize).

        Off by default — an un-enabled heartbeat schedules nothing, so
        existing runs stay bit-identical."""
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_limit < 1:
            raise ValueError("miss limit must be >= 1")
        self._heartbeat_interval_s = interval_s
        self._heartbeat_miss_limit = miss_limit
        if self._heartbeat_handle is None:
            self._heartbeat_handle = self.sim.schedule(interval_s, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        assert self._heartbeat_interval_s is not None
        self._heartbeat_handle = self.sim.schedule(self._heartbeat_interval_s,
                                                   self._heartbeat_tick)
        if not self.alive:
            return  # a crashed controller probes nothing
        for dpid in sorted(self.datapaths):
            datapath = self.datapaths[dpid]
            if (datapath.alive
                    and datapath.echo_outstanding >= self._heartbeat_miss_limit):
                datapath.alive = False
                down_since = getattr(datapath.channel, "down_since", None)
                self.recovery.record_detection(
                    dpid=dpid, at=self.sim.now,
                    detection_s=(self.sim.now - down_since
                                 if down_since is not None else None))
                self.sim.trace.emit(self.sim.now, "ryu", "datapath-dead",
                                    {"dpid": dpid,
                                     "missed": datapath.echo_outstanding})
                self._enqueue(EventOFPStateChange(datapath, DEAD_DISPATCHER))
            datapath.echo_outstanding += 1
            self._next_echo_xid += 1
            datapath.channel.to_switch(EchoRequest(payload=dpid,
                                                   xid=self._next_echo_xid))

    def _revive_datapath(self, datapath: Datapath) -> None:
        datapath.alive = True
        self.sim.trace.emit(self.sim.now, "ryu", "datapath-revived",
                            {"dpid": datapath.id})
        self._enqueue(EventOFPStateChange(datapath, MAIN_DISPATCHER))

    # --------------------------------------------------------- crash/restart

    def crash(self) -> None:
        """The controller process dies: queued events are lost, every
        control channel drops, apps lose their volatile state
        (:meth:`RyuApp.on_crash`). Idempotent while already crashed."""
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.events_lost += len(self._queue)
        self._queue.clear()
        self._pump_running = False
        for datapath in self.datapaths.values():
            datapath.channel.disconnect()
            datapath.alive = False
            datapath.echo_outstanding = 0
        self.sim.trace.emit(self.sim.now, "ryu", "controller-crash",
                            {"events_lost": self.events_lost})
        for app in self.apps:
            app.on_crash()

    def restart(self) -> None:
        """Warm restart after :meth:`crash`: channels reconnect, apps get
        :meth:`RyuApp.on_restart`, then a MAIN state-change fires per
        datapath (apps reconcile from there). Idempotent while alive."""
        if self.alive:
            return
        self.alive = True
        for dpid in sorted(self.datapaths):
            datapath = self.datapaths[dpid]
            datapath.channel.reconnect()
            datapath.alive = True
            datapath.echo_outstanding = 0
        self.sim.trace.emit(self.sim.now, "ryu", "controller-restart", {})
        for app in self.apps:
            app.on_restart()
        for dpid in sorted(self.datapaths):
            self._enqueue(EventOFPStateChange(self.datapaths[dpid],
                                              MAIN_DISPATCHER))

    # ------------------------------------------------------------- dispatch

    def _enqueue(self, event: EventBase) -> None:
        if not self.alive:
            self.events_lost += 1
            return
        self._queue.append(event)
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        if not self._pump_running:
            self._pump_running = True
            self.sim.schedule(self.service_time_s, self._pump)

    def _pump(self) -> None:
        if not self.alive:
            self._pump_running = False
            return
        if not self._queue:
            self._pump_running = False
            return
        if self.sim.faults.roll("controller.crash"):
            # The process dies mid-event-loop; the injected downtime comes
            # from the controller.restart point (defaulting to 1 s).
            self.crash()
            delay = self.sim.faults.stall("controller.restart") or DEFAULT_RESTART_DELAY_S
            self.sim.schedule(delay, self.restart)
            return
        event = self._queue.popleft()
        self._dispatch(event)
        if self._queue:
            self.sim.schedule(self.service_time_s, self._pump)
        else:
            self._pump_running = False

    def _dispatch(self, event: EventBase) -> None:
        self.events_dispatched += 1
        for event_class, handlers in self._handlers.items():
            if isinstance(event, event_class):
                for app, method in handlers:
                    method(app, event)

    # ------------------------------------------------------------- shutdown

    def stop(self) -> None:
        for app in self.apps:
            app.stop()
