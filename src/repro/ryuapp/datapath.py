"""Controller-side handle for a connected switch (Ryu's ``Datapath``)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.openflow.messages import Message
from repro.ryuapp.parser import ofproto_v1_3, ofproto_v1_3_parser

if TYPE_CHECKING:  # pragma: no cover
    from repro.openflow.channel import ControlChannel
    from repro.openflow.switch import OpenFlowSwitch


class Datapath:
    """What a handler sees as ``ev.msg.datapath``.

    ``send_msg`` pushes messages down the control channel; ``ofproto`` /
    ``ofproto_parser`` expose the protocol façade. ``id`` is the dpid, as in
    Ryu.
    """

    def __init__(self, switch: "OpenFlowSwitch", channel: "ControlChannel"):
        self.switch = switch
        self.channel = channel
        self.id = switch.dpid
        self.ofproto = ofproto_v1_3
        self.ofproto_parser = ofproto_v1_3_parser
        #: diagnostics
        self.msgs_sent = 0
        # ---- controller-side liveness (driven by AppManager's heartbeat;
        # without a heartbeat these never change)
        #: False once the heartbeat declares the switch unreachable
        self.alive = True
        #: unanswered heartbeat echoes (reset by any message from the switch)
        self.echo_outstanding = 0

    def send_msg(self, message: Message) -> None:
        self.msgs_sent += 1
        self.channel.to_switch(message)

    @property
    def name(self) -> str:
        return self.switch.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datapath dpid={self.id} ({self.switch.name})>"
