"""Ryu-style controller application framework.

The paper's open-source controller is built on the Ryu SDN framework. This
package reproduces the Ryu programming model against the simulated OpenFlow
substrate so the transparent-edge controller code reads like the original:

* :class:`RyuApp` subclasses declare handlers with ``@set_ev_cls``;
* handlers receive ``ev`` objects with ``ev.msg`` / ``ev.msg.datapath``;
* ``datapath.ofproto`` / ``datapath.ofproto_parser`` expose the familiar
  ``OFPMatch`` / ``OFPActionSetField`` / ``OFPFlowMod`` constructors;
* the :class:`AppManager` runs apps on a single-threaded event loop with a
  configurable per-event service time — Ryu itself is single-threaded
  (eventlet), and this serialization is what experiment A3 stresses.
"""

from repro.ryuapp.base import RyuApp, set_ev_cls
from repro.ryuapp.datapath import Datapath
from repro.ryuapp.events import (
    CONFIG_DISPATCHER,
    DEAD_DISPATCHER,
    MAIN_DISPATCHER,
    EventBase,
    EventOFPBarrierReply,
    EventOFPEchoReply,
    EventOFPFlowRemoved,
    EventOFPFlowStatsReply,
    EventOFPPacketIn,
    EventOFPStateChange,
)
from repro.ryuapp.manager import AppManager
from repro.ryuapp.parser import ofproto_v1_3, ofproto_v1_3_parser

__all__ = [
    "RyuApp",
    "set_ev_cls",
    "AppManager",
    "Datapath",
    "ofproto_v1_3",
    "ofproto_v1_3_parser",
    "EventBase",
    "EventOFPPacketIn",
    "EventOFPFlowRemoved",
    "EventOFPFlowStatsReply",
    "EventOFPEchoReply",
    "EventOFPBarrierReply",
    "EventOFPStateChange",
    "MAIN_DISPATCHER",
    "CONFIG_DISPATCHER",
    "DEAD_DISPATCHER",
]
