"""Event classes mirroring ``ryu.controller.ofp_event``."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.ryuapp.datapath import Datapath

# Dispatcher phases (API fidelity with ryu.controller.handler).
CONFIG_DISPATCHER = "config"
MAIN_DISPATCHER = "main"
DEAD_DISPATCHER = "dead"


class EventBase:
    """Base event; ``msg`` is the protocol message with ``.datapath`` set."""

    def __init__(self, msg: Any):
        self.msg = msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.msg!r}>"


class EventOFPPacketIn(EventBase):
    """A PacketIn arrived from a datapath."""


class EventOFPFlowRemoved(EventBase):
    """A flow entry with SEND_FLOW_REM expired or was deleted."""


class EventOFPFlowStatsReply(EventBase):
    """Reply to an OFPFlowStatsRequest."""


class EventOFPEchoReply(EventBase):
    """Echo round-trip completed (used to measure control-channel RTT)."""


class EventOFPBarrierReply(EventBase):
    """Barrier completed."""


class EventOFPStateChange(EventBase):
    """Datapath entered/left MAIN_DISPATCHER (connect/disconnect).

    ``msg`` is the :class:`Datapath`; ``state`` the new dispatcher phase.
    """

    def __init__(self, datapath: "Datapath", state: str):
        super().__init__(datapath)
        self.datapath = datapath
        self.state = state


#: message-class name -> event class (AppManager routing table)
MESSAGE_EVENTS = {
    "PacketIn": EventOFPPacketIn,
    "FlowRemoved": EventOFPFlowRemoved,
    "FlowStatsReply": EventOFPFlowStatsReply,
    "EchoReply": EventOFPEchoReply,
    "BarrierReply": EventOFPBarrierReply,
}
