"""``ofproto`` / ``ofproto_parser`` façades in the shape of Ryu's OF 1.3
modules, mapped onto :mod:`repro.openflow` objects.

The transparent-edge controller code uses these exactly as it would with
Ryu, e.g.::

    parser = datapath.ofproto_parser
    ofp = datapath.ofproto
    match = parser.OFPMatch(eth_type=0x0800, ipv4_dst=service.ip, tcp_dst=service.port)
    actions = [parser.OFPActionSetField(ipv4_dst=instance.ip),
               parser.OFPActionSetField(eth_dst=instance.mac),
               parser.OFPActionOutput(instance.port_no)]
    datapath.send_msg(parser.OFPFlowMod(datapath, match=match, priority=10,
                                        actions=actions, idle_timeout=15,
                                        buffer_id=msg.buffer_id))
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, List, Optional

from repro.openflow import constants as _c
from repro.openflow.actions import Action, OutputAction, SetFieldAction
from repro.openflow.match import Match
from repro.openflow.messages import BarrierRequest, EchoRequest, FlowMod, FlowStatsRequest, PacketOut

#: Constants namespace, mirroring ``ryu.ofproto.ofproto_v1_3``.
ofproto_v1_3 = SimpleNamespace(
    OFPP_CONTROLLER=_c.OFPP_CONTROLLER,
    OFPP_FLOOD=_c.OFPP_FLOOD,
    OFPP_IN_PORT=_c.OFPP_IN_PORT,
    OFPP_ALL=_c.OFPP_ALL,
    OFPP_ANY=_c.OFPP_ANY,
    OFP_NO_BUFFER=_c.OFP_NO_BUFFER,
    OFPR_NO_MATCH=_c.OFPR_NO_MATCH,
    OFPR_ACTION=_c.OFPR_ACTION,
    OFPRR_IDLE_TIMEOUT=_c.OFPRR_IDLE_TIMEOUT,
    OFPRR_HARD_TIMEOUT=_c.OFPRR_HARD_TIMEOUT,
    OFPRR_DELETE=_c.OFPRR_DELETE,
    OFPFF_SEND_FLOW_REM=_c.OFPFF_SEND_FLOW_REM,
    OFPFC_ADD=_c.OFPFC_ADD,
    OFPFC_MODIFY=_c.OFPFC_MODIFY,
    OFPFC_DELETE=_c.OFPFC_DELETE,
    OFPFC_DELETE_STRICT=_c.OFPFC_DELETE_STRICT,
)


class _Parser:
    """Constructor namespace, mirroring ``ryu.ofproto.ofproto_v1_3_parser``."""

    @staticmethod
    def OFPMatch(**kwargs: Any) -> Match:
        return Match(**kwargs)

    @staticmethod
    def OFPActionOutput(port: int, max_len: int = 0) -> OutputAction:
        return OutputAction(port)

    @staticmethod
    def OFPActionSetField(**kwargs: Any) -> SetFieldAction:
        if len(kwargs) != 1:
            raise ValueError("OFPActionSetField takes exactly one field=value")
        (field, value), = kwargs.items()
        return SetFieldAction(field, value)

    @staticmethod
    def OFPFlowMod(
        datapath: Any,
        match: Optional[Match] = None,
        priority: int = 1,
        actions: Optional[List[Action]] = None,
        command: int = _c.OFPFC_ADD,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
        flags: int = 0,
        buffer_id: int = _c.OFP_NO_BUFFER,
    ) -> FlowMod:
        return FlowMod(
            match=match if match is not None else Match(),
            priority=priority,
            actions=list(actions) if actions else [],
            command=command,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
            flags=flags,
            buffer_id=buffer_id,
        )

    @staticmethod
    def OFPPacketOut(
        datapath: Any,
        buffer_id: int = _c.OFP_NO_BUFFER,
        in_port: int = 0,
        actions: Optional[List[Action]] = None,
        data: Any = None,
    ) -> PacketOut:
        return PacketOut(
            buffer_id=buffer_id,
            in_port=in_port,
            actions=list(actions) if actions else [],
            frame=data,
        )

    @staticmethod
    def OFPFlowStatsRequest(datapath: Any, match: Optional[Match] = None) -> FlowStatsRequest:
        return FlowStatsRequest(match=match if match is not None else Match())

    @staticmethod
    def OFPEchoRequest(datapath: Any, data: Any = None) -> EchoRequest:
        return EchoRequest(payload=data)

    @staticmethod
    def OFPBarrierRequest(datapath: Any) -> BarrierRequest:
        return BarrierRequest()


ofproto_v1_3_parser = _Parser()
