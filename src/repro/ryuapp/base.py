"""``RyuApp`` base class and the ``set_ev_cls`` handler decorator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Type, Union

from repro.ryuapp.events import MAIN_DISPATCHER, EventBase

if TYPE_CHECKING:  # pragma: no cover
    from repro.ryuapp.manager import AppManager
    from repro.simcore import Process, Simulator

_HANDLER_ATTR = "_ryu_handler_for"


def set_ev_cls(
    event_class: Union[Type[EventBase], Iterable[Type[EventBase]]],
    dispatchers: Union[str, Iterable[str]] = MAIN_DISPATCHER,
) -> Callable:
    """Decorator registering a method as a handler for an event class.

    Matches Ryu's signature; the dispatcher argument is recorded but (as in
    most Ryu apps) only MAIN_DISPATCHER handlers matter here.
    """
    classes = [event_class] if isinstance(event_class, type) else list(event_class)

    def decorator(func: Callable) -> Callable:
        setattr(func, _HANDLER_ATTR, classes)
        return func

    return decorator


class RyuApp:
    """Base class for controller applications.

    Subclasses declare handlers with :func:`set_ev_cls`; the
    :class:`~repro.ryuapp.manager.AppManager` collects them at registration
    time. Apps get:

    * ``self.sim`` — the simulator (for time and scheduling),
    * ``self.spawn(gen)`` — Ryu's ``hub.spawn`` equivalent,
    * ``self.logger`` — a tiny trace-backed logger.
    """

    def __init__(self, manager: "AppManager", **config: Any):
        self.manager = manager
        self.sim: "Simulator" = manager.sim
        self.config = config
        self.name = type(self).__name__

    # ----------------------------------------------------------- utilities

    def spawn(self, generator: Any, name: str = "") -> "Process":
        """Start a green-thread-style process (Ryu's ``hub.spawn``)."""
        return self.sim.spawn(generator, name=name or f"{self.name}.task")

    def log(self, event: str, **data: Any) -> None:
        self.sim.trace.emit(self.sim.now, "app." + self.name, event, data)

    # -------------------------------------------------------- introspection

    @classmethod
    def handlers(cls) -> List[tuple]:
        """All (event_class, unbound_method) pairs declared on this class."""
        out = []
        for attr_name in dir(cls):
            attr = getattr(cls, attr_name, None)
            event_classes = getattr(attr, _HANDLER_ATTR, None)
            if event_classes:
                for event_class in event_classes:
                    out.append((event_class, attr))
        return out

    # --------------------------------------------------------------- hooks

    def start(self) -> None:
        """Called once by the manager after registration (override freely)."""

    def stop(self) -> None:
        """Called when the manager shuts the app down."""

    def on_crash(self) -> None:
        """Called when the hosting controller process crashes
        (:meth:`AppManager.crash`): drop all volatile state — a restarted
        controller must rebuild it by reconciliation, not remember it."""

    def on_restart(self) -> None:
        """Called when the crashed controller comes back up
        (:meth:`AppManager.restart`), *before* the per-datapath
        reconnect state-change events fire."""
