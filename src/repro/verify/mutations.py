"""Planted-violation mutations: break a healthy snapshot on purpose.

Every mutation is *pure snapshot surgery* — it returns a new
:class:`NetworkSnapshot` value and never touches the live simulation — and
comes with the single invariant ID the verifier must flag it with (and
nothing else). The :data:`PLANTED` registry drives both the CLI
(``python -m repro.verify --planted``) and the mutation test suite: a
checker that misses a plant, or flags it under the wrong invariant, fails
both.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.core.cookies import KIND_ROUTE, KIND_SERVICE, make_cookie
from repro.openflow.actions import Action, OutputAction, SetFieldAction
from repro.openflow.constants import OFPP_CONTROLLER

from repro.verify.invariants import _find_reverse, _rewrite_endpoint
from repro.verify.model import (
    V1_BLACKHOLE,
    V2_LOOP,
    V3_TRANSPARENCY,
    V4_COHERENCE,
    V5_SHADOWING,
)
from repro.verify.snapshot import LinkView, NetworkSnapshot, RuleView, SwitchView

#: ports/dpids guaranteed unused by the testbeds (small port numbers, dpid 1..n)
_LOOP_PORT = 991
_GHOST_DPID = 999
_VOID_PORT = 4077


class NothingToMutate(ValueError):
    """The snapshot holds no first-hop service flow to corrupt."""


def _first_hop(snapshot: NetworkSnapshot) -> Tuple[SwitchView, RuleView]:
    """The first installed client→edge redirect, deterministically."""
    for view in snapshot.switches:
        for rule in view.rules:  # table order
            if (snapshot.service(rule.match.exact_value("ipv4_dst"),
                                 rule.match.exact_value("tcp_dst")) is None
                    or rule.match.exact_value("ipv4_src") is None):
                continue
            if _rewrite_endpoint(rule) is not None:
                return view, rule
    raise NothingToMutate("no first-hop redirect rule in snapshot")


def _swap_switch(snapshot: NetworkSnapshot,
                 replacement: SwitchView) -> NetworkSnapshot:
    switches = tuple(replacement if view.dpid == replacement.dpid else view
                     for view in snapshot.switches)
    return dataclasses.replace(snapshot, switches=switches)


def _table_order(rules: List[RuleView]) -> Tuple[RuleView, ...]:
    return tuple(sorted(rules, key=lambda r: (-r.priority, r.seq)))


def _with_rules(view: SwitchView, add: Tuple[RuleView, ...] = (),
                drop: Tuple[RuleView, ...] = (),
                swap: Optional[Tuple[RuleView, RuleView]] = None,
                ) -> SwitchView:
    rules = [r for r in view.rules if r not in drop]
    if swap is not None:
        rules = [swap[1] if r is swap[0] else r for r in rules]
    rules.extend(add)
    return dataclasses.replace(view, rules=_table_order(rules),
                               generation=view.generation + 1)


def _next_seq(view: SwitchView) -> int:
    return max((r.seq for r in view.rules), default=0) + 1


def _replace_output(rule: RuleView, port: int) -> RuleView:
    actions: Tuple[Action, ...] = tuple(
        OutputAction(port) if isinstance(a, OutputAction) else a
        for a in rule.actions)
    return dataclasses.replace(rule, actions=actions)


# ---------------------------------------------------------------------------
# the plants
# ---------------------------------------------------------------------------


def plant_blackhole(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Point a redirect at a port with no host and no link → V1."""
    view, rule = _first_hop(snapshot)
    return _swap_switch(snapshot, _with_rules(
        view, swap=(rule, _replace_output(rule, _VOID_PORT))))


def plant_loop(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Bounce the rewritten header between two switches forever → V2."""
    view, rule = _first_hop(snapshot)
    endpoint = _rewrite_endpoint(rule)
    assert endpoint is not None
    client = rule.match.exact_value("ipv4_src")
    from repro.openflow.match import Match
    rewritten = Match(eth_type=0x0800, ip_proto=6, ipv4_src=client,
                      ipv4_dst=endpoint[0], tcp_dst=endpoint[1])
    seq = _next_seq(view)
    bounce_out = RuleView(match=rewritten, priority=rule.priority + 5,
                          seq=seq, cookie=rule.cookie, flags=0,
                          actions=(OutputAction(_LOOP_PORT),))
    patched = _with_rules(
        view, add=(bounce_out,),
        swap=(rule, _replace_output(rule, _LOOP_PORT)))
    ghost = SwitchView(
        dpid=_GHOST_DPID, name="ghost", generation=1,
        microflow_generation=-1,
        rules=(RuleView(match=rewritten, priority=rule.priority, seq=1,
                        cookie=rule.cookie, flags=0,
                        actions=(OutputAction(1),)),),
        stale_cache=())
    adjacency = snapshot.adjacency + (
        LinkView(dpid=view.dpid, port_no=_LOOP_PORT,
                 peer_dpid=_GHOST_DPID, peer_port=1),
        LinkView(dpid=_GHOST_DPID, port_no=1,
                 peer_dpid=view.dpid, peer_port=_LOOP_PORT))
    switches = tuple(patched if v.dpid == view.dpid else v
                     for v in snapshot.switches) + (ghost,)
    return dataclasses.replace(snapshot, switches=switches,
                               adjacency=adjacency)


def drop_reverse_rewrite(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Remove the downstream half of a redirect plan → V3 (asymmetric)."""
    view, rule = _first_hop(snapshot)
    endpoint = _rewrite_endpoint(rule)
    client = rule.match.exact_value("ipv4_src")
    assert endpoint is not None and client is not None
    reverse = _find_reverse(view, endpoint, client)
    if reverse is None:
        raise NothingToMutate("redirect already lacks its reverse rule")
    return _swap_switch(snapshot, _with_rules(view, drop=(reverse,)))


def corrupt_reverse_rewrite(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Make the reply keep the edge source address → V3 (identity broken)."""
    view, rule = _first_hop(snapshot)
    endpoint = _rewrite_endpoint(rule)
    client = rule.match.exact_value("ipv4_src")
    assert endpoint is not None and client is not None
    reverse = _find_reverse(view, endpoint, client)
    if reverse is None:
        raise NothingToMutate("redirect already lacks its reverse rule")
    actions: Tuple[Action, ...] = tuple(
        SetFieldAction("ipv4_src", endpoint[0])
        if isinstance(a, SetFieldAction) and a.field == "ipv4_src" else a
        for a in reverse.actions)
    corrupted = dataclasses.replace(reverse, actions=actions)
    return _swap_switch(snapshot, _with_rules(view,
                                              swap=(reverse, corrupted)))


def plant_stale_cookie(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Book load for a cookie no switch carries → V4 (strict mode)."""
    control = snapshot.control
    cluster = (control.live_endpoints[0].cluster
               if control.live_endpoints else "docker-egs")
    cookie = make_cookie(control.epoch, KIND_SERVICE, 0xABCDE)
    existing = {c for c, _ in control.cookie_cluster}
    if cookie in existing:
        raise NothingToMutate("sentinel cookie collides with a live plan")
    patched = dataclasses.replace(
        control, cookie_cluster=control.cookie_cluster + ((cookie, cluster),))
    return dataclasses.replace(snapshot, control=patched)


def shadow_redirect(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Install a higher-priority rule covering a redirect → V5."""
    view, rule = _first_hop(snapshot)
    shadow = RuleView(match=rule.match, priority=rule.priority + 10,
                      seq=_next_seq(view),
                      cookie=make_cookie(snapshot.control.epoch,
                                         KIND_ROUTE, 0),
                      flags=0, actions=(OutputAction(OFPP_CONTROLLER),))
    return _swap_switch(snapshot, _with_rules(view, add=(shadow,)))


def plant_stale_cache_entry(snapshot: NetworkSnapshot) -> NetworkSnapshot:
    """Pretend a microflow-cache entry survived an invalidation → V5."""
    view = snapshot.switches[0]
    patched = dataclasses.replace(
        view, stale_cache=view.stale_cache + ("planted:ipv4-flow->p20",))
    return _swap_switch(snapshot, patched)


#: name -> (mutator, the one invariant ID it must trip)
PLANTED: Tuple[Tuple[str, Callable[[NetworkSnapshot], NetworkSnapshot], str], ...] = (
    ("blackhole", plant_blackhole, V1_BLACKHOLE),
    ("loop", plant_loop, V2_LOOP),
    ("asymmetric-rewrite", drop_reverse_rewrite, V3_TRANSPARENCY),
    ("leaky-reverse-rewrite", corrupt_reverse_rewrite, V3_TRANSPARENCY),
    ("stale-cookie", plant_stale_cookie, V4_COHERENCE),
    ("shadowed-redirect", shadow_redirect, V5_SHADOWING),
    ("stale-cache-entry", plant_stale_cache_entry, V5_SHADOWING),
)
