"""Frozen, pure views of the network for verification.

A :class:`NetworkSnapshot` captures everything the invariants read — every
switch's flow table (in table order), the physical/learned topology, and the
controller's bookkeeping (registry, live endpoints, :class:`FlowMemory`,
cookie→cluster ledger) — as immutable value objects. Building a snapshot
never mutates the simulation: all reads are peek-style (no ``table.lookup``,
no ``FlowMemory.lookup``), so snapshotting mid-run cannot perturb a
deterministic trace.

Two builders cover the two vantage points:

* :func:`snapshot_control_plane` — what the *controller* can see (learned
  hosts, fabric config, connected datapaths). This is what the sanitizer
  hook uses after a resync.
* :func:`snapshot_testbed` — ground truth from a :class:`Testbed`: host
  attachments and inter-switch adjacency are read from the physical links,
  so a controller with a stale host table cannot hide a blackhole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.netsim.addresses import IPv4, MAC
from repro.openflow.actions import Action
from repro.openflow.match import Match


@dataclass(frozen=True)
class RuleView:
    """One installed flow entry, stripped to what verification reads."""

    match: Match
    priority: int
    #: install sequence — tie-break among equal priorities (FIFO semantics)
    seq: int
    cookie: int
    flags: int
    actions: Tuple[Action, ...]

    def label(self) -> str:
        """Stable human-readable identifier (field-based, not seq-based)."""
        conds = ",".join(f"{fld}={val}" for fld, val in self.match.items())
        return f"rule[p{self.priority} {conds or 'any'}]"


@dataclass(frozen=True)
class SwitchView:
    """One datapath: its rules in table order plus cache observability."""

    dpid: int
    name: str
    generation: int
    microflow_generation: int
    #: rules in flow-table order (descending priority, ascending seq)
    rules: Tuple[RuleView, ...]
    #: descriptors of microflow-cache entries that a table mutation should
    #: have invalidated but did not (computed at snapshot time)
    stale_cache: Tuple[str, ...]


@dataclass(frozen=True)
class HostView:
    """A host attachment point (ground truth or controller-learned)."""

    ip: IPv4
    dpid: int
    port_no: int
    mac: MAC


@dataclass(frozen=True)
class LinkView:
    """One *directed* inter-switch hop: out ``port_no`` lands on peer."""

    dpid: int
    port_no: int
    peer_dpid: int
    peer_port: int


@dataclass(frozen=True)
class ServiceView:
    """A registered edge service identity (the vIP the client dials)."""

    addr: IPv4
    port: int
    name: str


@dataclass(frozen=True)
class EndpointView:
    """A live, ready edge instance endpoint and the service it serves."""

    ip: IPv4
    port: int
    cluster: str
    service_addr: IPv4
    service_port: int


@dataclass(frozen=True)
class MemoryView:
    """One FlowMemory record: client × service → chosen endpoint."""

    client: IPv4
    service_addr: IPv4
    service_port: int
    endpoint_ip: IPv4
    endpoint_port: int
    cluster: str


@dataclass(frozen=True)
class ControlView:
    """The controller-side state the coherence invariants read."""

    alive: bool
    epoch: int
    use_flow_memory: bool
    vgw_ip: IPv4
    vgw_mac: MAC
    services: Tuple[ServiceView, ...]
    live_endpoints: Tuple[EndpointView, ...]
    memory: Tuple[MemoryView, ...]
    #: (cookie, cluster-name) pairs from the load-bookkeeping ledger
    cookie_cluster: Tuple[Tuple[int, str], ...]


@dataclass
class NetworkSnapshot:
    """An immutable network state with precomputed lookup indexes.

    The tuples are the value; the dict indexes are derived in
    ``__post_init__`` so :func:`dataclasses.replace` (used by the
    planted-violation mutations) rebuilds them automatically.
    """

    switches: Tuple[SwitchView, ...]
    adjacency: Tuple[LinkView, ...]
    hosts: Tuple[HostView, ...]
    control: ControlView

    _switch_by_dpid: Dict[int, SwitchView] = field(
        init=False, repr=False, compare=False)
    _peer_by_port: Dict[Tuple[int, int], Tuple[int, int]] = field(
        init=False, repr=False, compare=False)
    _host_by_attachment: Dict[Tuple[int, int], HostView] = field(
        init=False, repr=False, compare=False)
    _host_by_ip: Dict[IPv4, HostView] = field(
        init=False, repr=False, compare=False)
    _service_by_key: Dict[Tuple[IPv4, int], ServiceView] = field(
        init=False, repr=False, compare=False)
    _endpoint_by_key: Dict[Tuple[IPv4, int], EndpointView] = field(
        init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._switch_by_dpid = {view.dpid: view for view in self.switches}
        self._peer_by_port = {
            (link.dpid, link.port_no): (link.peer_dpid, link.peer_port)
            for link in self.adjacency}
        self._host_by_attachment = {
            (host.dpid, host.port_no): host for host in self.hosts}
        self._host_by_ip = {host.ip: host for host in self.hosts}
        self._service_by_key = {
            (svc.addr, svc.port): svc for svc in self.control.services}
        self._endpoint_by_key = {
            (ep.ip, ep.port): ep for ep in self.control.live_endpoints}

    # ------------------------------------------------------------- lookups

    def switch(self, dpid: int) -> Optional[SwitchView]:
        return self._switch_by_dpid.get(dpid)

    def peer(self, dpid: int, port_no: int) -> Optional[Tuple[int, int]]:
        """(peer_dpid, peer_port) when the port is an inter-switch link."""
        return self._peer_by_port.get((dpid, port_no))

    def host_at(self, dpid: int, port_no: int) -> Optional[HostView]:
        return self._host_by_attachment.get((dpid, port_no))

    def host(self, ip: IPv4) -> Optional[HostView]:
        return self._host_by_ip.get(ip)

    def service(self, addr: Optional[IPv4],
                port: Optional[int]) -> Optional[ServiceView]:
        if addr is None or port is None:
            return None
        return self._service_by_key.get((addr, port))

    def endpoint(self, ip: Optional[IPv4],
                 port: Optional[int]) -> Optional[EndpointView]:
        if ip is None or port is None:
            return None
        return self._endpoint_by_key.get((ip, port))

    @property
    def total_rules(self) -> int:
        return sum(len(view.rules) for view in self.switches)


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _switch_view(switch: Any) -> SwitchView:
    """Freeze one :class:`OpenFlowSwitch` (table + stale-cache audit)."""
    table = switch.table
    rules = tuple(
        RuleView(match=entry.match, priority=entry.priority, seq=entry.seq,
                 cookie=entry.cookie, flags=entry.flags,
                 actions=tuple(entry.actions))
        for entry in table.entries)
    stale = _stale_cache(switch, table)
    return SwitchView(dpid=switch.dpid, name=switch.name,
                      generation=table.generation,
                      microflow_generation=switch._microflow_generation,
                      rules=rules, stale_cache=stale)


def _stale_cache(switch: Any, table: Any) -> Tuple[str, ...]:
    """Microflow-cache entries that should have been invalidated.

    Surgical mode (the default) claims the cache is *always* current —
    eviction hooks fire inside every table mutation — so every cached
    answer, positive or negative, is audited against the table's
    counter-free reference scan (``lookup_linear``, so the audit cannot
    perturb lookup statistics).

    In coarse mode the cache is invalidated *lazily* — ``on_frame``
    flushes it when the table generation moved — so a generation mismatch
    at snapshot time is benign. The corruption the verifier hunts there is
    the opposite case: the cache claims to be current (generations equal)
    while holding an answer the table no longer gives — a removed entry,
    or an entry object the table has since replaced at the same
    (match, priority) slot.
    """
    stale = []
    if getattr(switch, "microflow_surgical", False):
        for key in sorted(switch._microflow, key=repr):
            entry = switch._microflow[key]
            live = table.lookup_linear(dict(key))
            if live is not entry:
                priority = "drop" if entry is None else f"p{entry.priority}"
                stale.append(f"{dict(key)!r}->{priority}")
        return tuple(stale)
    if switch._microflow_generation != table.generation:
        return ()
    for key in sorted(switch._microflow, key=repr):
        entry = switch._microflow[key]
        if entry is None:
            continue  # a cached drop can only be wrong if the table mutated
        if entry.removed or table._match_index.get(
                (entry.match, entry.priority)) is not entry:
            stale.append(f"{dict(key)!r}->p{entry.priority}")
    return tuple(stale)


def _control_view(controller: Any, alive: bool) -> ControlView:
    """Freeze the controller bookkeeping (pure peek-style reads)."""
    services = tuple(sorted(
        (ServiceView(addr=svc.service_id.addr, port=svc.service_id.port,
                     name=svc.name)
         for svc in controller.registry.services()),
        key=lambda s: (s.addr, s.port)))
    live = controller._live_endpoints()
    endpoints = tuple(sorted(
        (EndpointView(ip=endpoint.ip, port=endpoint.port,
                      cluster=cluster.name,
                      service_addr=service.service_id.addr,
                      service_port=service.service_id.port)
         for endpoint, (cluster, service) in live.items()),
        key=lambda e: (e.ip, e.port)))
    memory_views: Tuple[MemoryView, ...] = ()
    if controller.memory is not None:
        memory_views = tuple(sorted(
            (MemoryView(client=flow.client,
                        service_addr=flow.service_id.addr,
                        service_port=flow.service_id.port,
                        endpoint_ip=flow.endpoint.ip,
                        endpoint_port=flow.endpoint.port,
                        cluster=flow.cluster.name)
             for flow in controller.memory._flows.values()),
            key=lambda m: (m.client, m.service_addr, m.service_port)))
    cookie_cluster = tuple(sorted(controller._cookie_cluster.items()))
    return ControlView(alive=alive, epoch=controller.epoch,
                       use_flow_memory=controller.cfg.use_flow_memory,
                       vgw_ip=controller.cfg.vgw_ip,
                       vgw_mac=controller.cfg.vgw_mac,
                       services=services, live_endpoints=endpoints,
                       memory=memory_views, cookie_cluster=cookie_cluster)


def _learned_hosts(controller: Any) -> Tuple[HostView, ...]:
    return tuple(sorted(
        (HostView(ip=addr, dpid=dpid, port_no=port_no, mac=mac_addr)
         for addr, (dpid, port_no, mac_addr) in controller.hosts.items()),
        key=lambda h: h.ip))


def _controller_hosts(controller: Any) -> Tuple[HostView, ...]:
    """Delivery points the controller knows: learned hosts plus cluster
    attachments. The latter are configuration (they survive ``on_crash``,
    unlike the learned table), so a freshly reconciled redirect that
    outputs toward a cluster node is not misread as a blackhole just
    because no packet has re-taught the node's address yet."""
    hosts: Dict[Tuple[int, int], HostView] = {}
    for view in _learned_hosts(controller):
        hosts.setdefault((view.dpid, view.port_no), view)
    for _name, attachment in sorted(controller.cluster_attachments.items()):
        hosts.setdefault(
            (attachment.dpid, attachment.port_no),
            HostView(ip=attachment.ip, dpid=attachment.dpid,
                     port_no=attachment.port_no, mac=attachment.mac))
    return tuple(sorted(hosts.values(), key=lambda h: (h.dpid, h.port_no)))


def _fabric_adjacency(controller: Any) -> Tuple[LinkView, ...]:
    fabric = controller.cfg.fabric
    if fabric is None:
        return ()
    links = []
    for (dpid_a, dpid_b), port_a in sorted(fabric._ports.items()):
        port_b = fabric._ports[(dpid_b, dpid_a)]
        links.append(LinkView(dpid=dpid_a, port_no=port_a,
                              peer_dpid=dpid_b, peer_port=port_b))
    return tuple(links)


def snapshot_control_plane(manager: Any, controller: Any) -> NetworkSnapshot:
    """Snapshot from the controller's vantage point (learned hosts)."""
    switches = tuple(
        _switch_view(manager.datapaths[dpid].switch)
        for dpid in sorted(manager.datapaths))
    return NetworkSnapshot(
        switches=switches,
        adjacency=_fabric_adjacency(controller),
        hosts=_controller_hosts(controller),
        control=_control_view(controller, alive=manager.alive))


def snapshot_testbed(tb: Any) -> NetworkSnapshot:
    """Snapshot with ground-truth topology from the physical links."""
    from repro.netsim.host import Host
    from repro.openflow.switch import OpenFlowSwitch

    switches = tuple(
        _switch_view(tb.manager.datapaths[dpid].switch)
        for dpid in sorted(tb.manager.datapaths))
    known = {view.dpid for view in switches}

    hosts: Dict[Tuple[int, int], HostView] = {}
    adjacency: Dict[Tuple[int, int], LinkView] = {}
    for link in tb.net.links:
        ends = ((link.a, link.a_port, link.b, link.b_port),
                (link.b, link.b_port, link.a, link.a_port))
        for near, near_port, far, far_port in ends:
            if not isinstance(near, OpenFlowSwitch) or near.dpid not in known:
                continue
            if isinstance(far, Host):
                hosts[(near.dpid, near_port)] = HostView(
                    ip=far.ip, dpid=near.dpid, port_no=near_port, mac=far.mac)
            elif isinstance(far, OpenFlowSwitch) and far.dpid in known:
                adjacency[(near.dpid, near_port)] = LinkView(
                    dpid=near.dpid, port_no=near_port,
                    peer_dpid=far.dpid, peer_port=far_port)
    # Controller-known hosts the physical walk did not cover (e.g. static
    # cloud origins reachable through the egress port) still count as
    # delivery points.
    control = _control_view(tb.controller, alive=tb.manager.alive)
    for view in _controller_hosts(tb.controller):
        hosts.setdefault((view.dpid, view.port_no), view)
    return NetworkSnapshot(
        switches=switches,
        adjacency=tuple(adjacency[key] for key in sorted(adjacency)),
        hosts=tuple(sorted(hosts.values(), key=lambda h: (h.dpid, h.port_no))),
        control=control)
