"""``repro.verify`` — static data-plane verification (Veriflow-style).

Snapshots the network (flow tables, topology, controller bookkeeping),
partitions header space into equivalence classes, symbolically traces each
class through the installed rewrite pipelines, and checks the transparency
invariants V1–V5 (docs/verification.md). Ships a full checker, an
incremental mode keyed on the substrate's generation counters, planted-
violation mutations that prove the checker catches what it claims to, and
a CLI: ``python -m repro.verify``.
"""

from repro.verify.checker import (
    VerifyCaches,
    verify_control_plane,
    verify_snapshot,
    verify_testbed,
)
from repro.verify.headerspace import HeaderClass, enumerate_classes
from repro.verify.incremental import IncrementalVerifier
from repro.verify.model import (
    ALL_INVARIANTS,
    INVARIANTS,
    V1_BLACKHOLE,
    V2_LOOP,
    V3_TRANSPARENCY,
    V4_COHERENCE,
    V5_SHADOWING,
    VerificationReport,
    Violation,
)
from repro.verify.mutations import PLANTED
from repro.verify.snapshot import (
    NetworkSnapshot,
    snapshot_control_plane,
    snapshot_testbed,
)
from repro.verify.trace import trace_class

__all__ = [
    "ALL_INVARIANTS",
    "INVARIANTS",
    "V1_BLACKHOLE",
    "V2_LOOP",
    "V3_TRANSPARENCY",
    "V4_COHERENCE",
    "V5_SHADOWING",
    "HeaderClass",
    "IncrementalVerifier",
    "NetworkSnapshot",
    "PLANTED",
    "VerificationReport",
    "VerifyCaches",
    "Violation",
    "enumerate_classes",
    "snapshot_control_plane",
    "snapshot_testbed",
    "trace_class",
    "verify_control_plane",
    "verify_snapshot",
    "verify_testbed",
]
