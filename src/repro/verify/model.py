"""Structured verification results: :class:`Violation` and the report.

The verifier never prints ad hoc — every finding is a :class:`Violation`
carrying the invariant ID (``V1``..``V5``), the datapath it anchors to, a
stable *subject* (the rule or header class concerned) and a human-readable
detail. Reports order violations deterministically, so a full re-check and
an incremental re-check of the same network state produce byte-identical
output (tests/verify/test_verify_incremental.py holds this as an acceptance
bar).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

#: invariant IDs (docs/verification.md has the long-form contract)
V1_BLACKHOLE = "V1"
V2_LOOP = "V2"
V3_TRANSPARENCY = "V3"
V4_COHERENCE = "V4"
V5_SHADOWING = "V5"

#: id -> one-line meaning, in check order
INVARIANTS: Dict[str, str] = {
    V1_BLACKHOLE: ("no blackhole: every registered service class reaches a "
                   "live edge instance, the cloud origin, or the controller"),
    V2_LOOP: "no forwarding loop, including under set-field rewrites",
    V3_TRANSPARENCY: ("transparency: every client->edge redirect has a "
                      "matching reverse rewrite and rewrite∘reverse is the "
                      "identity on headers"),
    V4_COHERENCE: ("controller/switch coherence: service-flow cookies map to "
                   "live controller bookkeeping and vice versa"),
    V5_SHADOWING: ("no shadowed/dead rules, no microflow-cache entry that "
                   "survived a table mutation"),
}

#: the default checker scope
ALL_INVARIANTS: Tuple[str, ...] = tuple(INVARIANTS)


@dataclass(frozen=True, order=True)
class Violation:
    """One invariant violation, totally ordered for stable reports."""

    invariant: str
    #: datapath the violation anchors to; -1 for network-wide findings
    dpid: int
    #: stable identifier of the offending rule / header class
    subject: str
    detail: str

    def format(self) -> str:
        where = "network" if self.dpid < 0 else f"dpid={self.dpid}"
        return f"[{self.invariant}] {where} {self.subject}: {self.detail}"


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of one verification pass."""

    violations: Tuple[Violation, ...]
    classes_checked: int
    rules_checked: int
    switches_checked: int
    invariants: Tuple[str, ...] = ALL_INVARIANTS

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_invariant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def to_text(self) -> str:
        header = (f"verified {self.classes_checked} header classes / "
                  f"{self.rules_checked} rules / {self.switches_checked} "
                  f"switches [{','.join(self.invariants)}]")
        if self.ok:
            return f"{header}\nOK — zero violations"
        lines = [header, f"{len(self.violations)} violation(s):"]
        lines += [f"  {violation.format()}" for violation in self.violations]
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "classes_checked": self.classes_checked,
            "rules_checked": self.rules_checked,
            "switches_checked": self.switches_checked,
            "invariants": list(self.invariants),
            "violations": [
                {"invariant": v.invariant, "dpid": v.dpid,
                 "subject": v.subject, "detail": v.detail}
                for v in self.violations
            ],
        }, indent=2, sort_keys=True)
