"""The invariant checkers V1–V5 (docs/verification.md is the contract).

Each checker is a pure function of the snapshot (plus prebuilt rule
indices) returning :class:`Violation` lists. The incremental verifier
caches these functions' results keyed on generation counters; the full
checker calls them directly — both therefore produce identical violations
by construction.

Classification of service flows mirrors the controller's resync audit
(``TransparentEdgeController._classify_service_flow``): a *first-hop*
upstream rule matches a registered (vIP, port) and rewrites toward an
endpoint; a *transit* rule matches an already-rewritten header; a
*downstream* rule matches traffic sourced from an endpoint.

V4 deliberately requires cookie bookkeeping only for **first-hop** rules:
in a healthy run the first hop idle-expires milliseconds before the other
hops of the same plan (it saw the last packet first), and its FlowRemoved
pops the cookie from the controller ledger while downstream rules are
still draining — flagging those would make every quiesce point noisy.
The reverse direction (every booked cookie backed by a first-hop rule
somewhere) is gated by ``strict_cookies`` because a FlowRemoved can
legitimately be in flight — or lost to an outage until the next resync.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.cookies import KIND_SERVICE, cookie_kind
from repro.netsim.addresses import IPv4, MAC
from repro.openflow.actions import OutputAction, SetFieldAction

from repro.verify.headerspace import HeaderClass
from repro.verify.model import (
    V1_BLACKHOLE,
    V2_LOOP,
    V3_TRANSPARENCY,
    V4_COHERENCE,
    V5_SHADOWING,
    Violation,
)
from repro.verify.snapshot import NetworkSnapshot, RuleView, SwitchView
from repro.verify.trace import RuleIndex, TraceResult, trace_class


def _set_fields(rule: RuleView) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for action in rule.actions:
        if isinstance(action, SetFieldAction):
            out[action.field] = action.value
    return out


def _rewrite_endpoint(rule: RuleView) -> Optional[Tuple[IPv4, int]]:
    """(ip, port) a rule rewrites the destination toward, if it does."""
    sets = _set_fields(rule)
    dst = sets.get("ipv4_dst")
    if dst is None:
        return None
    port = sets.get("tcp_dst", rule.match.exact_value("tcp_dst"))
    if port is None:
        return None
    return dst, port


# ---------------------------------------------------------------------------
# V1 + V2 — per-class reachability and loop freedom
# ---------------------------------------------------------------------------


def class_violations(snapshot: NetworkSnapshot,
                     indices: Dict[int, RuleIndex],
                     cls: HeaderClass,
                     ) -> Tuple[Tuple[Violation, ...], TraceResult]:
    """Trace one header class and judge its terminals (V1, V2)."""
    trace = trace_class(snapshot, indices, cls)
    violations: List[Violation] = []
    subject = cls.subject()
    for terminal in trace.terminals:
        if terminal.kind == "loop":
            violations.append(Violation(
                V2_LOOP, terminal.dpid, subject,
                "forwarding loop: the header re-enters a switch unchanged "
                "(rewrite cycle or hop budget exhausted)"))
    service = cls.field_dict()
    svc = snapshot.service(service.get("ipv4_dst"), service.get("tcp_dst"))
    if svc is None or trace.has_loop():
        # Not service traffic (nothing promised), or already flagged as V2 —
        # the loop is the root cause, don't double-report it as a blackhole.
        return tuple(violations), trace
    for terminal in trace.terminals:
        violation = _judge_service_terminal(snapshot, svc.addr, terminal)
        if violation is not None:
            violations.append(Violation(V1_BLACKHOLE, terminal.dpid,
                                        subject, violation))
    return tuple(violations), trace


def _judge_service_terminal(snapshot: NetworkSnapshot, service_addr: IPv4,
                            terminal: Any) -> Optional[str]:
    """None when the terminal is an acceptable fate for service traffic."""
    if terminal.kind == "controller":
        return None  # packet-in: the controller will decide afresh
    if terminal.kind == "drop":
        return ("blackholed: no matching rule and no table-miss entry "
                "(packet silently dropped)")
    if terminal.kind == "flood":
        return "service traffic flooded instead of forwarded"
    # egress: a host must be attached and the header must address it
    fields = dict(terminal.fields)
    host = snapshot.host_at(terminal.dpid, terminal.port_no)
    if host is None:
        return (f"forwarded out port {terminal.port_no} with no attached "
                f"host or fabric link")
    final_dst = fields.get("ipv4_dst")
    if host.ip != final_dst:
        return (f"delivered to host {host.ip} but header addresses "
                f"{final_dst} (mis-rewrite or stale route)")
    if final_dst == service_addr:
        return None  # un-rewritten delivery to the cloud origin itself
    if snapshot.endpoint(final_dst, fields.get("tcp_dst")) is None:
        return (f"redirected to {final_dst}:{fields.get('tcp_dst')} which "
                f"is not a live edge endpoint")
    return None


# ---------------------------------------------------------------------------
# V3 — transparency: redirect ∘ reverse == identity
# ---------------------------------------------------------------------------


def transparency_violations(snapshot: NetworkSnapshot,
                            view: SwitchView) -> Tuple[Violation, ...]:
    violations: List[Violation] = []
    for rule in view.rules:
        dst = rule.match.exact_value("ipv4_dst")
        tcp_dst = rule.match.exact_value("tcp_dst")
        if snapshot.service(dst, tcp_dst) is None:
            continue
        sets = _set_fields(rule)
        if "ipv4_dst" not in sets:
            continue  # matches the vIP but does not redirect (e.g. transit)
        subject = rule.label()
        endpoint = _rewrite_endpoint(rule)
        if endpoint is None:
            violations.append(Violation(
                V3_TRANSPARENCY, view.dpid, subject,
                "partial redirect: rewrites ipv4_dst without a resolvable "
                "destination port"))
            continue
        client = rule.match.exact_value("ipv4_src")
        if client is None:
            violations.append(Violation(
                V3_TRANSPARENCY, view.dpid, subject,
                "redirect is not client-scoped: no ipv4_src match, so no "
                "reverse rewrite can be paired"))
            continue
        reverse = _find_reverse(view, endpoint, client)
        if reverse is None:
            violations.append(Violation(
                V3_TRANSPARENCY, view.dpid, subject,
                f"missing reverse rewrite: no rule matches replies from "
                f"{endpoint[0]}:{endpoint[1]} to {client}"))
            continue
        violations.extend(_identity_violations(
            snapshot, view, rule, reverse, client, dst, tcp_dst))
    return tuple(violations)


def _find_reverse(view: SwitchView, endpoint: Tuple[IPv4, int],
                  client: IPv4) -> Optional[RuleView]:
    for rule in view.rules:  # table order: the first hit is the live one
        if (rule.match.exact_value("ipv4_src") == endpoint[0]
                and rule.match.exact_value("tcp_src") == endpoint[1]
                and rule.match.exact_value("ipv4_dst") == client):
            return rule
    return None


def _identity_violations(snapshot: NetworkSnapshot, view: SwitchView,
                         up: RuleView, down: RuleView, client: IPv4,
                         service_addr: Any, service_port: Any,
                         ) -> List[Violation]:
    """rewrite ∘ swap ∘ reverse must equal swap on the ip/tcp header."""
    ephemeral = 54321  # opaque client port; must round-trip untouched
    header = {"ipv4_src": client, "ipv4_dst": service_addr,
              "tcp_src": ephemeral, "tcp_dst": service_port}

    def swap(h: Dict[str, Any]) -> Dict[str, Any]:
        return {"ipv4_src": h["ipv4_dst"], "ipv4_dst": h["ipv4_src"],
                "tcp_src": h["tcp_dst"], "tcp_dst": h["tcp_src"]}

    def rewrite(h: Dict[str, Any], rule: RuleView) -> Dict[str, Any]:
        out = dict(h)
        for field, value in sorted(_set_fields(rule).items()):
            if field in out:
                out[field] = value
        return out

    reply = rewrite(swap(rewrite(header, up)), down)
    expected = swap(header)
    violations: List[Violation] = []
    subject = up.label()
    for field in ("ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst"):
        if reply[field] != expected[field]:
            violations.append(Violation(
                V3_TRANSPARENCY, view.dpid, subject,
                f"rewrite∘reverse is not the identity: reply {field} is "
                f"{reply[field]} where the client expects {expected[field]} "
                f"(the edge address leaks)"))
    # The reply must also masquerade at layer 2: the client resolved the
    # gateway MAC and would discard frames from an unknown source.
    down_sets = _set_fields(down)
    eth_src = down_sets.get("eth_src")
    if eth_src is not None and eth_src != snapshot.control.vgw_mac:
        violations.append(Violation(
            V3_TRANSPARENCY, view.dpid, subject,
            f"reply eth_src rewritten to {eth_src}, not the gateway MAC "
            f"{snapshot.control.vgw_mac}"))
    client_host = snapshot.host(client)
    eth_dst = down_sets.get("eth_dst")
    if (client_host is not None and isinstance(eth_dst, MAC)
            and eth_dst != client_host.mac):
        violations.append(Violation(
            V3_TRANSPARENCY, view.dpid, subject,
            f"reply eth_dst {eth_dst} does not address the client's MAC "
            f"{client_host.mac}"))
    return violations


# ---------------------------------------------------------------------------
# V4 — controller/switch coherence
# ---------------------------------------------------------------------------


def coherence_violations(snapshot: NetworkSnapshot,
                         strict_cookies: bool = True) -> Tuple[Violation, ...]:
    violations: List[Violation] = []
    control = snapshot.control
    booked = dict(control.cookie_cluster)
    memory = {(m.client, m.service_addr, m.service_port):
              (m.endpoint_ip, m.endpoint_port, m.cluster)
              for m in control.memory}
    first_hop_cookies: Dict[int, None] = {}
    for view in snapshot.switches:
        for rule in view.rules:
            if cookie_kind(rule.cookie) != KIND_SERVICE:
                continue
            subject = rule.label()
            dst = rule.match.exact_value("ipv4_dst")
            tcp_dst = rule.match.exact_value("tcp_dst")
            src = rule.match.exact_value("ipv4_src")
            tcp_src = rule.match.exact_value("tcp_src")
            if snapshot.service(dst, tcp_dst) is not None:
                violations.extend(_first_hop_coherence(
                    snapshot, view, rule, subject, booked, memory,
                    first_hop_cookies))
            elif snapshot.endpoint(dst, tcp_dst) is not None:
                continue  # transit hop of a live plan
            elif snapshot.endpoint(src, tcp_src) is not None:
                continue  # downstream hop of a live plan
            else:
                violations.append(Violation(
                    V4_COHERENCE, view.dpid, subject,
                    "service-kind flow matches no registered service and "
                    "no live endpoint (stale rule a resync must GC)"))
    if strict_cookies:
        for cookie, cluster in sorted(booked.items()):
            if cookie not in first_hop_cookies:
                violations.append(Violation(
                    V4_COHERENCE, -1, f"cookie[{cookie:#x}]",
                    f"controller books load on cluster {cluster!r} for this "
                    f"cookie but no switch carries its first-hop rule"))
    return tuple(violations)


def _first_hop_coherence(snapshot: NetworkSnapshot, view: SwitchView,
                         rule: RuleView, subject: str,
                         booked: Dict[int, str],
                         memory: Dict[Tuple[IPv4, IPv4, int],
                                      Tuple[IPv4, int, str]],
                         first_hop_cookies: Dict[int, None],
                         ) -> List[Violation]:
    violations: List[Violation] = []
    endpoint = _rewrite_endpoint(rule)
    if endpoint is None:
        violations.append(Violation(
            V4_COHERENCE, view.dpid, subject,
            "first-hop service flow does not rewrite toward an endpoint"))
        return violations
    live = snapshot.endpoint(endpoint[0], endpoint[1])
    if live is None:
        violations.append(Violation(
            V4_COHERENCE, view.dpid, subject,
            f"redirects to {endpoint[0]}:{endpoint[1]} which is not a live "
            f"endpoint of any cluster"))
        return violations
    dst = rule.match.exact_value("ipv4_dst")
    tcp_dst = rule.match.exact_value("tcp_dst")
    if (live.service_addr, live.service_port) != (dst, tcp_dst):
        violations.append(Violation(
            V4_COHERENCE, view.dpid, subject,
            f"endpoint {endpoint[0]}:{endpoint[1]} serves "
            f"{live.service_addr}:{live.service_port}, not the matched "
            f"service {dst}:{tcp_dst}"))
    first_hop_cookies[rule.cookie] = None
    cluster = booked.get(rule.cookie)
    if cluster is None:
        violations.append(Violation(
            V4_COHERENCE, view.dpid, subject,
            f"cookie {rule.cookie:#x} is unknown to the controller ledger "
            f"(no load bookkeeping; FlowRemoved would be misaccounted)"))
    elif cluster != live.cluster:
        violations.append(Violation(
            V4_COHERENCE, view.dpid, subject,
            f"cookie {rule.cookie:#x} is booked to cluster {cluster!r} but "
            f"the rule rewrites into {live.cluster!r}"))
    client = rule.match.exact_value("ipv4_src")
    if snapshot.control.use_flow_memory and client is not None:
        remembered = memory.get((client, dst, tcp_dst))
        if remembered is not None and remembered[:2] != endpoint:
            violations.append(Violation(
                V4_COHERENCE, view.dpid, subject,
                f"FlowMemory remembers {remembered[0]}:{remembered[1]} for "
                f"this client/service but the installed rule redirects to "
                f"{endpoint[0]}:{endpoint[1]}"))
    return violations


# ---------------------------------------------------------------------------
# V5 — shadowed rules and stale microflow-cache entries
# ---------------------------------------------------------------------------


def shadowing_violations(view: SwitchView) -> Tuple[Violation, ...]:
    violations: List[Violation] = []
    # Bucket by the fast-path key: a covering rule's exact (src, dst) is
    # either equal to the covered rule's or unconstrained, so only four
    # buckets can hold candidates — same pruning as the lookup path.
    buckets: Dict[Tuple[Any, Any], List[RuleView]] = {}
    for rule in view.rules:
        key = (rule.match.exact_value("ipv4_src"),
               rule.match.exact_value("ipv4_dst"))
        buckets.setdefault(key, []).append(rule)
    for rule in view.rules:
        src = rule.match.exact_value("ipv4_src")
        dst = rule.match.exact_value("ipv4_dst")
        shadow = None
        for key in ((src, dst), (src, None), (None, dst), (None, None)):
            for candidate in buckets.get(key, ()):  # table order
                if candidate is rule:
                    continue
                earlier = (candidate.priority > rule.priority
                           or (candidate.priority == rule.priority
                               and candidate.seq < rule.seq))
                if earlier and candidate.match.covers(rule.match):
                    if shadow is None or (
                            (-candidate.priority, candidate.seq)
                            < (-shadow.priority, shadow.seq)):
                        shadow = candidate
                    break  # later candidates in this bucket rank lower
        if shadow is not None:
            violations.append(Violation(
                V5_SHADOWING, view.dpid, rule.label(),
                f"dead rule: fully shadowed by {shadow.label()} "
                f"(priority {shadow.priority} vs {rule.priority})"))
    for descriptor in view.stale_cache:
        violations.append(Violation(
            V5_SHADOWING, view.dpid, f"cache[{descriptor}]",
            "microflow-cache entry survived a table mutation that should "
            "have invalidated it"))
    return tuple(violations)
