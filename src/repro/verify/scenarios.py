"""Self-contained scenario drivers for CLI verification runs.

``python -m repro.verify`` needs concrete, reproducible network states to
verify. These builders run a compact part-A-style workload and an R4-style
chaos window, settle the simulation at a quiesce point, and hand back the
testbed for snapshotting. They intentionally reuse the robustness module's
chaos testbed/fault recipe so the CLI exercises the same machinery the
experiment drivers do.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.experiments.robustness import _chaos_testbed, _run_until_done
from repro.experiments.topologies import Testbed, build_testbed
from repro.simcore.faults import (
    FaultSchedule,
    channel_outage,
    controller_outage,
    link_flap,
)
from repro.workloads.scale import attach_client_bank, run_client_bank


def run_parta_scenario(seed: int = 7, n_clients: int = 6,
                       rounds: int = 12) -> Testbed:
    """A healthy part-A-style run: warm service, rotating client fetches."""
    tb = build_testbed(seed=seed, n_clients=n_clients,
                       cluster_types=("docker",), use_flow_memory=True,
                       switch_idle_timeout_s=30.0)
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    _run_until_done(tb, warm, cap_s=120.0)
    assert warm.done and warm.exception is None
    for index in range(rounds):
        request = tb.client(index % n_clients).fetch(
            svc.service_id.addr, svc.service_id.port)
        _run_until_done(tb, request, cap_s=30.0)
    tb.run(until=tb.sim.now + 2.0)  # quiesce: all handshakes settled
    return tb


def run_chaos_scenario(seed: int = 211, n_clients: int = 32,
                       window: int = 8) -> Any:
    """An R4-style mixed chaos window (crash + outages + flaps), settled.

    Mirrors :func:`repro.experiments.robustness.r4_chaos_cell` at smoke
    scale, but returns the testbed so the caller can snapshot it.
    """
    tb, svc = _chaos_testbed(seed)
    bank = attach_client_bank(tb, svc, n_clients=n_clients, window=window,
                              bandwidth_bps=4e5)
    bank_link = tb.net.links[-1]
    channel = tb.manager.datapaths[tb.switch.dpid].channel

    rng = np.random.default_rng([seed, 4])
    start = tb.sim.now
    schedule = FaultSchedule()
    schedule.add(controller_outage(
        tb.manager, at=start + float(rng.uniform(0.2, 0.8)),
        duration_s=float(rng.uniform(1.0, 2.5))))
    for at in rng.uniform(0.3, 3.5, size=2):
        schedule.add(channel_outage(channel, at=start + float(at),
                                    duration_s=float(rng.uniform(0.8, 3.5))))
    for at in rng.uniform(0.3, 3.5, size=2):
        schedule.add(link_flap(bank_link, at=start + float(at),
                               duration_s=float(rng.uniform(0.1, 0.4))))
    schedule.install(tb.sim)

    run_client_bank(tb, bank, spacing_s=0.0005, chunk_s=0.5)
    tb.run(until=tb.sim.now + 5.0)  # recovery slack past the last window
    return tb
