"""The verification driver: full checks, with optional generation caches.

:func:`verify_snapshot` is the single entry point both modes share. The
incremental mode (``repro.verify.incremental``) passes a
:class:`VerifyCaches` whose entries are keyed on the generation counters
the substrate already maintains (``FlowTable.generation``, registry /
cluster / host-table versions); a cache hit replays the exact violation
tuple the checker produced last time, so an incremental report is
byte-identical to a full re-check *by construction* — the two modes run
the same code, one of them just skips work whose inputs did not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.verify.headerspace import FieldsKey, enumerate_classes
from repro.verify.invariants import (
    class_violations,
    coherence_violations,
    shadowing_violations,
    transparency_violations,
)
from repro.verify.model import (
    ALL_INVARIANTS,
    V1_BLACKHOLE,
    V2_LOOP,
    V3_TRANSPARENCY,
    V4_COHERENCE,
    V5_SHADOWING,
    VerificationReport,
    Violation,
)
from repro.verify.snapshot import NetworkSnapshot, snapshot_control_plane, snapshot_testbed
from repro.verify.trace import RuleIndex

#: everything outside the flow tables that can change a class verdict:
#: liveness, host attachments, services, fabric wiring, gateway identity
EnvSignature = Tuple[Any, ...]

#: cached per-class result: (env signature, {dpid: generation} over the
#: dpids the trace visited, violations)
ClassEntry = Tuple[EnvSignature, Dict[int, int], Tuple[Violation, ...]]


@dataclass
class VerifyCaches:
    """Generation-keyed memo of per-class and per-switch checker results."""

    classes: Dict[Tuple[int, FieldsKey], ClassEntry] = field(
        default_factory=dict)
    transparency: Dict[int, Tuple[Any, Tuple[Violation, ...]]] = field(
        default_factory=dict)
    shadowing: Dict[int, Tuple[Any, Tuple[Violation, ...]]] = field(
        default_factory=dict)
    indices: Dict[int, Tuple[int, RuleIndex]] = field(default_factory=dict)
    #: memoized class enumeration, keyed on (per-switch generations, env):
    #: enumeration reads only rule matches (generation-covered) and the
    #: env-signature inputs, so an unchanged key yields the identical tuple
    enumeration: Optional[Tuple[Any, Tuple[Any, ...]]] = None
    #: diagnostics: classes served from cache vs. re-traced (last run)
    classes_reused: int = 0
    classes_traced: int = 0


def _env_signature(snapshot: NetworkSnapshot) -> EnvSignature:
    control = snapshot.control
    return (control.live_endpoints, control.services, snapshot.hosts,
            snapshot.adjacency, control.vgw_ip, control.vgw_mac)


def _indices(snapshot: NetworkSnapshot,
             caches: Optional[VerifyCaches]) -> Dict[int, RuleIndex]:
    out: Dict[int, RuleIndex] = {}
    for view in snapshot.switches:
        cached = caches.indices.get(view.dpid) if caches is not None else None
        if cached is not None and cached[0] == view.generation:
            out[view.dpid] = cached[1]
            continue
        index = RuleIndex(view)
        out[view.dpid] = index
        if caches is not None:
            caches.indices[view.dpid] = (view.generation, index)
    return out


def verify_snapshot(snapshot: NetworkSnapshot,
                    invariants: Tuple[str, ...] = ALL_INVARIANTS,
                    strict_cookies: bool = True,
                    caches: Optional[VerifyCaches] = None,
                    ) -> VerificationReport:
    """Check ``invariants`` over ``snapshot``; pure, mutation-free."""
    selected = tuple(i for i in ALL_INVARIANTS if i in invariants)
    violations: list[Violation] = []
    generations = {view.dpid: view.generation for view in snapshot.switches}
    classes_checked = 0

    if V1_BLACKHOLE in selected or V2_LOOP in selected:
        env = _env_signature(snapshot)
        indices = _indices(snapshot, caches)
        enum_key = (tuple(sorted(generations.items())), env)
        if (caches is not None and caches.enumeration is not None
                and caches.enumeration[0] == enum_key):
            classes = caches.enumeration[1]
        else:
            classes = enumerate_classes(snapshot)
            if caches is not None:
                caches.enumeration = (enum_key, classes)
        classes_checked = len(classes)
        if caches is not None:
            caches.classes_reused = 0
            caches.classes_traced = 0
        for cls in classes:
            cache_key = (cls.dpid, cls.fields)
            entry = (caches.classes.get(cache_key)
                     if caches is not None else None)
            if entry is not None and entry[0] == env and all(
                    generations.get(dpid) == gen
                    for dpid, gen in entry[1].items()):
                found = entry[2]
                if caches is not None:
                    caches.classes_reused += 1
            else:
                found, trace = class_violations(snapshot, indices, cls)
                if caches is not None:
                    caches.classes_traced += 1
                    caches.classes[cache_key] = (
                        env,
                        {dpid: generations.get(dpid, -1)
                         for dpid in trace.visited},
                        found)
            violations.extend(v for v in found if v.invariant in selected)

    if V3_TRANSPARENCY in selected:
        sig = (snapshot.control.services, snapshot.hosts,
               snapshot.control.vgw_mac)
        for view in snapshot.switches:
            entry = (caches.transparency.get(view.dpid)
                     if caches is not None else None)
            key = (view.generation, sig)
            if entry is not None and entry[0] == key:
                found = entry[1]
            else:
                found = transparency_violations(snapshot, view)
                if caches is not None:
                    caches.transparency[view.dpid] = (key, found)
            violations.extend(found)

    if V5_SHADOWING in selected:
        for view in snapshot.switches:
            entry = (caches.shadowing.get(view.dpid)
                     if caches is not None else None)
            key = (view.generation, view.stale_cache)
            if entry is not None and entry[0] == key:
                found = entry[1]
            else:
                found = shadowing_violations(view)
                if caches is not None:
                    caches.shadowing[view.dpid] = (key, found)
            violations.extend(found)

    if V4_COHERENCE in selected:
        # Cheap (one linear pass) and coupled to the whole control view —
        # always recomputed.
        violations.extend(coherence_violations(snapshot, strict_cookies))

    return VerificationReport(
        violations=tuple(sorted(set(violations))),
        classes_checked=classes_checked,
        rules_checked=snapshot.total_rules,
        switches_checked=len(snapshot.switches),
        invariants=selected)


def verify_testbed(tb: Any,
                   invariants: Tuple[str, ...] = ALL_INVARIANTS,
                   strict_cookies: bool = True,
                   caches: Optional[VerifyCaches] = None,
                   ) -> VerificationReport:
    """Snapshot a :class:`Testbed` (ground-truth topology) and verify it."""
    return verify_snapshot(snapshot_testbed(tb), invariants=invariants,
                           strict_cookies=strict_cookies, caches=caches)


def verify_control_plane(manager: Any, controller: Any,
                         invariants: Tuple[str, ...] = ALL_INVARIANTS,
                         strict_cookies: bool = True,
                         caches: Optional[VerifyCaches] = None,
                         ) -> VerificationReport:
    """Snapshot from the controller's vantage point and verify it."""
    return verify_snapshot(snapshot_control_plane(manager, controller),
                           invariants=invariants,
                           strict_cookies=strict_cookies, caches=caches)
