"""CLI: run scenarios and verify their post-run snapshots.

Usage::

    python -m repro.verify                       # part-A + chaos, all invariants
    python -m repro.verify --scenario parta      # one scenario
    python -m repro.verify --planted             # planted-violation suite
    python -m repro.verify --json                # machine-readable reports

Exit status is 0 only when every requested check passed: scenarios verify
with zero violations, and every planted violation is flagged with exactly
its expected invariant ID.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List

from repro.verify.checker import verify_snapshot, verify_testbed
from repro.verify.model import ALL_INVARIANTS
from repro.verify.mutations import PLANTED
from repro.verify.snapshot import snapshot_testbed


def _verify_scenario(name: str, seed: int, as_json: bool) -> int:
    from repro.verify.scenarios import run_chaos_scenario, run_parta_scenario
    if name == "parta":
        tb = run_parta_scenario(seed=seed)
    else:
        tb = run_chaos_scenario(seed=seed)
    report = verify_testbed(tb)
    print(f"--- scenario {name} (seed {seed}) ---")
    print(report.to_json() if as_json else report.to_text())
    return 0 if report.ok else 1


def _run_planted(seed: int, as_json: bool) -> int:
    from repro.verify.scenarios import run_parta_scenario
    tb = run_parta_scenario(seed=seed)
    healthy = snapshot_testbed(tb)
    baseline = verify_snapshot(healthy)
    print("--- planted-violation suite ---")
    if not baseline.ok:
        print("baseline snapshot is not clean; cannot judge plants:")
        print(baseline.to_text())
        return 1
    failures = 0
    for name, mutate, expected in PLANTED:
        report = verify_snapshot(mutate(healthy))
        flagged = sorted(set(v.invariant for v in report.violations))
        ok = flagged == [expected]
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(f"  {name:<24} expected {expected}  flagged "
              f"{','.join(flagged) or 'nothing'}  [{status}]")
        if not ok and not as_json:
            for violation in report.violations:
                print(f"    {violation.format()}")
    print(f"{len(PLANTED) - failures}/{len(PLANTED)} plants detected "
          f"with the correct invariant ID")
    return 0 if failures == 0 else 1


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Static data-plane verification of a scenario snapshot "
                    f"(invariants {', '.join(ALL_INVARIANTS)}; see "
                    "docs/verification.md)")
    parser.add_argument("--scenario", choices=("parta", "chaos"),
                        action="append",
                        help="scenario(s) to run and verify "
                             "(default: both, unless --planted)")
    parser.add_argument("--planted", action="store_true",
                        help="run the planted-violation mutation suite")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario seed")
    parser.add_argument("--json", action="store_true",
                        help="emit reports as JSON")
    args = parser.parse_args(argv)

    scenarios: List[str] = list(args.scenario or ())
    if not scenarios and not args.planted:
        scenarios = ["parta", "chaos"]

    status = 0
    for name in scenarios:
        seed = args.seed if args.seed is not None else (
            7 if name == "parta" else 211)
        status |= _verify_scenario(name, seed, args.json)
    if args.planted:
        status |= _run_planted(args.seed if args.seed is not None else 7,
                               args.json)
    return status


if __name__ == "__main__":
    sys.exit(main())
