"""Symbolic forwarding traces: push one header class through the rules.

The tracer mirrors the production data path exactly:

* rule selection replicates ``FlowTable.lookup`` — highest priority wins,
  FIFO (lowest install ``seq``) among equals, with the same
  (ipv4_src, ipv4_dst) bucket pruning so 100k-rule tables stay cheap;
* action execution replicates ``apply_actions_multi`` — ``SetFieldAction``s
  accumulate and each ``OutputAction`` emits the header *as rewritten so
  far* (trailing set-fields are discarded), with layer checks (a tcp field
  rewrite on a non-TCP header is a no-op, as on a real packet);
* an emission whose port is an inter-switch link re-enters the peer's table
  with ``in_port`` set to the peer port.

A trace terminates in one or more :class:`Terminal`\\ s: ``controller``
(packet-in), ``drop`` (no matching rule), ``flood``, ``egress`` (left the
fabric through a port — the invariants decide whether a host is there), or
``loop`` (a (switch, header) state repeated, or the hop budget ran out —
with rewrites, revisiting a switch with *identical* headers can only recur
forever).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.openflow.actions import OutputAction, SetFieldAction
from repro.openflow.constants import (
    OFPP_ALL,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_IN_PORT,
)

from repro.verify.headerspace import FieldsKey, HeaderClass, canonical
from repro.verify.snapshot import NetworkSnapshot, RuleView, SwitchView

#: safety budget: no sane fabric forwards a frame through this many tables
MAX_HOPS = 64

#: fields whose presence marks the layer a SetFieldAction may touch
_LAYER_KEYS = {
    "ipv4_src": "ipv4_src", "ipv4_dst": "ipv4_src",
    "tcp_src": "tcp_src", "tcp_dst": "tcp_src",
    "udp_src": "udp_src", "udp_dst": "udp_src",
}


@dataclass(frozen=True)
class Terminal:
    """Where (one copy of) the traced header ended up."""

    kind: str  # "controller" | "drop" | "flood" | "egress" | "loop"
    dpid: int
    port_no: int  # egress port; -1 when not applicable
    fields: FieldsKey  # header at the terminal


@dataclass(frozen=True)
class TraceResult:
    terminals: Tuple[Terminal, ...]
    visited: Tuple[int, ...]  # dpids touched, sorted
    hops: int

    def has_loop(self) -> bool:
        return any(t.kind == "loop" for t in self.terminals)


class RuleIndex:
    """Bucket-pruned lookup over a :class:`SwitchView`, mirroring
    ``FlowTable.lookup`` semantics (priority desc, seq asc, 4-key probe)."""

    def __init__(self, view: SwitchView):
        self.view = view
        buckets: Dict[int, Dict[Tuple[Any, Any], List[RuleView]]] = {}
        priorities: List[int] = []
        for rule in view.rules:  # table order: priority desc, seq asc
            per_priority = buckets.get(rule.priority)
            if per_priority is None:
                per_priority = buckets[rule.priority] = {}
                priorities.append(rule.priority)
            key = (rule.match.exact_value("ipv4_src"),
                   rule.match.exact_value("ipv4_dst"))
            per_priority.setdefault(key, []).append(rule)
        self._buckets = buckets
        self._priorities = priorities

    def lookup(self, fields: Dict[str, Any]) -> Optional[RuleView]:
        src = fields.get("ipv4_src")
        dst = fields.get("ipv4_dst")
        probes = ((src, dst), (src, None), (None, dst), (None, None))
        for priority in self._priorities:
            per_priority = self._buckets[priority]
            best: Optional[RuleView] = None
            for key in probes:
                candidates = per_priority.get(key)
                if not candidates:
                    continue
                for rule in candidates:
                    if best is not None and rule.seq >= best.seq:
                        break  # candidates are seq-ascending
                    if rule.match.matches(fields):
                        best = rule
                        break
            if best is not None:
                return best
        return None


def build_indices(snapshot: NetworkSnapshot) -> Dict[int, RuleIndex]:
    return {view.dpid: RuleIndex(view) for view in snapshot.switches}


def _apply_symbolic(fields: Dict[str, Any], actions: Tuple[Any, ...],
                    ) -> List[Tuple[Dict[str, Any], int]]:
    """Replicate ``apply_actions_multi`` on a field-dict: returns the
    (rewritten-so-far header, out_port) emitted by each OutputAction."""
    emissions: List[Tuple[Dict[str, Any], int]] = []
    current = fields
    dirty = False
    for action in actions:
        if isinstance(action, SetFieldAction):
            layer_key = _LAYER_KEYS.get(action.field, action.field)
            if layer_key in current or action.field.startswith("eth_"):
                if not dirty:
                    current = dict(current)
                    dirty = True
                current[action.field] = action.value
        elif isinstance(action, OutputAction):
            emissions.append((current, action.port))
            if dirty:
                current = dict(current)  # later set-fields fork the header
    return emissions


def trace_class(snapshot: NetworkSnapshot, indices: Dict[int, RuleIndex],
                cls: HeaderClass, max_hops: int = MAX_HOPS) -> TraceResult:
    """Forward one header class to all its terminals."""
    terminals: List[Terminal] = []
    visited: Dict[int, None] = {}
    seen: Dict[Tuple[int, FieldsKey], None] = {}
    # LIFO worklist, pushed in reverse so copies trace in emission order.
    work: List[Tuple[int, Dict[str, Any]]] = [(cls.dpid, cls.field_dict())]
    hops = 0
    while work:
        dpid, fields = work.pop()
        key = (dpid, canonical(fields))
        if key in seen:
            terminals.append(Terminal("loop", dpid, -1, key[1]))
            continue
        seen[key] = None
        visited[dpid] = None
        hops += 1
        if hops > max_hops:
            terminals.append(Terminal("loop", dpid, -1, key[1]))
            continue
        index = indices.get(dpid)
        rule = index.lookup(fields) if index is not None else None
        if rule is None:
            terminals.append(
                Terminal("drop", dpid, fields.get("in_port", -1), key[1]))
            continue
        emissions = _apply_symbolic(fields, rule.actions)
        if not emissions:
            terminals.append(Terminal("drop", dpid, -1, key[1]))
            continue
        for out_fields, port in reversed(emissions):
            if port == OFPP_CONTROLLER:
                terminals.append(
                    Terminal("controller", dpid, port, canonical(out_fields)))
            elif port in (OFPP_FLOOD, OFPP_ALL):
                terminals.append(
                    Terminal("flood", dpid, port, canonical(out_fields)))
            else:
                out_port = (fields.get("in_port", 0)
                            if port == OFPP_IN_PORT else port)
                peer = snapshot.peer(dpid, out_port)
                if peer is not None:
                    next_fields = dict(out_fields)
                    next_fields["in_port"] = peer[1]
                    work.append((peer[0], next_fields))
                else:
                    terminals.append(Terminal("egress", dpid, out_port,
                                              canonical(out_fields)))
    return TraceResult(terminals=tuple(terminals),
                       visited=tuple(sorted(visited)), hops=hops)
