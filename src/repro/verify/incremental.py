"""Incremental verification keyed on the substrate's generation counters.

:class:`IncrementalVerifier` owns a :class:`VerifyCaches` and re-runs
:func:`verify_snapshot` through it. A FlowMod/FlowRemoved bumps exactly one
``FlowTable.generation``, so only the header classes whose traces visited
that datapath — plus that datapath's per-switch checks — are recomputed;
everything else replays its cached violations. Because both modes execute
the same checker code path, the incremental report is byte-identical to a
full re-check of the same snapshot (asserted under randomized FlowMod
sequences in tests/verify/test_verify_incremental.py).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.verify.checker import VerifyCaches, verify_snapshot
from repro.verify.model import ALL_INVARIANTS, VerificationReport
from repro.verify.snapshot import NetworkSnapshot, snapshot_testbed


class IncrementalVerifier:
    """Reusable verifier that carries its caches across calls."""

    def __init__(self, testbed: Any = None,
                 invariants: Tuple[str, ...] = ALL_INVARIANTS,
                 strict_cookies: bool = True):
        self._testbed = testbed
        self._invariants = invariants
        self._strict_cookies = strict_cookies
        self.caches = VerifyCaches()
        self.runs = 0

    def verify(self, snapshot: Optional[NetworkSnapshot] = None,
               ) -> VerificationReport:
        """Verify ``snapshot`` (or a fresh snapshot of the bound testbed)."""
        if snapshot is None:
            if self._testbed is None:
                raise ValueError(
                    "no snapshot given and no testbed bound at construction")
            snapshot = snapshot_testbed(self._testbed)
        report = verify_snapshot(snapshot, invariants=self._invariants,
                                 strict_cookies=self._strict_cookies,
                                 caches=self.caches)
        self.runs += 1
        return report

    @property
    def classes_reused(self) -> int:
        """Header classes served from cache on the most recent run."""
        return self.caches.classes_reused

    @property
    def classes_traced(self) -> int:
        """Header classes actually re-traced on the most recent run."""
        return self.caches.classes_traced
