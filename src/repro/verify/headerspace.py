"""Header-space partitioning into traceable equivalence classes.

Veriflow-style verification needs one representative packet per behavioural
equivalence class. Instead of manipulating symbolic wildcard expressions,
this module materialises each class as a *concrete field-dict* — the same
shape :func:`repro.openflow.match.extract_fields` produces — so the tracer
can reuse the production ``Match.matches`` semantics verbatim (no parallel
match implementation to drift out of sync).

Per match field the installed rule set induces a finite set of *atoms*: the
exact values that appear in any match condition, plus one ``OTHER`` value
chosen outside every atom and every masked prefix (deterministically, from
reserved ranges: TEST-NET-3 for IPs, 61000+ for ports). Two packets whose
fields pick the same atoms traverse identical rule sequences, so one
representative per combination suffices. Enumerated combinations are:

* **service classes** — every (host, registered service) pair as the host
  would emit it: gateway-addressed TCP to the service vIP:port. These carry
  invariant V1 (no blackhole).
* **rule-seeded classes** — one representative per installed rule,
  projecting the rule's own conditions and filling the rest with ``OTHER``
  atoms. These pull stale/transit/downstream rules into tracing coverage
  even when no live host would currently emit the header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.netsim.addresses import IPv4, ip
from repro.netsim.packet import ETH_TYPE_ARP, ETH_TYPE_IP, IP_PROTO_TCP, IP_PROTO_UDP

from repro.verify.snapshot import NetworkSnapshot

#: canonical field-dict as a hashable tuple, sorted by field name
FieldsKey = Tuple[Tuple[str, Any], ...]

#: deterministic OTHER scan origins, per field kind
_OTHER_IP_START = ip("203.0.113.1")  # TEST-NET-3, unused by the testbeds
_OTHER_PORT_START = 61000
_OTHER_ETH_TYPE_START = 0x88B5  # IEEE 802 local experimental
_OTHER_IP_PROTO_START = 143  # unassigned range


def canonical(fields: Dict[str, Any]) -> FieldsKey:
    return tuple(sorted(fields.items(), key=lambda kv: kv[0]))


@dataclass(frozen=True)
class HeaderClass:
    """One equivalence class: a concrete packet at a concrete ingress."""

    dpid: int
    fields: FieldsKey
    origin: str  # "service" or "rule"

    def field_dict(self) -> Dict[str, Any]:
        return dict(self.fields)

    def subject(self) -> str:
        """Stable identifier used in violation reports."""
        f = self.field_dict()
        in_port = f.get("in_port", 0)
        if f.get("eth_type") == ETH_TYPE_IP:
            dst_port = f.get("tcp_dst", f.get("udp_dst"))
            suffix = f":{dst_port}" if dst_port is not None else ""
            flow = f"{f.get('ipv4_src')}->{f.get('ipv4_dst')}{suffix}"
        else:
            flow = f"eth=0x{f.get('eth_type', 0):04x}"
        return f"class[{flow} @dpid{self.dpid}:in{in_port}]"


class AtomUniverse:
    """Per-field atom sets plus deterministic ``OTHER`` representatives."""

    def __init__(self, snapshot: NetworkSnapshot):
        self._exact: Dict[str, Set[Any]] = {}
        self._masked: Dict[str, List[Tuple[IPv4, int]]] = {}
        self._others: Dict[str, Any] = {}
        for view in snapshot.switches:
            for rule in view.rules:
                for fld, value in rule.match.items():
                    if isinstance(value, tuple):
                        self._masked.setdefault(fld, []).append(value)
                    else:
                        self._exact.setdefault(fld, set()).add(value)
        # Values live in the network also count as used, so an OTHER pick
        # can never alias a real host/service/endpoint.
        for host in snapshot.hosts:
            self._note_ip(host.ip)
        control = snapshot.control
        self._note_ip(control.vgw_ip)
        for svc in control.services:
            self._note_ip(svc.addr)
            self._exact.setdefault("tcp_dst", set()).add(svc.port)
        for endpoint in control.live_endpoints:
            self._note_ip(endpoint.ip)
            self._exact.setdefault("tcp_dst", set()).add(endpoint.port)

    def _note_ip(self, addr: IPv4) -> None:
        for fld in ("ipv4_src", "ipv4_dst"):
            self._exact.setdefault(fld, set()).add(addr)

    def _used(self, field: str, value: Any) -> bool:
        if value in self._exact.get(field, ()):
            return True
        if isinstance(value, IPv4):
            for network, prefix_len in self._masked.get(field, ()):
                if value.in_subnet(network, prefix_len):
                    return True
        return False

    def other(self, field: str) -> Any:
        """A deterministic value outside every atom of ``field``."""
        cached = self._others.get(field)
        if cached is not None:
            return cached
        value: Any
        if field in ("ipv4_src", "ipv4_dst", "arp_spa", "arp_tpa"):
            value = _OTHER_IP_START
            while self._used(field, value):
                value = value + 1
        elif field in ("tcp_src", "tcp_dst", "udp_src", "udp_dst"):
            value = _OTHER_PORT_START
            while self._used(field, value):
                value += 1
        elif field == "eth_type":
            value = _OTHER_ETH_TYPE_START
            while self._used(field, value):
                value += 1
        elif field == "ip_proto":
            value = _OTHER_IP_PROTO_START
            while self._used(field, value):
                value += 1
        else:
            raise ValueError(f"no OTHER generator for field {field!r}")
        self._others[field] = value
        return value

    def masked_representative(self, field: str,
                              network: IPv4, prefix_len: int) -> IPv4:
        """A concrete address inside a masked condition's prefix."""
        value = network
        exact = self._exact.get(field, set())
        # Stay within the prefix; give up on collision after a short scan
        # (masked matches do not occur in the shipped controller).
        for _ in range(64):
            if value not in exact:
                break
            value = value + 1
        return value


def _service_classes(snapshot: NetworkSnapshot,
                     atoms: AtomUniverse) -> List[HeaderClass]:
    classes: List[HeaderClass] = []
    vgw_mac = snapshot.control.vgw_mac
    for host in snapshot.hosts:
        for svc in snapshot.control.services:
            if host.ip == svc.addr:
                continue  # the cloud origin does not dial itself
            fields = {
                "in_port": host.port_no,
                "eth_src": host.mac,
                "eth_dst": vgw_mac,
                "eth_type": ETH_TYPE_IP,
                "ipv4_src": host.ip,
                "ipv4_dst": svc.addr,
                "ip_proto": IP_PROTO_TCP,
                "tcp_src": atoms.other("tcp_src"),
                "tcp_dst": svc.port,
            }
            classes.append(HeaderClass(dpid=host.dpid,
                                       fields=canonical(fields),
                                       origin="service"))
    return classes


def _rule_class(snapshot: NetworkSnapshot, atoms: AtomUniverse,
                dpid: int, match: Any) -> Optional[HeaderClass]:
    conds = dict(match.items())

    def pick(field: str) -> Any:
        value = conds.get(field)
        if value is None:
            return atoms.other(field)
        if isinstance(value, tuple):
            return atoms.masked_representative(field, value[0], value[1])
        return value

    ip_like = any(fld in conds for fld in (
        "ipv4_src", "ipv4_dst", "ip_proto",
        "tcp_src", "tcp_dst", "udp_src", "udp_dst"))
    eth_type = conds.get("eth_type")
    if eth_type is None:
        eth_type = ETH_TYPE_IP if ip_like else atoms.other("eth_type")

    fields: Dict[str, Any] = {"eth_type": eth_type}
    if eth_type == ETH_TYPE_IP:
        tcp_like = any(fld in conds for fld in ("tcp_src", "tcp_dst"))
        udp_like = any(fld in conds for fld in ("udp_src", "udp_dst"))
        ip_proto = conds.get("ip_proto")
        if ip_proto is None:
            ip_proto = (IP_PROTO_TCP if tcp_like or not udp_like
                        else IP_PROTO_UDP)
        fields["ip_proto"] = ip_proto
        fields["ipv4_src"] = pick("ipv4_src")
        fields["ipv4_dst"] = pick("ipv4_dst")
        if ip_proto == IP_PROTO_TCP:
            fields["tcp_src"] = pick("tcp_src")
            fields["tcp_dst"] = pick("tcp_dst")
        elif ip_proto == IP_PROTO_UDP:
            fields["udp_src"] = pick("udp_src")
            fields["udp_dst"] = pick("udp_dst")
    elif eth_type == ETH_TYPE_ARP:
        fields["arp_op"] = conds.get("arp_op", 1)
        fields["arp_spa"] = pick("arp_spa")
        fields["arp_tpa"] = pick("arp_tpa")

    # Ingress: the rule's own in_port condition wins; else the attachment
    # point of the source host when it lives on this switch; else port 0.
    src_host = snapshot.host(fields.get("ipv4_src")) if "ipv4_src" in fields else None
    in_port = conds.get("in_port")
    if in_port is None:
        in_port = (src_host.port_no
                   if src_host is not None and src_host.dpid == dpid else 0)
    fields["in_port"] = in_port
    fields["eth_src"] = conds.get(
        "eth_src",
        src_host.mac if src_host is not None else snapshot.control.vgw_mac)
    fields["eth_dst"] = conds.get("eth_dst", snapshot.control.vgw_mac)
    return HeaderClass(dpid=dpid, fields=canonical(fields), origin="rule")


def enumerate_classes(snapshot: NetworkSnapshot) -> Tuple[HeaderClass, ...]:
    """All equivalence classes of a snapshot, deterministically ordered."""
    atoms = AtomUniverse(snapshot)
    unique: Dict[Tuple[int, FieldsKey], HeaderClass] = {}
    for cls in _service_classes(snapshot, atoms):
        unique.setdefault((cls.dpid, cls.fields), cls)
    for view in snapshot.switches:
        for rule in view.rules:
            cls = _rule_class(snapshot, atoms, view.dpid, rule.match)
            if cls is not None:
                unique.setdefault((cls.dpid, cls.fields), cls)
    return tuple(sorted(unique.values(),
                        key=lambda c: (c.dpid, repr(c.fields))))
