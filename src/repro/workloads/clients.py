"""Timed HTTP clients — the simulation's ``timecurl.sh`` [30].

The paper measures ``time_total`` with curl: "everything from when Curl
starts establishing a TCP connection until it gets a response for the HTTP
request". :class:`TimedHTTPClient` reproduces that interval definition:
``t0`` is the moment the first SYN leaves, ``time_connect`` is when the
handshake completes, ``time_total`` when the full response arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.edge.services import ServiceBehavior
from repro.netsim.host import Host
from repro.netsim.packet import HTTPRequest, HTTPResponse

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.addresses import IPv4
    from repro.simcore import Process


@dataclass
class RequestTiming:
    """One measured request (curl-compatible fields)."""

    client: str
    url: str
    t_start: float
    #: TCP connect duration (curl's time_connect)
    time_connect: float
    #: total request/response duration (curl's time_total)
    time_total: float
    status: int
    response: Optional[HTTPResponse] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and 200 <= self.status < 300


class TimedHTTPClient:
    """Issues timed requests from a :class:`~repro.netsim.host.Host`."""

    def __init__(self, host: Host):
        self.host = host
        self.sim = host.sim
        self.timings: list[RequestTiming] = []

    def fetch(self, addr: "IPv4", port: int,
              request: Optional[HTTPRequest] = None,
              request_bytes: Optional[int] = None,
              close: bool = True) -> "Process":
        """One connection + one request/response, fully timed.

        Returns a process whose result is a :class:`RequestTiming`; network
        errors are captured in ``timing.error`` rather than raised, matching
        how a measurement script treats curl failures.
        """
        if request is None:
            request = HTTPRequest(method="GET", path="/")
        if request_bytes is None:
            request_bytes = request.wire_bytes

        def proc():
            t0 = self.sim.now
            url = f"{addr}:{port}"
            try:
                conn = yield self.host.connect(addr, port)
            except Exception as exc:  # noqa: BLE001 - refused / timeout
                timing = RequestTiming(
                    client=self.host.name, url=url, t_start=t0,
                    time_connect=self.sim.now - t0,
                    time_total=self.sim.now - t0,
                    status=0, error=type(exc).__name__)
                self.timings.append(timing)
                return timing
            t_connect = self.sim.now - t0
            response = yield conn.request(request, request_bytes)
            t_total = self.sim.now - t0
            if close:
                conn.close()
            timing = RequestTiming(
                client=self.host.name, url=url, t_start=t0,
                time_connect=t_connect, time_total=t_total,
                status=getattr(response, "status", 200), response=response)
            self.timings.append(timing)
            return timing

        return self.sim.spawn(proc(), name=f"timecurl:{self.host.name}")

    def fetch_service(self, service_addr: "IPv4", port: int,
                      behavior: ServiceBehavior) -> "Process":
        """Fetch with the request shape typical for ``behavior`` (e.g. the
        83 KiB POST of the ResNet service)."""
        request, nbytes = behavior.make_request()
        return self.fetch(service_addr, port, request=request, request_bytes=nbytes)
