"""Load generators: reusable request drivers for experiments.

Two standard shapes:

* **open-loop** (:class:`OpenLoopGenerator`): requests arrive on a fixed or
  Poisson schedule regardless of completions — models independent clients
  (the E5 overload experiment, the trace replay);
* **closed-loop** (:class:`ClosedLoopGenerator`): each virtual user issues
  the next request only after the previous one completed (+ think time) —
  models sessions, self-throttling under slowdown.

Both rotate across the testbed's clients and collect
:class:`~repro.workloads.clients.RequestTiming` results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.edge.services import ServiceBehavior
from repro.metrics.stats import StreamingStats, Summary, summarize
from repro.simcore.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.registry import EdgeService
    from repro.experiments.topologies import Testbed
    from repro.workloads.clients import RequestTiming


@dataclass
class LoadResult:
    """What a generator collected.

    Two modes:

    * ``keep_timings=True`` (the default, used by every existing
      experiment): every :class:`RequestTiming` is retained in ``timings``
      and the list-based accessors behave exactly as they always have.
    * ``keep_timings=False`` (the scale path): per-request objects are
      dropped after aggregation — counters plus a
      :class:`~repro.metrics.stats.StreamingStats` over ``time_total`` of
      the successful requests. Memory stays constant at any request count.
    """

    timings: List["RequestTiming"] = field(default_factory=list)
    issued: int = 0
    keep_timings: bool = True
    #: streaming aggregate over ok-request total latencies (streaming mode)
    stream: Optional[StreamingStats] = None
    #: counters maintained in both modes by :meth:`record`
    completed_count: int = 0
    ok_count: int = 0

    def record(self, timing: Optional["RequestTiming"]) -> None:
        """Account one finished request (``None``: the request errored)."""
        if timing is not None:
            self.completed_count += 1
            if timing.ok:
                self.ok_count += 1
                if self.stream is not None:
                    self.stream.add(timing.time_total)
        if self.keep_timings:
            self.timings.append(timing)

    @property
    def completed(self) -> List["RequestTiming"]:
        return [t for t in self.timings if t is not None]

    @property
    def ok(self) -> List["RequestTiming"]:
        return [t for t in self.completed if t.ok]

    @property
    def failed(self) -> int:
        if self.keep_timings:
            return len(self.completed) - len(self.ok)
        return self.completed_count - self.ok_count

    def totals(self) -> List[float]:
        if not self.keep_timings:
            raise ValueError(
                "exact per-request timings were not retained "
                "(keep_timings=False); use .stream / .summary() instead")
        return [t.time_total for t in self.ok]

    def summary(self) -> Summary:
        """Latency summary of the ok requests, exact or streaming."""
        if self.keep_timings:
            return summarize(self.totals())
        if self.stream is None or self.stream.count == 0:
            raise ValueError("no successful requests aggregated")
        return self.stream.summary()


class OpenLoopGenerator:
    """Fixed-rate or Poisson open-loop arrivals against one service."""

    def __init__(self, testbed: "Testbed", service: "EdgeService",
                 behavior: Optional[ServiceBehavior] = None,
                 rate_rps: float = 1.0, poisson: bool = False,
                 seed: int = 0, keep_timings: bool = True):
        if rate_rps <= 0:
            raise ValueError("rate must be positive")
        self.testbed = testbed
        self.service = service
        self.behavior = behavior
        self.rate_rps = rate_rps
        self.poisson = poisson
        self._rng = RandomStreams(seed).stream("loadgen.open")
        self.result = LoadResult(
            keep_timings=keep_timings,
            stream=None if keep_timings else StreamingStats())
        self._processes: List = []

    def start(self, duration_s: float) -> LoadResult:
        """Schedule all arrivals for ``duration_s`` (call, then run the sim)."""
        sim = self.testbed.sim
        t = 0.0
        index = 0
        while t < duration_s:
            sim.schedule(t, self._issue, index)
            index += 1
            if self.poisson:
                t += float(self._rng.exponential(1.0 / self.rate_rps))
            else:
                t += 1.0 / self.rate_rps
        return self.result

    def _issue(self, index: int) -> None:
        client = self.testbed.client(index % len(self.testbed.timed_clients))
        if self.behavior is not None:
            process = client.fetch_service(self.service.service_id.addr,
                                           self.service.service_id.port,
                                           self.behavior)
        else:
            process = client.fetch(self.service.service_id.addr,
                                   self.service.service_id.port)
        self.result.issued += 1
        if self.result.keep_timings:
            # Streaming mode skips the retention list — the whole point is
            # constant memory across millions of in-flight histories.
            self._processes.append(process)
        process._wait_subscribe(lambda p: self._done(p))

    def _done(self, process) -> None:
        try:
            self.result.record(process.result)
        except Exception:  # noqa: BLE001 - failed request process
            self.result.record(None)


class ClosedLoopGenerator:
    """N virtual users, each looping request → think time → request."""

    def __init__(self, testbed: "Testbed", service: "EdgeService",
                 behavior: Optional[ServiceBehavior] = None,
                 users: int = 4, think_time_s: float = 1.0,
                 keep_timings: bool = True):
        if users <= 0:
            raise ValueError("need at least one user")
        self.testbed = testbed
        self.service = service
        self.behavior = behavior
        self.users = users
        self.think_time_s = think_time_s
        self.result = LoadResult(
            keep_timings=keep_timings,
            stream=None if keep_timings else StreamingStats())

    def start(self, duration_s: float) -> LoadResult:
        sim = self.testbed.sim
        deadline = sim.now + duration_s
        for user in range(self.users):
            sim.spawn(self._user_loop(user, deadline), name=f"user-{user}")
        return self.result

    def _user_loop(self, user: int, deadline: float):
        sim = self.testbed.sim
        client = self.testbed.client(user % len(self.testbed.timed_clients))
        while sim.now < deadline:
            if self.behavior is not None:
                process = client.fetch_service(self.service.service_id.addr,
                                               self.service.service_id.port,
                                               self.behavior)
            else:
                process = client.fetch(self.service.service_id.addr,
                                       self.service.service_id.port)
            self.result.issued += 1
            try:
                timing = yield process
                self.result.record(timing)
            except Exception:  # noqa: BLE001
                self.result.record(None)
            yield sim.timeout(self.think_time_s)
