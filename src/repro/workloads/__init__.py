"""Workloads: timed clients (timecurl) and the bigFlows-style trace."""

from repro.workloads.clients import RequestTiming, TimedHTTPClient
from repro.workloads.loadgen import ClosedLoopGenerator, LoadResult, OpenLoopGenerator
from repro.workloads.trace import (
    ConversationTrace,
    TraceRequest,
    bigflows_like_trace,
    synthesize_bigflows_trace,
)

__all__ = [
    "RequestTiming",
    "TimedHTTPClient",
    "LoadResult",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "TraceRequest",
    "ConversationTrace",
    "synthesize_bigflows_trace",
    "bigflows_like_trace",
]
