"""Workloads: timed clients (timecurl) and the bigFlows-style trace."""

from repro.workloads.clients import RequestTiming, TimedHTTPClient
from repro.workloads.loadgen import (
    LoadResult,
    OpenLoopGenerator,
    ClosedLoopGenerator,
)
from repro.workloads.trace import (
    TraceRequest,
    ConversationTrace,
    synthesize_bigflows_trace,
    bigflows_like_trace,
)

__all__ = [
    "RequestTiming",
    "TimedHTTPClient",
    "LoadResult",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "TraceRequest",
    "ConversationTrace",
    "synthesize_bigflows_trace",
    "bigflows_like_trace",
]
