"""Synthetic cloud-prefix workloads (ROADMAP item 3).

The perceived-cloud address space the platform intercepts is not a handful
of host routes: it is shaped like the public ranges of the big cloud
providers — a few large supernets per provider, carved into thousands of
service prefixes of wildly mixed lengths (/16 … /28).  This module
generates that shape deterministically (same seed -> byte-identical
output) for the registry-churn experiment and the registry benchmarks:

* :func:`synth_cloud_prefixes` — AWS/Azure/GCP-shaped CIDR mixes, carved
  disjointly out of per-provider supernets;
* :func:`synth_service_ids` — concrete ``(addr, port, protocol)`` service
  identities sampled inside those prefixes;
* :func:`synthetic_service` / :func:`bulk_register` — EdgeService objects
  that skip the per-service YAML annotation pipeline (one shared template
  spec), so a million registrations cost seconds, not hours.  Synthetic
  services share one deployment spec and are never actually deployed —
  they exist to exercise registration, lookup, and churn paths.

Nothing here touches the global RNG: every function draws from its own
``random.Random(seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import accumulate
from random import Random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.annotate import AnnotatedService, annotate_service, minimal_yaml
from repro.core.registry import EdgeService, ServiceRegistry
from repro.core.serviceid import ServiceID
from repro.core.trie import prefix_mask
from repro.netsim.addresses import IPv4

#: provider supernets the generator carves from — *shaped* like the public
#: cloud ranges (providers, sizes, and mix), not an authoritative list
PROVIDER_SUPERNETS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "aws": (("52.0.0.0", 10), ("54.64.0.0", 11), ("3.0.0.0", 9),
            ("13.32.0.0", 12), ("18.128.0.0", 9)),
    "azure": (("20.64.0.0", 10), ("40.64.0.0", 10), ("52.224.0.0", 11),
              ("104.40.0.0", 13)),
    "gcp": (("34.0.0.0", 9), ("35.184.0.0", 13), ("104.154.0.0", 15),
            ("130.211.0.0", 16)),
}

#: service-prefix lengths and their weights: mostly /24-ish service blocks,
#: a tail of big /16 allocations and tiny /28 slices
PREFIX_LEN_WEIGHTS: Tuple[Tuple[int, int], ...] = (
    (16, 4), (18, 6), (20, 12), (22, 18), (24, 30), (26, 18), (28, 12),
)

#: the service ports cloud-shaped workloads register on
SERVICE_PORTS: Tuple[int, ...] = (443, 80, 8080, 8443, 9000)


@dataclass(frozen=True)
class CloudPrefix:
    """One carved service prefix of a provider's address space."""

    provider: str
    network: IPv4
    prefix_len: int

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len} ({self.provider})"


def synth_cloud_prefixes(seed: int, count: int,
                         providers: Sequence[str] = ("aws", "azure", "gcp"),
                         ) -> List[CloudPrefix]:
    """Deterministically carve ``count`` disjoint service prefixes out of
    the providers' supernets (first-fit cursor per supernet, so two calls
    with the same seed return byte-identical lists)."""
    rng = Random(seed)
    pools: List[Tuple[str, int, int, int]] = []  # (provider, base, end, cursor)
    for provider in providers:
        supernets = PROVIDER_SUPERNETS.get(provider)
        if supernets is None:
            raise ValueError(f"unknown provider {provider!r}")
        for net_str, plen in supernets:
            base = IPv4(net_str).value
            pools.append((provider, base, base + (1 << (32 - plen)), base))

    lengths = [plen for plen, _ in PREFIX_LEN_WEIGHTS]
    weights = [weight for _, weight in PREFIX_LEN_WEIGHTS]
    prefixes: List[CloudPrefix] = []
    while len(prefixes) < count:
        plen = rng.choices(lengths, weights=weights, k=1)[0]
        size = 1 << (32 - plen)
        # Weight pools by remaining capacity so big supernets fill
        # proportionally; skip pools that cannot fit this prefix.
        open_pools = [index for index, (_, _, end, cursor) in enumerate(pools)
                      if end - cursor >= size]
        if not open_pools:
            # The drawn length no longer fits anywhere: degrade to the
            # weighted mix over lengths that still do (near exhaustion the
            # tail naturally shifts toward small prefixes).
            fitting = [(length, weight) for length, weight
                       in zip(lengths, weights)
                       if any(end - cursor >= 1 << (32 - length)
                              for _, _, end, cursor in pools)]
            if not fitting:
                raise ValueError(
                    f"supernets exhausted after {len(prefixes)} prefixes")
            plen = rng.choices([length for length, _ in fitting],
                               weights=[weight for _, weight in fitting],
                               k=1)[0]
            size = 1 << (32 - plen)
            open_pools = [index for index, (_, _, end, cursor)
                          in enumerate(pools) if end - cursor >= size]
        index = rng.choices(
            open_pools,
            weights=[pools[i][2] - pools[i][3] for i in open_pools], k=1)[0]
        provider, base, end, cursor = pools[index]
        aligned = (cursor + size - 1) & prefix_mask(plen)
        if aligned + size > end:
            # Alignment pushed past the pool end: close the pool and retry.
            pools[index] = (provider, base, end, end)
            continue
        pools[index] = (provider, base, end, aligned + size)
        prefixes.append(CloudPrefix(provider=provider,
                                    network=IPv4(aligned), prefix_len=plen))
    return prefixes


def synth_service_ids(seed: int, count: int,
                      prefixes: Sequence[CloudPrefix],
                      ports: Sequence[int] = SERVICE_PORTS,
                      udp_share: float = 0.0) -> List[ServiceID]:
    """Sample ``count`` distinct service identities inside ``prefixes``.

    Addresses are drawn uniformly from the prefixes (weighted by size);
    ``udp_share`` of the identities register UDP instead of TCP — the
    registry keys on the full (addr, port, protocol) triple."""
    if not prefixes:
        raise ValueError("need at least one prefix")
    rng = Random(seed)
    # Cumulative weights: ``choices`` consumes one random() per draw either
    # way (so seeds stay stable), but cum_weights makes each draw O(log n)
    # instead of rebuilding the O(n) cumulative table — the difference
    # between seconds and hours at the benchmark's 1M-service tier.
    sizes = [1 << (32 - p.prefix_len) for p in prefixes]
    cum = list(accumulate(sizes))
    pool = list(prefixes)
    port_pool = list(ports)
    seen: set = set()
    out: List[ServiceID] = []
    while len(out) < count:
        prefix = rng.choices(pool, cum_weights=cum, k=1)[0]
        offset = rng.randrange(1 << (32 - prefix.prefix_len))
        addr = IPv4(prefix.network.value + offset)
        port = rng.choice(port_pool)
        protocol = "UDP" if rng.random() < udp_share else "TCP"
        key = (addr, port, protocol)
        if key in seen:
            continue
        seen.add(key)
        out.append(ServiceID(addr=addr, port=port, protocol=protocol))
    return out


@lru_cache(maxsize=1)
def _template() -> AnnotatedService:
    """One shared annotation template for every synthetic service."""
    sid = ServiceID(addr=IPv4("192.0.2.1"), port=80)
    return annotate_service(minimal_yaml("nginx", 80), sid)


def synthetic_service(service_id: ServiceID, prefix_len: int = 32) -> EdgeService:
    """An EdgeService that skips the YAML pipeline: identity is real, the
    deployment spec is a shared template (synthetic services are lookup/
    churn fodder and are never deployed)."""
    template = _template()
    annotated = AnnotatedService(
        service_id=service_id,
        unique_name=f"edge-{service_id.slug}",
        deployment_doc=template.deployment_doc,
        service_doc=template.service_doc,
        spec=template.spec,
        service_doc_generated=True,
    )
    return EdgeService(service_id=service_id, annotated=annotated,
                       prefix_len=prefix_len)


def bulk_register(registry: ServiceRegistry,
                  service_ids: Iterable[ServiceID],
                  prefix_len: int = 32) -> List[EdgeService]:
    """Register synthetic services for every identity; returns them."""
    return [registry.register_service(synthetic_service(sid, prefix_len))
            for sid in service_ids]


def subnet_service(prefix: CloudPrefix, port: int = 443,
                   protocol: str = "TCP") -> EdgeService:
    """A *subnet-registered* synthetic service: one identity covering the
    whole prefix (the registry's LPM answers for every address in it)."""
    sid = ServiceID(addr=prefix.network, port=port, protocol=protocol)
    return synthetic_service(sid, prefix_len=prefix.prefix_len)


def churn_schedule(seed: int, service_ids: Sequence[ServiceID],
                   ops: int, register_share: float = 0.5,
                   ) -> List[Tuple[str, ServiceID]]:
    """A deterministic register/deregister script over ``service_ids``.

    Starts from "all registered"; each op deregisters a currently-registered
    identity or re-registers a currently-absent one (``register_share`` of
    the draws attempt a register).  The schedule is replayable: applying it
    to a registry pre-loaded with ``service_ids`` never double-registers."""
    rng = Random(seed)
    registered = list(service_ids)
    absent: List[ServiceID] = []
    script: List[Tuple[str, ServiceID]] = []
    for _ in range(ops):
        do_register = absent and (not registered or rng.random() < register_share)
        if do_register:
            sid = absent.pop(rng.randrange(len(absent)))
            registered.append(sid)
            script.append(("register", sid))
        else:
            sid = registered.pop(rng.randrange(len(registered)))
            absent.append(sid)
            script.append(("deregister", sid))
    return script


def apply_churn_op(registry: ServiceRegistry, op: str,
                   service_id: ServiceID,
                   prefix_len: int = 32) -> Optional[EdgeService]:
    """Apply one schedule entry to a live registry."""
    if op == "register":
        return registry.register_service(synthetic_service(service_id, prefix_len))
    if op == "deregister":
        return registry.deregister(service_id)
    raise ValueError(f"unknown churn op {op!r}")
