"""Synthetic stand-in for the ``bigFlows.pcap`` trace (§VI).

The paper extracts all TCP conversations to public addresses from a real
five-minute capture, filters for port 80, and keeps destinations receiving
at least 20 requests — yielding **42 services and 1708 requests** (fig. 9),
whose cold starts produce **up to eight deployments per second** in the
beginning (fig. 10).

Since the capture itself is not shippable, :func:`synthesize_bigflows_trace`
builds a trace with matched marginals: a Zipf-like popularity distribution
over exactly 42 kept services totalling exactly 1708 requests (plus noise
conversations that the ≥ 20-requests extraction filter drops, so the
methodology pipeline is exercised too), with service first-appearance times
concentrated in the first seconds — which is what drives the deployment
burst. Everything is seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netsim.addresses import IPv4
from repro.simcore.rng import RandomStreams

#: Paper constants (fig. 9)
BIGFLOWS_DURATION_S = 300.0
BIGFLOWS_SERVICES = 42
BIGFLOWS_REQUESTS = 1708
BIGFLOWS_MIN_REQUESTS = 20
BIGFLOWS_PORT = 80


@dataclass(frozen=True)
class TraceRequest:
    """One request in the trace."""

    time: float
    dst: IPv4
    port: int


@dataclass
class ConversationTrace:
    """A (possibly filtered) conversation trace."""

    requests: List[TraceRequest]
    duration_s: float

    def __post_init__(self):
        self.requests.sort(key=lambda r: (r.time, int(r.dst)))

    # ------------------------------------------------------------- queries

    @property
    def services(self) -> List[Tuple[IPv4, int]]:
        seen: Dict[Tuple[IPv4, int], None] = {}
        for request in self.requests:
            seen.setdefault((request.dst, request.port))
        return list(seen)

    def request_counts(self) -> Dict[Tuple[IPv4, int], int]:
        counts: Dict[Tuple[IPv4, int], int] = {}
        for request in self.requests:
            key = (request.dst, request.port)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def first_seen(self) -> Dict[Tuple[IPv4, int], float]:
        """First request time per service — fig. 10's deployment times."""
        first: Dict[Tuple[IPv4, int], float] = {}
        for request in self.requests:
            key = (request.dst, request.port)
            if key not in first:
                first[key] = request.time
        return first

    def histogram(self, bin_s: float = 1.0,
                  times: Optional[List[float]] = None) -> Tuple[np.ndarray, np.ndarray]:
        """(bin_edges, counts) over the trace window (fig. 9 / fig. 10)."""
        if times is None:
            times = [r.time for r in self.requests]
        edges = np.arange(0.0, self.duration_s + bin_s, bin_s)
        counts, _ = np.histogram(times, bins=edges)
        return edges, counts

    def filtered(self, port: int = BIGFLOWS_PORT,
                 min_requests: int = BIGFLOWS_MIN_REQUESTS) -> "ConversationTrace":
        """The paper's extraction: keep port-`port` conversations whose
        destination received at least ``min_requests`` requests."""
        on_port = [r for r in self.requests if r.port == port]
        counts: Dict[IPv4, int] = {}
        for request in on_port:
            counts[request.dst] = counts.get(request.dst, 0) + 1
        kept = {dst for dst, n in counts.items() if n >= min_requests}
        return ConversationTrace(
            requests=[r for r in on_port if r.dst in kept],
            duration_s=self.duration_s)

    def __len__(self) -> int:
        return len(self.requests)


def _popularity_counts(rng: np.random.Generator, n_services: int, total: int,
                       minimum: int) -> np.ndarray:
    """Zipf-like per-service request counts: each ≥ minimum, summing to total."""
    if total < n_services * minimum:
        raise ValueError("total too small for the per-service minimum")
    ranks = np.arange(1, n_services + 1, dtype=float)
    weights = 1.0 / ranks ** 1.1
    weights = rng.permutation(weights)
    extra = total - n_services * minimum
    raw = weights / weights.sum() * extra
    counts = np.floor(raw).astype(int)
    # Distribute the rounding remainder deterministically to the largest
    # fractional parts.
    remainder = extra - counts.sum()
    order = np.argsort(-(raw - counts), kind="stable")
    counts[order[:remainder]] += 1
    return counts + minimum


def synthesize_bigflows_trace(
    seed: int = 2019,
    duration_s: float = BIGFLOWS_DURATION_S,
    n_services: int = BIGFLOWS_SERVICES,
    total_requests: int = BIGFLOWS_REQUESTS,
    min_requests: int = BIGFLOWS_MIN_REQUESTS,
    port: int = BIGFLOWS_PORT,
    noise_services: int = 30,
    base_address: str = "198.51.100.1",
    first_seen_scale_s: float = 4.0,
) -> ConversationTrace:
    """Build the raw synthetic capture (kept services + filtered-out noise).

    ``first_seen_scale_s`` is the exponential scale of service first-
    appearance times; ~4 s concentrates the cold starts early enough to
    produce the ≤ 8 deployments/s burst of fig. 10.
    """
    streams = RandomStreams(seed)
    rng = streams.stream("workload.bigflows")
    base = IPv4(base_address)

    counts = _popularity_counts(rng, n_services, total_requests, min_requests)
    requests: List[TraceRequest] = []
    for index in range(n_services):
        dst = IPv4(base.value + index)
        n = int(counts[index])
        first = float(rng.exponential(first_seen_scale_s))
        first = min(first, duration_s * 0.5)
        rest = rng.uniform(first, duration_s, size=n - 1)
        times = np.concatenate(([first], rest))
        for t in times:
            requests.append(TraceRequest(time=float(t), dst=dst, port=port))

    # Noise: destinations with < min_requests requests, and some on other
    # ports — both dropped by the paper's extraction filter.
    for index in range(noise_services):
        dst = IPv4(base.value + n_services + index)
        n = int(rng.integers(1, min_requests))
        noise_port = port if index % 3 else 443
        for t in rng.uniform(0.0, duration_s, size=n):
            requests.append(TraceRequest(time=float(t), dst=dst, port=int(noise_port)))

    return ConversationTrace(requests=requests, duration_s=duration_s)


def bigflows_like_trace(seed: int = 2019) -> ConversationTrace:
    """The canonical filtered trace: exactly 42 services / 1708 requests."""
    trace = synthesize_bigflows_trace(seed=seed).filtered()
    assert len(trace.services) == BIGFLOWS_SERVICES
    assert len(trace) == BIGFLOWS_REQUESTS
    return trace
