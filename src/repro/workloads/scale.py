"""Million-client scale workload: the :class:`ClientBank` device.

A :class:`~repro.netsim.host.Host` models one UE faithfully — ARP cache,
connection table, listener map, per-host stats. At 100k+ clients that
fidelity costs hundreds of bytes per *idle* client and a Python object
graph the allocator has to walk. :class:`ClientBank` is the scale-path
alternative: **one** device that impersonates ``n_clients`` clients on a
single switch port, holding state only for the conversations currently in
flight (a closed-loop window), and aggregating latencies through
:class:`~repro.workloads.loadgen.LoadResult` in streaming mode
(``keep_timings=False``) so memory stays constant at any client count.

Wire fidelity: each impersonated client replays exactly the frame sequence
a real :class:`~repro.netsim.host.Host` + ``TimedHTTPClient`` pair emits
for one ``GET`` (verified frame-by-frame by
``tests/workloads/test_client_bank.py``):

1. ``SYN`` — the packet-in that triggers transparent dispatch;
2. ``ACK`` on the ``SYN-ACK``, then the single-segment request
   (``ACK|PSH``, ``last_fragment=True``);
3. on the response's final fragment: record the latency, send ``FIN|ACK``
   (curl's ``time_total`` stops *before* the close, and so does ours);
4. on the server's ``FIN|ACK``: send the final ``ACK`` and forget the
   conversation (the server, which forgot the connection when it emitted
   its FIN, answers that ACK with a stray ``RST`` — ignored here exactly
   as a closed real stack ignores it).

Clients address frames straight to the virtual gateway MAC (a real client
resolves it once via proxy ARP and caches it forever; the bank skips the
one-time resolution), with per-client source IP/MAC derived from the
client index — interned, so repeated conversations reuse the singletons.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.metrics.stats import StreamingStats
from repro.netsim.addresses import IPv4, MAC, ip
from repro.netsim.device import Device
from repro.netsim.host import Host
from repro.netsim.packet import (
    ETH_TYPE_IP,
    IP_PROTO_TCP,
    EthernetFrame,
    HTTPRequest,
    IPv4Packet,
    TCPFlags,
    TCPSegment,
)
from repro.workloads.clients import RequestTiming
from repro.workloads.loadgen import LoadResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore import Simulator

#: Bank clients live in 10.64.0.0/10 — disjoint from the testbed's
#: 10.0.0.0/24 host allocations, room for ~4M clients.
BANK_NET = ip("10.64.0.0")
BANK_PREFIX_LEN = 10

#: Locally-administered OUI for bank client MACs.
BANK_MAC_BASE = 0x02BA00000000

#: Abort an in-flight conversation that made no progress for this long
#: (dispatch failure, dropped release, ...). Generous: a cold-start
#: deployment under the default retry policy stays well inside it.
CONVERSATION_TIMEOUT_S = 30.0

_SYN_ACK = TCPFlags.SYN | TCPFlags.ACK
_FIN = TCPFlags.FIN


class BankAlreadyStartedError(RuntimeError):
    """:meth:`ClientBank.start` was called twice."""


class BankStalledError(RuntimeError):
    """:func:`run_client_bank` hit its chunk guard with work still open."""


class _Conversation:
    """In-flight state for one impersonated client (window-bounded)."""

    __slots__ = ("index", "ip", "mac", "state", "serial",
                 "snd_nxt", "rcv_nxt", "t0", "t_connect")

    # states
    SYN_SENT = 0
    AWAIT_RESPONSE = 1
    CLOSING = 2

    def __init__(self, index: int, addr: IPv4, mac_addr: MAC,
                 serial: int, t0: float):
        self.index = index
        self.ip = addr
        self.mac = mac_addr
        self.state = _Conversation.SYN_SENT
        #: monotonically increasing launch id (watchdog match token)
        self.serial = serial
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.t0 = t0
        self.t_connect = 0.0


class ClientBank(Device):
    """``n_clients`` impersonated HTTP clients behind one switch port.

    Closed loop: at most ``window`` conversations are in flight; finishing
    (or aborting) one immediately launches the next unserved client, so the
    total frame count is deterministic and the in-memory state is bounded
    by the window, never by ``n_clients``.
    """

    def __init__(self, sim: "Simulator", name: str, n_clients: int,
                 service_addr: IPv4, service_port: int, vgw_mac: MAC,
                 window: int = 64, local_port: int = 40000,
                 request: Optional[HTTPRequest] = None,
                 client_base: int = 0):
        if n_clients <= 0:
            raise ValueError("need at least one client")
        if window <= 0:
            raise ValueError("window must be positive")
        if client_base < 0:
            raise ValueError("client_base must be non-negative")
        super().__init__(sim, name)
        self.n_clients = n_clients
        #: offset into the bank IP/MAC space — multiple banks (e.g. one
        #: per simulation domain) stay address-disjoint by spacing bases
        self.client_base = client_base
        self.service_addr = service_addr
        self.service_port = service_port
        self.vgw_mac = vgw_mac
        self.window = min(window, n_clients)
        self.local_port = local_port
        #: the single switch-facing port (unwired frames drop like a NIC
        #: with no carrier, so an unattached bank still times out cleanly)
        self.uplink_port = 0
        self.request = request if request is not None else HTTPRequest()
        self._request_bytes = self.request.wire_bytes
        #: streaming aggregation — constant memory at any client count
        self.result = LoadResult(keep_timings=False, stream=StreamingStats())
        self.launched = 0
        self.aborted = 0
        self._serial = 0
        self._active: Dict[IPv4, _Conversation] = {}
        self._started = False

    # ------------------------------------------------------------ identity

    def client_ip(self, index: int) -> IPv4:
        return IPv4(BANK_NET.value + 2 + self.client_base + index)

    def client_mac(self, index: int) -> MAC:
        return MAC(BANK_MAC_BASE + 1 + self.client_base + index)

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def done(self) -> bool:
        return (self._started and self.launched >= self.n_clients
                and not self._active)

    # -------------------------------------------------------------- driving

    def start(self, spacing_s: float = 0.0005) -> None:
        """Open the window: schedule the first ``window`` conversations,
        ``spacing_s`` apart (smooths the initial packet-in burst without
        changing determinism)."""
        if self._started:
            raise BankAlreadyStartedError(f"{self.name}: already started")
        self._started = True
        for slot in range(self.window):
            self.sim.schedule(slot * spacing_s, self._launch_next)

    def _launch_next(self) -> None:
        if self.launched >= self.n_clients:
            return
        index = self.launched
        self.launched += 1
        self.result.issued += 1
        self._serial += 1
        conv = _Conversation(index, self.client_ip(index),
                             self.client_mac(index), self._serial, self.sim.now)
        self._active[conv.ip] = conv
        self._emit(conv, TCPFlags.SYN)
        self.sim.schedule(CONVERSATION_TIMEOUT_S, self._watchdog,
                          conv.ip, conv.serial)

    def _fail(self, conv: _Conversation, error: str) -> None:
        """Account a failed conversation (``ok=False`` sample) and move on."""
        self._active.pop(conv.ip, None)
        elapsed = self.sim.now - conv.t0
        self.result.record(RequestTiming(
            client=self.name, url=f"{self.service_addr}:{self.service_port}",
            t_start=conv.t0, time_connect=conv.t_connect,
            time_total=elapsed, status=0, error=error))
        self._launch_next()

    def _watchdog(self, addr: IPv4, serial: int) -> None:
        conv = self._active.get(addr)
        if conv is None or conv.serial != serial:
            return  # finished (or the slot moved on) long ago
        self.aborted += 1
        self._fail(conv, "ConversationTimeout")

    # ------------------------------------------------------------- wire I/O

    def _emit(self, conv: _Conversation, flags: TCPFlags,
              payload: object = None, payload_bytes: int = 0) -> None:
        seg = TCPSegment(src_port=self.local_port, dst_port=self.service_port,
                         seq=conv.snd_nxt, ack=conv.rcv_nxt, flags=flags,
                         payload=payload, payload_bytes=payload_bytes,
                         last_fragment=True)
        packet = IPv4Packet(src=conv.ip, dst=self.service_addr,
                            proto=IP_PROTO_TCP, payload=seg)
        Host._frame_counter += 1
        frame = EthernetFrame(src=conv.mac, dst=self.vgw_mac,
                              ethertype=ETH_TYPE_IP, payload=packet,
                              frame_id=Host._frame_counter)
        self.transmit(self.uplink_port, frame)

    def on_frame(self, port_no: int, frame: EthernetFrame) -> None:
        packet = frame.ipv4
        if packet is None:
            return  # stray ARP broadcast — a real idle client ignores it too
        conv = self._active.get(packet.dst)
        if conv is None or packet.proto != IP_PROTO_TCP:
            return  # e.g. the server's RST answering our final ACK
        seg = packet.payload
        if not isinstance(seg, TCPSegment):  # pragma: no cover - defensive
            return

        if seg.has(TCPFlags.RST):
            # Refused / torn down mid-conversation: a failure sample.
            self._fail(conv, "ConnectionRefused"
                       if conv.state == _Conversation.SYN_SENT
                       else "ConnectionReset")
            return

        if conv.state == _Conversation.SYN_SENT:
            if seg.flags & _SYN_ACK == _SYN_ACK:
                conv.state = _Conversation.AWAIT_RESPONSE
                conv.t_connect = self.sim.now - conv.t0
                self._emit(conv, TCPFlags.ACK)
                self._emit(conv, TCPFlags.ACK | TCPFlags.PSH,
                           payload=self.request,
                           payload_bytes=self._request_bytes)
                conv.snd_nxt += self._request_bytes
            return

        if conv.state == _Conversation.AWAIT_RESPONSE:
            if seg.payload_bytes > 0 or seg.payload is not None:
                conv.rcv_nxt += seg.payload_bytes
                if seg.last_fragment:
                    timing = RequestTiming(
                        client=self.name, url=f"{self.service_addr}:{self.service_port}",
                        t_start=conv.t0, time_connect=conv.t_connect,
                        time_total=self.sim.now - conv.t0,
                        status=getattr(seg.payload, "status", 200))
                    conv.state = _Conversation.CLOSING
                    self._emit(conv, TCPFlags.FIN | TCPFlags.ACK)
                    # Record *after* the FIN left: frame order then matches
                    # a real client, where close() follows the timing stop.
                    self._record_success(conv, timing)
            return

        if conv.state == _Conversation.CLOSING and seg.has(_FIN):
            self._emit(conv, TCPFlags.ACK)
            self._finish_closed(conv)
        # else: the server's plain ACK of our FIN — ignored.

    def _record_success(self, conv: _Conversation, timing: RequestTiming) -> None:
        # Success is recorded at response time but the conversation stays
        # active until the teardown handshake completes.
        self.result.record(timing)

    def _finish_closed(self, conv: _Conversation) -> None:
        self._active.pop(conv.ip, None)
        self._launch_next()


def attach_client_bank(testbed, service, n_clients: int, window: int = 64,
                       link_latency_s: float = 0.00015,
                       bandwidth_bps: float = 1e9,
                       zone: str = "access",
                       client_base: int = 0,
                       name: str = "client-bank") -> ClientBank:
    """Wire a :class:`ClientBank` for ``service`` onto the testbed switch.

    The whole bank subnet maps to ``zone`` with one
    :meth:`~repro.core.zones.ZoneMap.assign_subnet` entry — the proximity
    scheduler then treats bank clients exactly like the testbed's real
    access-zone clients, without 100k per-client zone assignments.
    """
    from repro.experiments.topologies import VGW_MAC

    bank = ClientBank(testbed.sim, name, n_clients,
                      service_addr=service.service_id.addr,
                      service_port=service.service_id.port,
                      vgw_mac=VGW_MAC, window=window, client_base=client_base)
    port_no = max(testbed.switch.port_numbers, default=0) + 1
    testbed.net.connect(bank, 0, testbed.switch, port_no,
                        latency_s=link_latency_s, bandwidth_bps=bandwidth_bps)
    testbed.zones.assign_subnet(BANK_NET, BANK_PREFIX_LEN, zone)
    return bank


def run_client_bank(testbed, bank: ClientBank, spacing_s: float = 0.0005,
                    chunk_s: float = 30.0, max_chunks: int = 10_000) -> LoadResult:
    """Start the bank and run the simulation until every client is served.

    Runs in bounded chunks rather than draining the event queue (periodic
    housekeeping — idle checks, timers — can keep the queue non-empty).
    """
    bank.start(spacing_s=spacing_s)
    chunks = 0
    while not bank.done:
        testbed.run(until=testbed.sim.now + chunk_s)
        chunks += 1
        if chunks >= max_chunks:  # pragma: no cover - defensive guard
            raise BankStalledError(
                f"{bank.name}: stalled with {bank.active_count} conversations "
                f"in flight after {chunks} chunks")
    return bank.result
