"""Part A: reconstructed evaluation of the target paper (IPDPSW'19).

The target paper's own evaluation is not available (see the mismatch note in
DESIGN.md); these drivers measure the quantities a prototype evaluation of
*transparent access* measures:

* **A1** — response time of transparent edge access vs. direct cloud access,
  over a sweep of cloud RTTs: the motivating benefit.
* **A2** — the cost of transparency: first-packet overhead (packet-in →
  dispatch → flow-mod) vs. the flow-table fast path, and the re-miss cost
  with and without FlowMemory.
* **A3** — controller scaling: flow-setup latency as concurrent new flows
  and the number of registered services grow (the single-threaded Ryu
  pipeline is the bottleneck).
* **A4** — switch flow-table occupancy vs. idle timeout under the trace
  workload, against the FlowMemory size (the design that lets switch
  timeouts stay low).

Every sweep point is an independently seeded *cell* (a top-level picklable
function), so the sweeps fan out over :mod:`repro.experiments.pool` workers
under ``--jobs N`` while producing byte-identical tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.partb import replay_trace_through_controller
from repro.experiments.pool import Cell, run_cells
from repro.experiments.topologies import Testbed, build_testbed
from repro.metrics import Table, summarize
from repro.openflow import Match
from repro.workloads.trace import synthesize_bigflows_trace


# --------------------------------------------------------------------------
# A1 — transparent edge vs. cloud
# --------------------------------------------------------------------------


def a1_cell(cloud_rtt: float, requests: int,
            seed: int = 21) -> Tuple[List[float], List[float]]:
    """Warm edge vs. cloud samples for one cloud RTT."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       cloud_rtt_s=cloud_rtt)
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    # Also a pure-cloud control: same behaviour, unregistered address.
    from repro.edge.services import catalog_behavior

    cloud_sid = tb.alloc_service_id(80)
    tb.add_cloud_origin(cloud_sid, catalog_behavior("nginx"))
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None

    edge_samples: List[float] = []
    cloud_samples: List[float] = []
    for index in range(requests):
        edge_request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert edge_request.done and edge_request.result.ok
        cloud_request = tb.client(0).fetch(cloud_sid.addr, cloud_sid.port)
        tb.run(until=tb.sim.now + 5.0)
        assert cloud_request.done and cloud_request.result.ok
        if index > 0:  # drop first samples (carry flow-setup latency)
            edge_samples.append(edge_request.result.time_total)
            cloud_samples.append(cloud_request.result.time_total)
        tb.run(until=tb.sim.now + 0.5)
    return edge_samples, cloud_samples


def a1_edge_vs_cloud(cloud_rtts_s: Tuple[float, ...] = (0.010, 0.025, 0.050, 0.100),
                     requests: int = 10) -> Table:
    """Median ``time_total``: transparent edge access vs. direct cloud
    access, for an nginx-class service, over a sweep of cloud RTTs."""
    table = Table(
        title="A1 — Transparent edge vs. cloud access (nginx-class, warm)",
        columns=["cloud_rtt_ms", "edge_median", "cloud_median", "speedup"],
        note="median over warm requests; edge time independent of cloud RTT",
    )
    cells = [Cell(fn=a1_cell, seed=21,
                  kwargs=dict(cloud_rtt=cloud_rtt, requests=requests, seed=21))
             for cloud_rtt in cloud_rtts_s]
    for cloud_rtt, (edge_samples, cloud_samples) in zip(
            cloud_rtts_s, run_cells(cells), strict=True):
        edge_median = summarize(edge_samples).median
        cloud_median = summarize(cloud_samples).median
        table.add(cloud_rtt_ms=f"{cloud_rtt * 1e3:.0f}",
                  edge_median=edge_median, cloud_median=cloud_median,
                  speedup=f"{cloud_median / edge_median:.1f}x")
    return table


# --------------------------------------------------------------------------
# A2 — first-packet overhead and the FlowMemory re-miss path
# --------------------------------------------------------------------------


def a2_cell(use_memory: bool, repeats: int,
            seed: int = 23) -> Dict[str, List[float]]:
    """Per-path latency samples for one FlowMemory setting."""
    samples: Dict[str, List[float]] = {"fast_path": [], "first_packet": [],
                                       "remiss_with_memory": [],
                                       "remiss_without_memory": []}
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       switch_idle_timeout_s=5.0,
                       memory_idle_timeout_s=3600.0,
                       use_flow_memory=use_memory)
    svc = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None

    def timed_request():
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert request.done and request.result.ok
        return request.result.time_total

    for _ in range(repeats):
        # state: no flows, no memory for first iteration
        tb.switch.table.delete(Match(eth_type=0x0800, ip_proto=6))
        tb.memory.clear()
        if use_memory:
            samples["first_packet"].append(timed_request())
        # immediately again: pure fast path (flows installed)
        fast = timed_request()
        if use_memory:
            samples["fast_path"].append(fast)
        # let the switch flow idle out but keep memory
        tb.run(until=tb.sim.now + 8.0)
        remiss = timed_request()
        key = "remiss_with_memory" if use_memory else "remiss_without_memory"
        samples[key].append(remiss)
    return samples


def a2_first_packet_overhead(repeats: int = 9) -> Table:
    """The cost of transparency, per path through the controller:

    * ``fast_path`` — flows installed, packets never leave the switch;
    * ``first_packet`` — table miss + dispatch (instance ready, no deploy);
    * ``remiss_with_memory`` — switch flow idled out, FlowMemory answers;
    * ``remiss_without_memory`` — ablation: full re-dispatch instead.
    """
    table = Table(
        title="A2 — Request latency by controller path (nginx-class, instance ready)",
        columns=["path", "median", "overhead_vs_fast"],
        note="overhead = median - fast-path median",
    )
    cells = [Cell(fn=a2_cell, seed=23,
                  kwargs=dict(use_memory=use_memory, repeats=repeats, seed=23))
             for use_memory in (True, False)]
    samples: Dict[str, List[float]] = {"fast_path": [], "first_packet": [],
                                       "remiss_with_memory": [],
                                       "remiss_without_memory": []}
    for cell_samples in run_cells(cells):
        for key, values in cell_samples.items():
            samples[key].extend(values)

    fast_median = summarize(samples["fast_path"]).median
    for path in ("fast_path", "first_packet", "remiss_with_memory",
                 "remiss_without_memory"):
        median = summarize(samples[path]).median
        table.add(path=path, median=median,
                  overhead_vs_fast=median - fast_median)
    return table


def a2b_cell(latency: float, repeats: int,
             seed: int = 27) -> Tuple[List[float], List[float]]:
    """First-packet and fast-path samples for one control-channel latency."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       control_latency_s=latency,
                       memory_idle_timeout_s=3600.0)
    svc = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None
    first_samples: List[float] = []
    fast_samples: List[float] = []
    for _ in range(repeats):
        tb.switch.table.delete(Match(eth_type=0x0800, ip_proto=6))
        tb.memory.clear()
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert request.done and request.result.ok
        first_samples.append(request.result.time_total)
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert request.done and request.result.ok
        fast_samples.append(request.result.time_total)
    return first_samples, fast_samples


def a2b_control_latency_sweep(
    latencies_s: Tuple[float, ...] = (0.0001, 0.0005, 0.002, 0.010),
    repeats: int = 5,
) -> Table:
    """First-packet overhead vs. control-channel latency.

    The slow path pays ~2 channel traversals (packet-in + flow-mod/packet-
    out) plus controller processing; the measured overhead should track
    ``2 × latency + const``. Placement of the controller (on the EGS vs. in
    a regional PoP) is therefore a first-order design decision.
    """
    table = Table(
        title="A2b — First-packet overhead vs. control-channel latency",
        columns=["channel_latency_ms", "first_packet_median", "fast_path_median",
                 "overhead", "overhead_over_2rtt"],
        time_columns={"first_packet_median", "fast_path_median", "overhead"},
    )
    cells = [Cell(fn=a2b_cell, seed=27,
                  kwargs=dict(latency=latency, repeats=repeats, seed=27))
             for latency in latencies_s]
    for latency, (first_samples, fast_samples) in zip(
            latencies_s, run_cells(cells), strict=True):
        first = summarize(first_samples).median
        fast = summarize(fast_samples).median
        overhead = first - fast
        table.add(channel_latency_ms=f"{latency * 1e3:g}",
                  first_packet_median=first, fast_path_median=fast,
                  overhead=overhead,
                  overhead_over_2rtt=f"{overhead / (2 * latency):.1f}x")
    return table


# --------------------------------------------------------------------------
# A3 — controller scaling
# --------------------------------------------------------------------------


def a3_cell(concurrent: int, n_services: int,
            seed: int = 29) -> Tuple[List[float], int]:
    """Flow-setup samples + packet-in count for one concurrency level."""
    tb = build_testbed(seed=seed, n_clients=concurrent,
                       cluster_types=("docker",),
                       memory_idle_timeout_s=3600.0)
    services = [tb.register_catalog_service("asm") for _ in range(n_services)]
    for svc in services:
        warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 120.0)
    for svc in services:
        assert tb.clusters["docker-egs"].is_ready(svc.spec)
    packet_ins_before = tb.switch.packet_ins
    requests = []
    for index in range(concurrent):
        svc = services[index % n_services]
        requests.append(tb.client(index).fetch(svc.service_id.addr,
                                               svc.service_id.port))
    tb.run(until=tb.sim.now + 10.0)
    timings = [r.result for r in requests]
    assert all(r.done for r in requests) and all(t.ok for t in timings)
    return ([t.time_total for t in timings],
            tb.switch.packet_ins - packet_ins_before)


def a3_controller_scaling(
    concurrency_levels: Tuple[int, ...] = (1, 4, 8, 16),
    n_services: int = 16,
) -> Table:
    """Flow-setup latency vs. number of simultaneous new flows.

    All instances are warm; every client hits a *different* service with no
    installed flow, so each request costs one dispatch through the
    single-threaded controller pipeline.
    """
    table = Table(
        title="A3 — Flow-setup latency vs. concurrent new flows (warm instances)",
        columns=["concurrent", "median", "p95", "max", "packet_ins"],
        note=f"{n_services} registered services; single-threaded controller",
    )
    cells = [Cell(fn=a3_cell, seed=29,
                  kwargs=dict(concurrent=concurrent, n_services=n_services,
                              seed=29))
             for concurrent in concurrency_levels]
    for concurrent, (samples, packet_ins) in zip(
            concurrency_levels, run_cells(cells), strict=True):
        stats = summarize(samples)
        table.add(concurrent=concurrent, median=stats.median, p95=stats.p95,
                  max=stats.maximum, packet_ins=packet_ins)
    return table


def a3b_cell(count: int, seed: int = 31) -> List[float]:
    """First-packet samples with ``count`` registered (mostly idle)
    services."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       memory_idle_timeout_s=3600.0)
    services = [tb.register_catalog_service("asm") for _ in range(count)]
    target = services[0]
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], target)
    tb.run(until=tb.sim.now + 60.0)
    samples: List[float] = []
    for _ in range(5):
        tb.switch.table.delete(Match(eth_type=0x0800, ip_proto=6))
        tb.memory.clear()
        request = tb.client(0).fetch(target.service_id.addr,
                                     target.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert request.done and request.result.ok
        samples.append(request.result.time_total)
    return samples


def a3_service_count_scaling(
    service_counts: Tuple[int, ...] = (1, 8, 32, 128),
) -> Table:
    """Dispatch latency vs. number of *registered* services (registry and
    instance-gathering costs stay flat — the lookup is O(1) by ServiceID)."""
    table = Table(
        title="A3b — First-packet latency vs. registered service count",
        columns=["services", "first_packet_median"],
        note="one warm target service; the rest are registered but idle",
    )
    cells = [Cell(fn=a3b_cell, seed=31, kwargs=dict(count=count, seed=31))
             for count in service_counts]
    for count, samples in zip(service_counts, run_cells(cells), strict=True):
        table.add(services=count, first_packet_median=summarize(samples).median)
    return table


# --------------------------------------------------------------------------
# A5 — multi-switch fabric overhead
# --------------------------------------------------------------------------


def a5_cell(label: str, requests: int, seed: int = 83) -> Dict[str, object]:
    """Warm/first-packet medians for one fabric flavour."""
    from repro.experiments.multiswitch import build_multiswitch_testbed

    if label == "single-switch":
        tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                           memory_idle_timeout_s=3600.0)
        switches = [tb.switch]
    else:
        tb = build_multiswitch_testbed(seed=seed, n_access_switches=1,
                                       clients_per_switch=1,
                                       memory_idle_timeout_s=3600.0)
        switches = [tb.switch] + list(tb.access_switches)
    svc = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None

    warm_samples: List[float] = []
    first_samples: List[float] = []
    for _ in range(requests):
        # first packet: clear all flows + memory
        for switch in switches:
            switch.table.delete(Match(eth_type=0x0800, ip_proto=6))
        tb.memory.clear()
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert request.done and request.result.ok
        first_samples.append(request.result.time_total)
        # immediately again: warm fast path
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 5.0)
        assert request.done and request.result.ok
        warm_samples.append(request.result.time_total)
    programmed = sum(1 for switch in switches
                     if any(e.priority == 20 for e in switch.table.entries))
    return {"fabric": label,
            "warm_median": summarize(warm_samples).median,
            "first_packet_median": summarize(first_samples).median,
            "switches_programmed": programmed}


def a5_multiswitch_overhead(requests: int = 9) -> Table:
    """Transparent access across a 2-hop access/core fabric vs. the
    single-switch testbed: warm fast path and first-packet cost.

    The rewrite happens once at the ingress; transit switches forward on
    exact matches, so the warm path should cost only the extra link+switch
    latency, and the first packet one more flow-mod fan-out.
    """
    table = Table(
        title="A5 — Single switch vs. 2-hop access/core fabric (nginx, warm instance)",
        columns=["fabric", "warm_median", "first_packet_median", "switches_programmed"],
        note="first packet = no flows anywhere, FlowMemory cleared",
    )
    cells = [Cell(fn=a5_cell, seed=83,
                  kwargs=dict(label=label, requests=requests, seed=83))
             for label in ("single-switch", "access+core")]
    for row in run_cells(cells):
        table.add(**row)
    return table


# --------------------------------------------------------------------------
# A6 — transparent access at scale (ClientBank closed loop)
# --------------------------------------------------------------------------


def a6_cell(clients: int, window: int, seed: int = 97) -> Dict[str, object]:
    """Serve ``clients`` one-shot HTTP clients through one warm service.

    Every conversation is a *new* client IP — each pays the packet-in +
    dispatch slow path — while short switch/memory idle timeouts keep the
    flow table and FlowMemory bounded. Only simulation-derived quantities
    are returned (wall time and memory belong to ``repro.bench``, not to a
    deterministic CSV).
    """
    from repro.workloads.scale import attach_client_bank, run_client_bank

    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       switch_idle_timeout_s=0.5, memory_idle_timeout_s=2.0)
    svc = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None

    bank = attach_client_bank(tb, svc, n_clients=clients, window=window)
    result = run_client_bank(tb, bank)
    summary = result.summary()
    return {"clients": clients,
            "window": window,
            "ok": result.ok_count,
            "failed": result.failed,
            "forwarded_frames": tb.switch.tx_frames,
            "packet_ins": tb.switch.packet_ins,
            "dispatches": tb.controller.stats["service_dispatches"],
            "mean_ms": round(summary.mean * 1000, 3),
            "p95_ms": round(summary.p95 * 1000, 3)}


def a6_scale(client_counts: Tuple[int, ...] = (1_000, 3_000, 10_000),
             window: int = 64) -> Table:
    """Closed-loop scale sweep: unique clients served through the
    transparent fast/slow path, with streaming (constant-memory) latency
    aggregation. The ≥100k-client / ≥1M-frame configuration of the same
    scenario runs under ``repro.bench`` where peak RSS is recorded."""
    table = Table(
        title="A6 — Scale path: unique one-shot clients through one warm service",
        columns=["clients", "window", "ok", "failed", "forwarded_frames",
                 "packet_ins", "dispatches", "mean_ms", "p95_ms"],
        note="each conversation is a new client (full slow path); "
             "switch idle 0.5s, FlowMemory idle 2s",
    )
    cells = [Cell(fn=a6_cell, seed=97,
                  kwargs=dict(clients=clients, window=window, seed=97))
             for clients in client_counts]
    for row in run_cells(cells):
        table.add(**row)
    return table


# --------------------------------------------------------------------------
# A4 — flow-table occupancy vs. idle timeout
# --------------------------------------------------------------------------


def a4_cell(idle_timeout_s: float, n_services: int, total_requests: int,
            duration_s: float, trace_seed: int = 77,
            seed: int = 37) -> Dict[str, object]:
    """Trace replay under one switch idle timeout; returns the table row.

    The trace is resynthesized from ``trace_seed`` inside the cell so the
    cell stays self-contained (and cheaply picklable)."""
    trace = synthesize_bigflows_trace(
        seed=trace_seed, duration_s=duration_s, n_services=n_services,
        total_requests=total_requests, min_requests=10,
        noise_services=0).filtered(min_requests=10)
    outcome = replay_trace_through_controller(
        trace=trace, seed=seed, switch_idle_timeout_s=idle_timeout_s)
    flow_samples = outcome["flow_samples"]
    flows = np.array([f for _, f, _ in flow_samples], dtype=float)
    memory = np.array([m for _, _, m in flow_samples], dtype=float)
    tb: Testbed = outcome["testbed"]
    return {"idle_timeout_s": idle_timeout_s,
            "mean_flows": float(flows.mean()),
            "max_flows": int(flows.max()),
            "mean_memory": float(memory.mean()),
            "packet_ins": tb.switch.packet_ins,
            "deployments": len(outcome["deployments"])}


def a4_flowtable_occupancy(
    idle_timeouts_s: Tuple[float, ...] = (5.0, 10.0, 30.0),
    n_services: int = 12,
    total_requests: int = 360,
    duration_s: float = 120.0,
) -> Table:
    """Replay a scaled-down trace for several switch idle timeouts; report
    switch-table occupancy vs. FlowMemory size and packet-in load."""
    table = Table(
        title="A4 — Switch flow-table occupancy vs. idle timeout (trace replay)",
        columns=["idle_timeout_s", "mean_flows", "max_flows",
                 "mean_memory", "packet_ins", "deployments"],
        note=f"{n_services} services, {total_requests} requests over {duration_s:.0f}s",
    )
    cells = [Cell(fn=a4_cell, seed=37,
                  kwargs=dict(idle_timeout_s=idle, n_services=n_services,
                              total_requests=total_requests,
                              duration_s=duration_s, trace_seed=77, seed=37))
             for idle in idle_timeouts_s]
    for row in run_cells(cells):
        table.add(**row)
    return table
