"""A7 — sharded multi-ingress scenario over parallel simulation domains.

The scenario the tentpole refactor exists for: ``N`` per-ingress domains,
each a full testbed slice — its own switch, controller, registry,
dispatcher, FlowMemory, Docker cluster — serving a local
:class:`~repro.workloads.scale.ClientBank` *plus* a smaller bank whose
clients target the service homed in the **next** domain (a ring), so
every domain both originates and serves cross-domain traffic.

Cross-domain traffic is transparent at both ends, exactly like the
single-loop scenarios:

* the *originating* domain has no local registration for the remote
  service address, so its controller falls back to plain routing — the
  remote address is wired as a static host at the domain-gateway port
  (the same mechanism ``add_cloud_origin`` uses for the cloud uplink);
* the *serving* domain sees an ordinary packet-in from an unknown client
  at its gateway port, learns it there, and dispatches transparently to
  its local edge cluster — remote clients ride the identical slow/fast
  path as local ones.

State is sharded by construction: every domain owns its slice of
FlowMemory, dispatcher load counters and registry view; the only shared
channel is the envelope exchange at lockstep barriers. Per-domain rows
(and the streaming-stats aggregate row, merged in domain-id order) are
therefore byte-identical however many worker processes execute the
domains — ``--domains N`` output equals ``--domains 1`` output.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core import AttachmentPoint, ServiceID
from repro.metrics import Table
from repro.metrics.stats import StreamingStats
from repro.netsim.addresses import IPv4
from repro.netsim.packet import EthernetFrame
from repro.simcore import Simulator, TraceLog
from repro.simcore.domains import (
    DomainGateway,
    DomainPartition,
    LockstepCoordinator,
    LockstepOutcome,
    active_domain_workers,
)
from repro.workloads.scale import BANK_NET, BANK_PREFIX_LEN, ClientBank, attach_client_bank

#: logical partition width of the A7 scenario (fixed by the topology —
#: ``--domains N`` only selects how many worker processes execute it)
A7_N_DOMAINS = 4

#: inter-domain link latency == conservative lookahead (one barrier epoch)
CROSS_LATENCY_S = 0.002

#: aligned lockstep start: every domain builds, warm-deploys its service
#: and starts its banks by exactly this simulated time
WARMUP_S = 60.0

#: service addresses: domain ``d`` homes SERVICE_NET + SERVICE_BASE + d
#: (offset keeps clear of ``Testbed.alloc_service_id`` suffixes)
SERVICE_BASE = 200

#: each (domain, bank) pair gets a disjoint 2^20-address client slice
BANK_SLICE_BITS = 20


def domain_service_id(domain_id: int) -> ServiceID:
    """The service address homed in (owned and served by) ``domain_id``."""
    from repro.experiments.topologies import SERVICE_NET

    return ServiceID(IPv4(SERVICE_NET.value + SERVICE_BASE + domain_id), 80)


def bank_client_base(domain_id: int, bank_no: int) -> int:
    """Address-space base for bank ``bank_no`` (0=local, 1=remote) of
    ``domain_id`` — disjoint slices, so client identities are unique
    across the whole partition."""
    return ((domain_id << 1) | bank_no) << BANK_SLICE_BITS


def owning_domain(addr: IPv4, n_domains: int) -> Optional[int]:
    """Which domain an address belongs to (service or bank client), or
    ``None`` if it is not cross-domain routable."""
    from repro.experiments.topologies import SERVICE_NET

    service_index = addr.value - SERVICE_NET.value - SERVICE_BASE
    if 0 <= service_index < n_domains:
        return service_index
    client_offset = addr.value - BANK_NET.value - 2
    if 0 <= client_offset < (n_domains << (BANK_SLICE_BITS + 1)):
        return client_offset >> (BANK_SLICE_BITS + 1)
    return None


class IngressDomainModel:
    """One ingress domain: a testbed slice plus its two client banks."""

    def __init__(self, domain_id: int, n_domains: int, seed: int,
                 clients_local: int, clients_remote: int, window: int,
                 cross_latency_s: float, trace_enabled: bool,
                 stagger: int = 0) -> None:
        from repro.experiments.topologies import build_testbed

        self.domain_id = domain_id
        # Stagger load across ingresses: identical per-domain rows would
        # hide a domain-permutation bug from the identity tests.
        clients_local = clients_local + stagger * domain_id
        tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                           switch_idle_timeout_s=0.5, memory_idle_timeout_s=2.0,
                           trace=TraceLog(enabled=trace_enabled))
        self.tb = tb

        # The domain's own service, at its well-known sharded address.
        svc = tb.register_catalog_service(
            "nginx", service_id=domain_service_id(domain_id))
        warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)

        # Cross-domain edge: a gateway device on the ingress switch.
        def classify(frame: EthernetFrame) -> Optional[int]:
            packet = frame.ipv4
            if packet is None:
                return None
            owner = owning_domain(packet.dst, n_domains)
            return None if owner == domain_id else owner

        gateway = DomainGateway(tb.sim, f"domain-gw-{domain_id}", domain_id,
                                classify, cross_latency_s,
                                mac_addr=tb.net.alloc_mac())
        gw_port = max(tb.switch.port_numbers, default=0) + 1
        tb.net.connect(gateway, gateway.uplink_port, tb.switch, gw_port,
                       latency_s=0.0001, bandwidth_bps=10e9)
        self.gateway: Optional[DomainGateway] = gateway

        # Remote service addresses resolve to the gateway port (static
        # hosts — same wiring as the cloud uplink), so the controller's
        # plain-routing path sends cross-domain frames out the gateway.
        for other in range(n_domains):
            if other == domain_id:
                continue
            remote = domain_service_id(other)
            tb.controller.cfg.static_hosts[remote.addr] = AttachmentPoint(
                dpid=tb.switch.dpid, port_no=gw_port,
                mac=gateway.mac, ip=remote.addr)
            tb.controller.hosts[remote.addr] = (
                tb.switch.dpid, gw_port, gateway.mac)

        # Local bank: the domain's own clients hitting its own service.
        self.local_bank = attach_client_bank(
            tb, svc, n_clients=clients_local, window=window,
            client_base=bank_client_base(domain_id, 0),
            name=f"bank-local-{domain_id}")
        # Remote bank: clients of this ingress hitting the service homed
        # in the next domain around the ring (pure cross-domain load).
        remote_service = domain_service_id((domain_id + 1) % n_domains)
        self.remote_bank = ClientBank(
            tb.sim, f"bank-remote-{domain_id}", clients_remote,
            service_addr=remote_service.addr,
            service_port=remote_service.port,
            vgw_mac=tb.controller.cfg.vgw_mac, window=window,
            client_base=bank_client_base(domain_id, 1))
        bank_port = max(tb.switch.port_numbers) + 1
        tb.net.connect(self.remote_bank, self.remote_bank.uplink_port,
                       tb.switch, bank_port,
                       latency_s=0.00015, bandwidth_bps=1e9)
        tb.zones.assign_subnet(BANK_NET, BANK_PREFIX_LEN, "access")
        # Pre-register the remote-bank clients (5G attachment: the
        # ingress knows its UEs). Local clients are learned from their
        # per-client dispatch packet-ins, but remote-bound SYNs after the
        # first match the service route flow and never reach the
        # controller — without registration the returning SYN-ACKs would
        # be unknown-destination drops.
        for index in range(clients_remote):
            client_addr = self.remote_bank.client_ip(index)
            client_mac = self.remote_bank.client_mac(index)
            tb.controller.cfg.static_hosts[client_addr] = AttachmentPoint(
                dpid=tb.switch.dpid, port_no=bank_port,
                mac=client_mac, ip=client_addr)
            tb.controller.hosts[client_addr] = (
                tb.switch.dpid, bank_port, client_mac)

        # Align every domain at exactly t0 = WARMUP_S with a warm local
        # service, then open both banks' windows (first frames at t0).
        tb.run(until=WARMUP_S)
        assert warm.done and warm.exception is None
        self.local_bank.start()
        self.remote_bank.start()

    @property
    def sim(self) -> Simulator:
        return self.tb.sim

    def done(self) -> bool:
        return self.local_bank.done and self.remote_bank.done

    def finalize(self) -> Dict[str, Any]:
        tb = self.tb
        gateway = self.gateway
        assert gateway is not None
        local, remote = self.local_bank.result, self.remote_bank.result
        assert local.stream is not None and remote.stream is not None
        # One per-domain latency aggregate across both banks (local then
        # remote — fixed order keeps the merge deterministic).
        stream = StreamingStats()
        stream.merge(local.stream)
        stream.merge(remote.stream)
        summary = stream.summary()
        row = {
            "domain": f"ingress-{self.domain_id}",
            "clients": self.local_bank.n_clients + self.remote_bank.n_clients,
            "ok": local.ok_count + remote.ok_count,
            "failed": local.failed + remote.failed,
            "x_out": gateway.envelopes_captured,
            "x_in": gateway.envelopes_injected,
            "packet_ins": tb.switch.packet_ins,
            "dispatches": tb.controller.stats["service_dispatches"],
            "forwarded_frames": tb.switch.tx_frames,
            "mean_ms": round(summary.mean * 1000, 3),
            "p95_ms": round(summary.p95 * 1000, 3),
        }
        return {"row": row, "stream": stream}


def build_ingress_domain(domain_id: int, n_domains: int, seed: int,
                         clients_local: int, clients_remote: int,
                         window: int = 32,
                         cross_latency_s: float = CROSS_LATENCY_S,
                         trace_enabled: bool = False,
                         stagger: int = 0) -> IngressDomainModel:
    """Top-level picklable builder (the :class:`DomainSpec` contract)."""
    return IngressDomainModel(domain_id, n_domains, seed, clients_local,
                              clients_remote, window, cross_latency_s,
                              trace_enabled, stagger)


def build_domain_partition(n_domains: int = A7_N_DOMAINS, seed: int = 2019,
                           clients_local: int = 150, clients_remote: int = 50,
                           window: int = 32, stagger: int = 10,
                           trace_enabled: bool = False) -> DomainPartition:
    """The A7 logical partition: one domain per ingress, ring-coupled."""
    return DomainPartition.per_ingress(
        build_ingress_domain, n_domains=n_domains, root_seed=seed,
        lookahead_s=CROSS_LATENCY_S, t0=WARMUP_S,
        common_kwargs={"clients_local": clients_local,
                       "clients_remote": clients_remote,
                       "window": window, "stagger": stagger,
                       "trace_enabled": trace_enabled})


def run_sharded_ingress(n_domains: int = A7_N_DOMAINS, seed: int = 2019,
                        clients_local: int = 150, clients_remote: int = 50,
                        window: int = 32, stagger: int = 10,
                        processes: int = 1,
                        trace_enabled: bool = False) -> LockstepOutcome:
    """Build the partition and run it to completion under lockstep."""
    partition = build_domain_partition(
        n_domains=n_domains, seed=seed, clients_local=clients_local,
        clients_remote=clients_remote, window=window, stagger=stagger,
        trace_enabled=trace_enabled)
    return LockstepCoordinator(partition, processes=processes).run()


def sharded_table(outcome: LockstepOutcome, clients_local: int,
                  clients_remote: int) -> Table:
    """Render a lockstep outcome as the A7 table (rows in domain order,
    plus a streaming-merged aggregate row)."""
    table = Table(
        title="A7 — Sharded multi-ingress domains under conservative lockstep",
        columns=["domain", "clients", "ok", "failed", "x_out", "x_in",
                 "packet_ins", "dispatches", "forwarded_frames",
                 "mean_ms", "p95_ms"],
        note=f"{outcome.n_domains} per-ingress domains, lookahead "
             f"{outcome.lookahead_s * 1000:.0f} ms, {outcome.epochs} barrier "
             f"epochs, {outcome.envelopes_exchanged} envelopes; "
             f"{clients_local} local + {clients_remote} remote clients per "
             f"domain; output is byte-identical across --domains N",
    )
    total = StreamingStats()
    sums = {"clients": 0, "ok": 0, "failed": 0, "x_out": 0, "x_in": 0,
            "packet_ins": 0, "dispatches": 0, "forwarded_frames": 0}
    for domain in outcome.outcomes:  # domain-id order == seed order
        row = domain.result["row"]
        table.add(**row)
        for key in sums:
            sums[key] += row[key]
        total.merge(domain.result["stream"])
    summary = total.summary()
    table.add(domain="total", **sums,
              mean_ms=round(summary.mean * 1000, 3),
              p95_ms=round(summary.p95 * 1000, 3))
    return table


def a7_sharded_domains(n_domains: int = A7_N_DOMAINS,
                       clients_local: int = 150,
                       clients_remote: int = 50) -> Table:
    """The registered A7 artifact driver.

    The worker count comes from the runner's ``--domains N`` context;
    the logical partition (and therefore every number in the table) does
    not depend on it.
    """
    outcome = run_sharded_ingress(
        n_domains=n_domains, clients_local=clients_local,
        clients_remote=clients_remote, processes=active_domain_workers())
    return sharded_table(outcome, clients_local, clients_remote)
