"""Ablation studies for the design choices DESIGN.md §5 calls out.

Each returns a :class:`~repro.metrics.report.Table` contrasting a design
decision with its alternative:

* FlowMemory on/off (re-miss cost — complements experiment A2);
* on-demand deployment *with* vs. *without* waiting (first-request latency
  vs. where later requests land);
* the Discussion section's hybrid: serve the first request via Docker, then
  migrate the service to Kubernetes for managed operation;
* Global-Scheduler policies under skewed load;
* public vs. private registry and warm vs. cold layer cache.

Each arm of every ablation is an independently seeded *cell* (top-level,
picklable), so the contrasting configurations run in parallel under
``--jobs N`` without changing a byte of output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.scheduler import LoadAwareScheduler, ProximityScheduler, RoundRobinScheduler
from repro.experiments.pool import Cell, run_cells
from repro.experiments.topologies import Testbed, build_testbed
from repro.metrics import Table, summarize
from repro.openflow import Match


def _request(tb: Testbed, svc, client_index: int = 0, window_s: float = 30.0):
    request = tb.client(client_index).fetch(svc.service_id.addr, svc.service_id.port)
    tb.run(until=tb.sim.now + window_s)
    assert request.done, "request did not finish in window"
    timing = request.result
    assert timing.ok, f"request failed: {timing.error}"
    return timing


def flow_memory_cell(use_memory: bool, repeats: int,
                     seed: int = 41) -> Dict[str, object]:
    """Re-miss samples for one FlowMemory setting."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       switch_idle_timeout_s=5.0,
                       memory_idle_timeout_s=3600.0,
                       use_flow_memory=use_memory)
    svc = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None
    _request(tb, svc)  # prime memory + flows
    samples = []
    for _ in range(repeats):
        tb.run(until=tb.sim.now + 8.0)  # switch flows idle out
        samples.append(_request(tb, svc).time_total)
    return {"flow_memory": "on" if use_memory else "off",
            "remiss_median": summarize(samples).median,
            "dispatches": tb.controller.stats["service_dispatches"]}


def ablation_flow_memory(repeats: int = 9) -> Table:
    """Re-miss latency with and without FlowMemory (switch idle timeouts
    kept LOW, per the design's stated purpose)."""
    table = Table(
        title="Ablation — FlowMemory on/off (re-miss after switch flow idled out)",
        columns=["flow_memory", "remiss_median", "dispatches"],
        note="low (5 s) switch idle timeout; warm instance",
    )
    cells = [Cell(fn=flow_memory_cell, seed=41,
                  kwargs=dict(use_memory=use_memory, repeats=repeats, seed=41))
             for use_memory in (True, False)]
    for row in run_cells(cells):
        table.add(**row)
    return table


def waiting_mode_cell(mode: str, budget: Optional[float],
                      seed: int = 43) -> Dict[str, object]:
    """One waiting-mode arm: optimal edge cold, farther edge warm."""
    tb = build_testbed(seed=seed, n_clients=1,
                       cluster_types=("docker", "kubernetes"),
                       switch_idle_timeout_s=3.0,
                       memory_idle_timeout_s=6.0)
    optimal = tb.clusters["docker-egs"]
    farther = tb.clusters["k8s-egs"]
    farther.zone = "far-edge"
    tb.zones.set_rtt("access", "far-edge", 0.015)
    svc = tb.register_catalog_service("nginx", max_initial_delay_s=budget)
    # farther edge warm; optimal edge cold but image cached
    warm = tb.engine.ensure_available(farther, svc)
    pull = optimal.pull(svc.spec)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and pull.done
    first = _request(tb, svc)
    # wait for flows+memory to idle out so the next request re-dispatches
    tb.run(until=tb.sim.now + 10.0)
    later = _request(tb, svc, window_s=2.0)
    remembered = tb.memory.peek(tb.clients[0].ip, svc.service_id)
    assert remembered is not None, "memory entry expired before peek"
    served_by_optimal = remembered.cluster is optimal
    return {"mode": mode,
            "first_request": first.time_total,
            "later_request": later.time_total,
            "served_by_optimal_later": served_by_optimal}


def ablation_waiting_modes() -> Table:
    """With-waiting vs. without-waiting when the optimal edge is cold but a
    farther edge has a running instance."""
    table = Table(
        title="Ablation — On-demand deployment with vs. without waiting",
        columns=["mode", "first_request", "later_request", "served_by_optimal_later"],
        note="optimal edge cold (image cached); farther edge warm",
        time_columns={"first_request", "later_request"},
    )
    cells = [Cell(fn=waiting_mode_cell, seed=43,
                  kwargs=dict(mode=mode, budget=budget, seed=43))
             for mode, budget in (("with_waiting", None), ("without_waiting", 0.05))]
    for row in run_cells(cells):
        table.add(**row)
    return table


def hybrid_cell(strategy: str, seed: int = 47) -> Dict[str, object]:
    """One strategy arm of the Docker-then-K8s hybrid ablation."""
    if strategy == "k8s_only":
        tb = build_testbed(seed=seed, n_clients=1, cluster_types=("kubernetes",),
                           switch_idle_timeout_s=3.0, memory_idle_timeout_s=6.0)
        svc = tb.register_catalog_service("nginx")
        pull = tb.clusters["k8s-egs"].pull(svc.spec)
        tb.run(until=tb.sim.now + 60.0)
        first = _request(tb, svc)
        steady = _request(tb, svc, window_s=2.0)
        return {"strategy": strategy, "first_request": first.time_total,
                "steady_request": steady.time_total, "managed_by": "kubernetes"}

    # Hybrid — Docker answers the first request (it is the nearest/fastest
    # to become ready); K8s is deployed in the background afterwards.
    tb = build_testbed(seed=seed, n_clients=1,
                       cluster_types=("docker", "kubernetes"),
                       switch_idle_timeout_s=3.0, memory_idle_timeout_s=6.0)
    docker = tb.clusters["docker-egs"]
    k8s = tb.clusters["k8s-egs"]
    svc = tb.register_catalog_service("nginx")
    pull = docker.pull(svc.spec)  # shared containerd: also cached for K8s
    tb.run(until=tb.sim.now + 60.0)
    first = _request(tb, svc)  # docker cold start ~0.6 s
    # Background: move the service under Kubernetes management.
    deploy = tb.engine.ensure_available(k8s, svc)
    tb.run(until=tb.sim.now + 30.0)
    assert deploy.done and deploy.exception is None
    tb.engine.scale_down(docker, svc)
    tb.memory.clear()
    tb.switch.table.delete(Match(eth_type=0x0800, ip_proto=6))
    tb.run(until=tb.sim.now + 10.0)
    steady = _request(tb, svc, window_s=2.0)
    remembered = tb.memory.peek(tb.clients[0].ip, svc.service_id)
    assert remembered is not None, "memory entry expired before peek"
    return {"strategy": strategy, "first_request": first.time_total,
            "steady_request": steady.time_total,
            "managed_by": remembered.cluster.cluster_type}


def ablation_hybrid_docker_then_k8s() -> Table:
    """The Discussion's 'best of both worlds': answer the first request from
    a Docker-started instance, deploy to Kubernetes in the background, and
    let future requests land on the managed K8s instance."""
    table = Table(
        title="Ablation — Hybrid: Docker first response, Kubernetes afterwards",
        columns=["strategy", "first_request", "steady_request", "managed_by"],
        note="image cached on the shared EGS containerd",
        time_columns={"first_request", "steady_request"},
    )
    cells = [Cell(fn=hybrid_cell, seed=47,
                  kwargs=dict(strategy=strategy, seed=47))
             for strategy in ("k8s_only", "hybrid_docker_then_k8s")]
    for row in run_cells(cells):
        table.add(**row)
    return table


def scheduler_cell(name: str, n_services: int, clients_per_service: int,
                   seed: int = 53) -> Dict[str, object]:
    """One Global-Scheduler policy under skewed load."""
    tb = build_testbed(seed=seed, n_clients=n_services * clients_per_service,
                       cluster_types=("docker",), shared_egs=True)
    # add a second docker cluster on its own node, farther away
    from repro.core.controller import AttachmentPoint
    from repro.edge import Containerd, DockerCluster, DockerEngine

    node = tb.net.add_host("egs-far", gateway=None, prefix_len=32)
    port_no = max(tb.switch.port_numbers) + 1
    tb.net.connect(node, 0, tb.switch, port_no, latency_s=0.002)
    runtime = Containerd(tb.sim, node, tb.hub)
    far = DockerCluster(tb.sim, "docker-far", DockerEngine(tb.sim, runtime),
                        zone="far-edge")
    tb.zones.set_rtt("access", "far-edge", 0.010)
    tb.clusters[far.name] = far
    tb.dispatcher.clusters.append(far)
    tb.controller.cluster_attachments[far.name] = AttachmentPoint(
        dpid=tb.switch.dpid, port_no=port_no, mac=node.mac, ip=node.ip)

    if name == "proximity":
        tb.dispatcher.scheduler = ProximityScheduler(tb.zones)
    elif name == "round-robin":
        tb.dispatcher.scheduler = RoundRobinScheduler()
    else:
        tb.dispatcher.scheduler = LoadAwareScheduler(tb.zones)

    services = [tb.register_catalog_service("asm") for _ in range(n_services)]
    for cluster in tb.clusters.values():
        for svc in services:
            cluster.pull(svc.spec)
    tb.run(until=tb.sim.now + 60.0)

    # Stagger arrivals so load-aware policies can observe load build-up.
    requests = []

    def issue(client_index, svc):
        requests.append(tb.client(client_index).fetch(
            svc.service_id.addr, svc.service_id.port))

    offset = 0.0
    for service_index, svc in enumerate(services):
        for c in range(clients_per_service):
            client_index = service_index * clients_per_service + c
            tb.sim.schedule(offset, issue, client_index, svc)
            offset += 0.3
    tb.run(until=tb.sim.now + offset + 60.0)
    timings = [r.result for r in requests if r.done]
    assert len(timings) == len(requests)
    stats = summarize([t.time_total for t in timings if t.ok])
    by_cluster: Dict[str, int] = {}
    for record in tb.engine.records_for(cold_only=True):
        by_cluster[record.cluster] = by_cluster.get(record.cluster, 0) + 1
    return {"scheduler": name, "median": stats.median, "p95": stats.p95,
            "near_deployments": by_cluster.get("docker-egs", 0),
            "far_deployments": by_cluster.get("docker-far", 0)}


def ablation_schedulers(n_services: int = 6, clients_per_service: int = 3) -> Table:
    """Scheduler policies under load: proximity piles everything on the
    nearest cluster; round-robin and load-aware spread deployments."""
    table = Table(
        title="Ablation — Global Scheduler policies (2 edges, skewed demand)",
        columns=["scheduler", "median", "p95", "near_deployments", "far_deployments"],
        note=f"{n_services} services x {clients_per_service} clients each",
    )
    cells = [Cell(fn=scheduler_cell, seed=53,
                  kwargs=dict(name=name, n_services=n_services,
                              clients_per_service=clients_per_service, seed=53))
             for name in ("proximity", "round-robin", "load-aware")]
    for row in run_cells(cells):
        table.add(**row)
    return table


def registry_cache_cell(private: bool, keys: Tuple[str, ...],
                        seed: int = 59) -> float:
    """Pull the listed services in order; return the last pull's duration."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       use_private_registry=private)
    cluster = tb.clusters["docker-egs"]
    durations = []
    for key in keys:
        svc = tb.register_catalog_service(key)
        holder = {}

        def timed(cluster=cluster, svc=svc, holder=holder):
            t0 = tb.sim.now
            yield cluster.pull(svc.spec)
            holder["d"] = tb.sim.now - t0

        tb.sim.spawn(timed())
        tb.run(until=tb.sim.now + 120.0)
        durations.append(holder["d"])
    return durations[-1]


def ablation_registry_cache() -> Table:
    """Pull-time composition: cold vs. warm layer cache, public vs. private
    registry, and the shared-base-layer effect (nginx then nginx+py)."""
    table = Table(
        title="Ablation — Registry and layer-cache effects on pull time",
        columns=["scenario", "pull_s"],
    )
    scenarios: List[Tuple[str, bool, Tuple[str, ...]]] = [
        ("nginx, public, cold", False, ("nginx",)),
        ("nginx, private, cold", True, ("nginx",)),
        ("nginx twice (warm cache)", False, ("nginx", "nginx")),
        ("nginx then nginx+py (shared base)", False, ("nginx", "nginx+py")),
    ]
    cells = [Cell(fn=registry_cache_cell, seed=59,
                  kwargs=dict(private=private, keys=keys, seed=59))
             for _, private, keys in scenarios]
    for (label, _, _), pull_s in zip(scenarios, run_cells(cells), strict=True):
        table.add(scenario=label, pull_s=pull_s)
    return table
