"""C1 — registry churn under live traffic (ROADMAP item 3).

The web-scale claim is not "a trie is fast": it is that the *packet-in
decision stays correct and cheap while the registered address space churns
under live traffic*.  This scenario registers thousands of cloud-shaped
synthetic services (plus a few subnet-registered prefixes), then
register/deregisters them on a deterministic schedule while a ClientBank
drives conversations through one real target service.

Invariants recorded as CSV columns (both must be zero):

* ``misdispatched`` — decision-coherence probes: after every churn batch a
  sample of service identities is pushed through the controller's memoized
  packet-in decision (:meth:`service_decision`) and compared against the
  live registry's ground truth (``lookup_prefix``).  Any disagreement means
  a stale memo survived a generation bump — a packet would have been
  dispatched to a deregistered service or routed past a registered one.
  Unserved bank conversations count here too.
* ``verify_violations`` — the full data-plane verifier (V1–V5) at quiesce.

Cells are pure functions of their seed (same seed -> identical row), so the
CSV is byte-identical across ``--jobs N``.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Tuple

from repro.experiments.pool import Cell, run_cells
from repro.experiments.topologies import build_testbed
from repro.metrics import Table

#: sim-time between churn batches (well under the bank's total runtime, so
#: churn and traffic genuinely interleave)
CHURN_TICK_S = 0.05


def c1_churn_cell(n_services: int, churn_ops: int, clients: int,
                  window: int = 48, batch: int = 4,
                  probes_per_batch: int = 8, seed: int = 401) -> Dict[str, object]:
    """One churn tier: returns the table row (pure function of the seed)."""
    from repro.verify import verify_testbed
    from repro.workloads.cloudprefix import (
        apply_churn_op,
        bulk_register,
        churn_schedule,
        subnet_service,
        synth_cloud_prefixes,
        synth_service_ids,
    )
    from repro.workloads.scale import attach_client_bank, run_client_bank

    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       switch_idle_timeout_s=0.5, memory_idle_timeout_s=2.0)
    target = tb.register_catalog_service("nginx")
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], target)
    tb.run(until=tb.sim.now + 60.0)
    assert warm.done and warm.exception is None

    # Cloud-shaped background registrations: host services sampled inside
    # provider prefixes (a quarter UDP — the registry keys on the full
    # triple) plus a few subnet-registered prefixes resolved by LPM.
    registry = tb.controller.registry
    prefixes = synth_cloud_prefixes(seed=seed, count=max(8, n_services // 64))
    service_ids = synth_service_ids(seed + 1, n_services, prefixes,
                                    udp_share=0.25)
    bulk_register(registry, service_ids)
    for prefix in prefixes[:4]:
        subnet = subnet_service(prefix)
        # A sampled host id can collide with the subnet service's own
        # identity (the triple is the identity) — skip the clash.
        if subnet.service_id not in registry:
            registry.register_service(subnet)

    script = churn_schedule(seed + 2, service_ids, churn_ops)
    probe_rng = Random(seed + 3)
    controller = tb.controller
    state = {"applied": 0, "misdispatched": 0, "probes": 0}

    def _probe() -> None:
        """Memoized decision vs. live registry over a sample of identities
        (deregistered ones are the negative probes)."""
        for _ in range(probes_per_batch):
            sid = service_ids[probe_rng.randrange(len(service_ids))]
            got = controller.service_decision(sid.addr, sid.port, sid.protocol)
            want = registry.lookup_prefix(sid.addr, sid.port, sid.protocol)
            state["probes"] += 1
            if got is not want:
                state["misdispatched"] += 1

    def _churn_tick() -> None:
        for _ in range(batch):
            if state["applied"] >= len(script):
                break
            op, sid = script[state["applied"]]
            apply_churn_op(registry, op, sid)
            state["applied"] += 1
        _probe()
        if state["applied"] < len(script):
            tb.sim.schedule(CHURN_TICK_S, _churn_tick)

    tb.sim.schedule(CHURN_TICK_S, _churn_tick)

    bank = attach_client_bank(tb, target, n_clients=clients, window=window)
    result = run_client_bank(tb, bank)
    # The bank may drain before the schedule does: apply the remainder (the
    # coherence probes still run against the live memo).
    while state["applied"] < len(script):
        op, sid = script[state["applied"]]
        apply_churn_op(registry, op, sid)
        state["applied"] += 1
        if state["applied"] % batch == 0:
            _probe()
    _probe()
    tb.run(until=tb.sim.now + 10.0)  # quiesce: let flows idle out

    report = verify_testbed(tb)
    summary = result.summary()
    unserved = clients - result.ok_count
    return {"services": n_services,
            "churn_ops": state["applied"],
            "clients": clients,
            "ok": result.ok_count,
            "misdispatched": state["misdispatched"] + unserved,
            "verify_violations": len(report.violations),
            "decision_probes": state["probes"],
            "registry_generation": registry.generation,
            "registered_at_quiesce": len(registry),
            "dispatches": tb.controller.stats["service_dispatches"],
            "mean_ms": round(summary.mean * 1000, 3),
            "p95_ms": round(summary.p95 * 1000, 3)}


def c1_registry_churn(
    tiers: Tuple[Tuple[int, int], ...] = ((1_000, 256), (5_000, 512)),
    clients: int = 240,
) -> Table:
    """Registry churn while ClientBank traffic flows (invariant columns
    ``misdispatched`` and ``verify_violations`` must be zero)."""
    table = Table(
        title="C1 — Packet-in decisions under registry churn "
              "(cloud-prefix registrations, live ClientBank traffic)",
        columns=["services", "churn_ops", "clients", "ok", "misdispatched",
                 "verify_violations", "decision_probes",
                 "registry_generation", "registered_at_quiesce",
                 "dispatches", "mean_ms", "p95_ms"],
        note="misdispatched = memoized decision != live registry at probe "
             "time, plus unserved conversations; must be 0",
    )
    cells = [Cell(fn=c1_churn_cell, seed=401,
                  kwargs=dict(n_services=n_services, churn_ops=ops,
                              clients=clients, seed=401))
             for n_services, ops in tiers]
    for row in run_cells(cells):
        table.add(**row)
    return table
