"""``python -m repro.experiments`` — regenerate the paper's artifacts."""

from repro.experiments.runner import main

# The guard matters: with the spawn start method, worker processes re-import
# __main__, and an unguarded call would recursively re-run the whole CLI.
if __name__ == "__main__":
    raise SystemExit(main())
