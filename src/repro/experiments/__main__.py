"""``python -m repro.experiments`` — regenerate the paper's artifacts."""

from repro.experiments.runner import main

raise SystemExit(main())
