"""Canonical testbed builders — the fig. 8 topology in code.

The evaluation topology: 20 Raspberry-Pi clients on 1 Gbps links, one
virtual OVS switch, and the Edge Gateway Server (EGS) hosting the SDN
controller, a Docker "cluster" and a Kubernetes cluster (both over a shared
containerd), plus a high-RTT uplink toward the cloud where the registered
services' origins (and the public registries) live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core import (
    AttachmentPoint,
    BreakerConfig,
    ControllerConfig,
    DeploymentEngine,
    Dispatcher,
    FlowMemory,
    GlobalScheduler,
    ProximityScheduler,
    RetryPolicy,
    ServiceID,
    ServiceRegistry,
    TransparentEdgeController,
    ZoneMap,
)
from repro.core.annotate import AnnotationConfig
from repro.core.registry import EdgeService
from repro.edge import (
    Containerd,
    DockerCluster,
    DockerEngine,
    EdgeCluster,
    KubernetesCluster,
    KubernetesEdgeCluster,
    Registry,
    RegistryHub,
)
from repro.edge.registry import DOCKER_HUB_TIMING, GCR_TIMING, PRIVATE_LAN_TIMING
from repro.edge.services import EDGE_SERVICE_CATALOG, all_catalog_images
from repro.edge.timing import ContainerdTiming, KubernetesTiming
from repro.netsim import Network
from repro.netsim.addresses import IPv4, ip, mac
from repro.netsim.host import Host
from repro.openflow import ControlChannel, OpenFlowSwitch
from repro.ryuapp import AppManager
from repro.simcore import TraceLog
from repro.workloads.clients import TimedHTTPClient

VGW_IP = ip("10.255.255.254")
VGW_MAC = mac("02:ed:9e:00:00:01")

#: service addresses live in TEST-NET-2 (the "perceived cloud")
SERVICE_NET = ip("198.51.100.0")


@dataclass
class Testbed:
    """Everything an experiment needs, assembled."""

    net: Network
    switch: OpenFlowSwitch
    manager: AppManager
    controller: TransparentEdgeController
    registry: ServiceRegistry
    dispatcher: Dispatcher
    engine: DeploymentEngine
    memory: FlowMemory
    zones: ZoneMap
    hub: RegistryHub
    private_registry: Registry
    clusters: Dict[str, EdgeCluster]
    egs: Host
    clients: List[Host]
    timed_clients: List[TimedHTTPClient]
    cloud_hosts: Dict[IPv4, Host]
    _next_service_suffix: int = 0

    @property
    def sim(self):
        return self.net.sim

    def run(self, until: Optional[float] = None) -> float:
        return self.net.run(until)

    # ------------------------------------------------------------- services

    def alloc_service_id(self, port: int = 80) -> ServiceID:
        self._next_service_suffix += 1
        return ServiceID(IPv4(SERVICE_NET.value + self._next_service_suffix), port)

    def register_catalog_service(self, key: str,
                                 service_id: Optional[ServiceID] = None,
                                 max_initial_delay_s: Optional[float] = None,
                                 with_cloud_origin: bool = False) -> EdgeService:
        """Register one of the Table-I services with the platform."""
        entry = EDGE_SERVICE_CATALOG[key]
        behavior = entry.serving_behavior
        if service_id is None:
            service_id = self.alloc_service_id(port=behavior.port)
        import yaml as _yaml

        containers = []
        for image, beh in zip(entry.images, entry.behaviors, strict=True):
            container = {"name": beh.name, "image": str(image.ref)}
            if beh.port is not None:
                container["ports"] = [{"containerPort": beh.port}]
            containers.append(container)
        doc = {
            "apiVersion": "apps/v1",
            "kind": "Deployment",
            "spec": {"template": {"spec": {"containers": containers}}},
        }
        service = self.registry.register(
            service_id, yaml_text=_yaml.safe_dump(doc, sort_keys=False),
            max_initial_delay_s=max_initial_delay_s)
        # Serverless clusters serve the same registered address via a WASM
        # function equivalent (side-by-side operation, paper §VIII).
        for cluster in self.clusters.values():
            if cluster.cluster_type == "serverless":
                from repro.edge.serverless import wasm_function_for_catalog

                cluster.register_function(service.name,
                                          wasm_function_for_catalog(key))
        if with_cloud_origin:
            self.add_cloud_origin(service_id, behavior)
        return service

    def add_cloud_origin(self, service_id: ServiceID, behavior) -> Host:
        """Create the cloud host that actually owns the service address."""
        host = self.cloud_hosts.get(service_id.addr)
        if host is None:
            host = self.net.add_host(f"cloud-{service_id.addr}",
                                     ip_addr=service_id.addr,
                                     gateway=VGW_IP, prefix_len=32)
            port_no = max(self.switch.port_numbers, default=0) + 1
            self.net.connect(host, 0, self.switch, port_no,
                             latency_s=self._cloud_latency_s, bandwidth_bps=1e9)
            self.controller.cfg.static_hosts[service_id.addr] = AttachmentPoint(
                dpid=self.switch.dpid, port_no=port_no, mac=host.mac, ip=host.ip)
            self.controller.hosts[service_id.addr] = (
                self.switch.dpid, port_no, host.mac)
            self.cloud_hosts[service_id.addr] = host
        if not host.listening_on(service_id.port):
            host.listen(service_id.port, behavior.make_listener(self.sim))
        return host

    _cloud_latency_s: float = 0.0125

    # -------------------------------------------------------------- clients

    def client(self, index: int = 0) -> TimedHTTPClient:
        return self.timed_clients[index]

    def move_client(self, index: int, new_zone: str) -> int:
        """Follow-me handover: relocate a client to ``new_zone``."""
        from repro.core.mobility import MobilityManager

        manager = MobilityManager(self.controller)
        return manager.handover(self.clients[index].ip, new_zone)

    def attach_predeployer(self, lead_time_s: float = 1.0,
                           min_gap_s: float = 2.0):
        """Enable proactive deployment on the running controller."""
        from repro.core.predictor import ProactiveDeployer

        deployer = ProactiveDeployer(self.sim, self.dispatcher,
                                     lead_time_s=lead_time_s,
                                     min_gap_s=min_gap_s)
        self.controller.predeployer = deployer
        return deployer


def add_docker_cluster(
    testbed: Testbed,
    name: str,
    zone: str,
    link_latency_s: float = 0.002,
    access_rtt_s: Optional[float] = None,
) -> "DockerCluster":
    """Attach an additional Docker edge cluster (own node) to the testbed.

    Used for multi-edge topologies: scheduler ablations, follow-me
    handovers, and the hierarchical-edge experiments.
    """
    from repro.core.controller import AttachmentPoint

    node = testbed.net.add_host(f"egs-{name}", gateway=VGW_IP, prefix_len=32)
    port_no = max(testbed.switch.port_numbers) + 1
    testbed.net.connect(node, 0, testbed.switch, port_no,
                        latency_s=link_latency_s, bandwidth_bps=10e9)
    runtime = Containerd(testbed.sim, node, testbed.hub)
    cluster = DockerCluster(testbed.sim, name, DockerEngine(testbed.sim, runtime),
                            zone=zone)
    if access_rtt_s is not None:
        testbed.zones.set_rtt("access", zone, access_rtt_s)
    testbed.clusters[cluster.name] = cluster
    testbed.dispatcher.clusters.append(cluster)
    testbed.controller.cluster_attachments[cluster.name] = AttachmentPoint(
        dpid=testbed.switch.dpid, port_no=port_no, mac=node.mac, ip=node.ip)
    return cluster


def build_testbed(
    seed: int = 0,
    n_clients: int = 20,
    cluster_types: Tuple[str, ...] = ("docker", "kubernetes"),
    shared_egs: bool = True,
    client_latency_s: float = 0.00015,
    cloud_rtt_s: float = 0.025,
    control_latency_s: float = 0.0002,
    controller_service_time_s: float = 0.0002,
    switch_idle_timeout_s: float = 10.0,
    memory_idle_timeout_s: float = 60.0,
    auto_scale_down: bool = False,
    auto_remove_after_s = None,
    use_flow_memory: bool = True,
    scheduler: Optional[GlobalScheduler] = None,
    scheduler_name: Optional[str] = None,
    containerd_timing: Optional[ContainerdTiming] = None,
    k8s_timing: Optional[KubernetesTiming] = None,
    use_private_registry: bool = False,
    trace: Optional[TraceLog] = None,
    retry_policy: Optional[RetryPolicy] = None,
    breaker_config: Optional[BreakerConfig] = None,
    use_breaker: bool = True,
    faults: Optional[Dict[str, Any]] = None,
) -> Testbed:
    """Assemble the canonical testbed (fig. 8).

    ``cluster_types`` selects which edge clusters exist; with ``shared_egs``
    they share one node (and one containerd), like the paper's EGS.

    Resilience knobs: ``retry_policy`` tunes the deployment engine's
    deadlines/backoff, ``breaker_config``/``use_breaker`` the dispatcher's
    per-cluster circuit breakers, and ``faults`` arms the simulation's
    :class:`~repro.simcore.faults.FaultPlane` (e.g.
    ``{"registry.pull": 0.1}``) — left at the defaults, runs are
    bit-identical to a testbed without any of this machinery.
    """
    net = Network(seed=seed, trace=trace)
    sim = net.sim
    if faults:
        sim.faults.configure_many(faults)

    # ---- switch fabric -----------------------------------------------------
    switch = OpenFlowSwitch(sim, "ovs-egs", dpid=1)
    net.add_device(switch)

    # ---- registries ----------------------------------------------------------
    docker_hub = Registry("docker-hub", DOCKER_HUB_TIMING)
    gcr = Registry("gcr.io", GCR_TIMING)
    private = Registry("private-lan", PRIVATE_LAN_TIMING)
    for image in all_catalog_images():
        target = gcr if image.ref.registry == "gcr.io" else docker_hub
        target.push(image)
        private.push(image)
    hub = RegistryHub(docker_hub)
    hub.add("gcr.io", gcr)
    if use_private_registry:
        hub.set_mirror(private)

    # ---- clients ------------------------------------------------------------
    clients: List[Host] = []
    port_no = 0
    for index in range(n_clients):
        port_no += 1
        client = net.add_host(f"rpi-{index:02d}", gateway=VGW_IP, prefix_len=32)
        net.connect(client, 0, switch, port_no,
                    latency_s=client_latency_s, bandwidth_bps=1e9)
        clients.append(client)

    # ---- EGS node(s) + clusters ---------------------------------------------
    zones = ZoneMap(default_rtt_s=0.050)
    for client in clients:
        zones.assign_client(client.ip, "access")
    zones.set_rtt("access", "edge", 0.001)

    clusters: Dict[str, EdgeCluster] = {}
    cluster_attachments: Dict[str, AttachmentPoint] = {}

    def attach_node(host: Host) -> AttachmentPoint:
        nonlocal port_no
        port_no += 1
        net.connect(host, 0, switch, port_no, latency_s=0.0001, bandwidth_bps=10e9)
        return AttachmentPoint(dpid=switch.dpid, port_no=port_no,
                               mac=host.mac, ip=host.ip)

    egs = net.add_host("egs", gateway=VGW_IP, prefix_len=32)
    egs_attachment = attach_node(egs)
    shared_runtime = Containerd(sim, egs, hub, timing=containerd_timing)

    for cluster_type in cluster_types:
        if shared_egs:
            node, attachment, runtime = egs, egs_attachment, shared_runtime
        else:
            node = net.add_host(f"egs-{cluster_type}", gateway=VGW_IP, prefix_len=32)
            attachment = attach_node(node)
            runtime = Containerd(sim, node, hub, timing=containerd_timing)
        if cluster_type == "docker":
            engine = DockerEngine(sim, runtime)
            cluster: EdgeCluster = DockerCluster(sim, "docker-egs", engine, zone="edge")
        elif cluster_type == "kubernetes":
            k8s = KubernetesCluster(sim, timing=k8s_timing)
            k8s.add_node(runtime)
            cluster = KubernetesEdgeCluster(sim, "k8s-egs", k8s, node, runtime, zone="edge")
        elif cluster_type == "serverless":
            from repro.edge.serverless import ServerlessCluster, WasmRuntime

            wasm = WasmRuntime(sim, node, module_registry=private)
            cluster = ServerlessCluster(sim, "wasm-egs", wasm, functions={},
                                        zone="edge")
        else:
            raise ValueError(f"unknown cluster type {cluster_type!r}")
        cluster.probe_rtt_s = 2 * control_latency_s
        clusters[cluster.name] = cluster
        cluster_attachments[cluster.name] = attachment

    # ---- control plane --------------------------------------------------------
    registry = ServiceRegistry(AnnotationConfig(scheduler_name=scheduler_name))
    engine = DeploymentEngine(sim, policy=retry_policy)
    memory = FlowMemory(sim, idle_timeout_s=memory_idle_timeout_s)
    if scheduler is None:
        scheduler = ProximityScheduler(zones)
    dispatcher = Dispatcher(sim, list(clusters.values()), scheduler, engine,
                            memory, zones=zones,
                            breaker_config=breaker_config,
                            use_breaker=use_breaker)
    manager = AppManager(sim, service_time_s=controller_service_time_s)
    controller_config = ControllerConfig(
        vgw_ip=VGW_IP, vgw_mac=VGW_MAC,
        switch_idle_timeout_s=switch_idle_timeout_s,
        auto_scale_down=auto_scale_down,
        auto_remove_after_s=auto_remove_after_s,
        use_flow_memory=use_flow_memory,
    )
    controller = manager.register(
        TransparentEdgeController,
        registry=registry, dispatcher=dispatcher, memory=memory,
        config=controller_config, cluster_attachments=cluster_attachments)
    channel = ControlChannel(sim, latency_s=control_latency_s)
    manager.connect_switch(switch, channel)

    testbed = Testbed(
        net=net, switch=switch, manager=manager, controller=controller,
        registry=registry, dispatcher=dispatcher, engine=engine, memory=memory,
        zones=zones, hub=hub, private_registry=private, clusters=clusters,
        egs=egs, clients=clients,
        timed_clients=[TimedHTTPClient(c) for c in clients],
        cloud_hosts={},
    )
    testbed._cloud_latency_s = cloud_rtt_s / 2.0
    # Let the switch connect (state-change event) before experiments start.
    net.run(until=0.01)
    return testbed
