"""Robustness under injected failures (R1/R2).

The paper's prototype was only ever evaluated on a healthy testbed; these
drivers measure what the *platform promise* — the client never notices the
edge — costs to keep when the edge misbehaves (docs/faults.md):

* **R1** — availability and time_total percentiles as the injected image
  pull failure rate sweeps 0–20%. Every request is forced cold (images
  deleted between rounds) so each one exercises the full Pull/Create/
  Scale-Up pipeline against the armed fault plane. A request counts as
  *answered* when the client gets an HTTP 200 — whether from the edge after
  retries or from the cloud origin after the deployment engine gave up.
* **R2** — the circuit-breaker ablation: one edge cluster suffers a timed
  outage while clients keep requesting. Without the breaker every request
  during the outage pays the full retry-with-backoff latency before
  degrading to the cloud; with it, the cluster is excluded after
  ``failure_threshold`` consecutive failures and requests go straight to
  the cloud path until a probation probe succeeds. The tail (p99) shows
  the difference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.resilience import BreakerConfig, RetryPolicy
from repro.experiments.pool import Cell, run_cells
from repro.experiments.topologies import Testbed, build_testbed
from repro.metrics import Table
from repro.metrics.failures import snapshot_failures
from repro.openflow import Match
from repro.simcore.faults import FaultSchedule, cluster_outage


def _run_until_done(tb: Testbed, process, cap_s: float, step_s: float = 1.0) -> bool:
    """Advance the simulation until ``process`` completes (True) or ``cap_s``
    simulated seconds passed without completion (False — a hung client)."""
    deadline = tb.sim.now + cap_s
    while not process.done and tb.sim.now < deadline:
        tb.run(until=min(deadline, tb.sim.now + step_s))
    return process.done


def _percentiles(samples: List[float]) -> Tuple[float, float]:
    if not samples:
        return 0.0, 0.0
    arr = np.asarray(samples, dtype=float)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


# --------------------------------------------------------------------------
# R1 — availability vs. injected pull-failure rate
# --------------------------------------------------------------------------


def r1_availability_vs_pull_failures(
        rates: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
        rounds: int = 40,
        seed: int = 7,
        retry_policy: Optional[RetryPolicy] = None) -> Table:
    """Cold-start a service ``rounds`` times per pull-failure rate; count
    how many requests are still answered (edge after retries, or cloud)."""
    table = Table(
        title="R1 — Availability vs. injected pull-failure rate (cold starts)",
        columns=["pull_fail_rate", "requests", "answered", "hung",
                 "availability", "p50_s", "p99_s",
                 "retries", "gave_up", "cloud_fallbacks"],
        note="answered = HTTP 200 from edge (incl. after retries) or cloud; "
             "every round deletes images so each request pulls again",
    )
    cells = [Cell(fn=r1_rate_cell, seed=seed,
                  kwargs=dict(rate=rate, rounds=rounds, seed=seed,
                              retry_policy=retry_policy))
             for rate in rates]
    for row in run_cells(cells):
        table.add(**row)
    return table


def r1_rate_cell(rate: float, rounds: int, seed: int = 7,
                 retry_policy: Optional[RetryPolicy] = None) -> dict:
    """One pull-failure rate of the R1 sweep, cold-started ``rounds`` times."""
    tb = build_testbed(
        seed=seed, n_clients=4, cluster_types=("docker",),
        use_private_registry=True,
        retry_policy=retry_policy,
        faults={"registry.pull": rate} if rate else None)
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    cluster = tb.clusters["docker-egs"]

    samples: List[float] = []
    answered = 0
    hung = 0
    for index in range(rounds):
        request = tb.client(index % len(tb.timed_clients)).fetch(
            svc.service_id.addr, svc.service_id.port)
        if not _run_until_done(tb, request, cap_s=90.0):
            hung += 1
            continue
        timing = request.result
        if timing.ok:
            answered += 1
            samples.append(timing.time_total)
        # Reset to a fully cold platform: forget decisions, drop every
        # IPv4 flow (service + route), remove instance AND images.
        tb.memory.clear()
        tb.switch.table.delete(Match(eth_type=0x0800))
        if cluster.is_created(svc.spec) or cluster.is_ready(svc.spec):
            remove = tb.engine.remove(cluster, svc, delete_images=True)
            _run_until_done(tb, remove, cap_s=30.0)
        else:
            cluster.delete_images(svc.spec)
        tb.run(until=tb.sim.now + 1.0)

    counters = snapshot_failures(controller=tb.controller)
    p50, p99 = _percentiles(samples)
    return {"pull_fail_rate": f"{rate:.2f}", "requests": rounds,
            "answered": answered, "hung": hung,
            "availability": answered / rounds,
            "p50_s": p50, "p99_s": p99,
            "retries": counters.retries,
            "gave_up": counters.deploy_exhausted,
            "cloud_fallbacks": counters.cloud_fallbacks}


# --------------------------------------------------------------------------
# R2 — circuit breaker on/off under a cluster outage
# --------------------------------------------------------------------------


def r2_breaker_outage_ablation(
        requests: int = 400,
        gap_s: float = 0.5,
        outage_at: float = 60.0,
        outage_s: float = 120.0,
        seed: int = 31) -> Table:
    """Same outage, with and without the per-cluster circuit breaker.

    The service is deployed warm; every request still traverses the
    controller (``use_flow_memory=False`` + short switch timeouts), so each
    one makes a live scheduling decision against the broken cluster."""
    table = Table(
        title="R2 — Circuit breaker under a cluster outage "
              f"({outage_s:.0f}s outage, {requests} requests)",
        columns=["breaker", "answered", "hung", "p50_s", "p99_s",
                 "breaker_opens", "retries", "gave_up", "cloud_fallbacks"],
        note="without the breaker every outage request pays retry+backoff "
             "before degrading to the cloud; with it only the tripping "
             "failures and probation probes do",
    )
    cells = [Cell(fn=r2_breaker_cell, seed=seed,
                  kwargs=dict(use_breaker=use_breaker, requests=requests,
                              gap_s=gap_s, outage_at=outage_at,
                              outage_s=outage_s, seed=seed))
             for use_breaker in (True, False)]
    for row in run_cells(cells):
        table.add(**row)
    return table


def r2_breaker_cell(use_breaker: bool, requests: int, gap_s: float,
                    outage_at: float, outage_s: float, seed: int = 31) -> dict:
    """One breaker arm of R2: warm service, timed outage, steady requests."""
    tb = build_testbed(
        seed=seed, n_clients=4, cluster_types=("docker",),
        use_flow_memory=False,
        switch_idle_timeout_s=0.3,
        use_breaker=use_breaker,
        breaker_config=BreakerConfig(failure_threshold=2,
                                     open_for_s=outage_s))
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    cluster = tb.clusters["docker-egs"]
    # Cloud-routed requests install plain route flows; keep their idle
    # timeout below the request gap so every request table-misses and
    # makes a fresh scheduling decision (the quantity under test).
    tb.controller.cfg.route_idle_timeout_s = 0.3
    warm = tb.engine.ensure_available(cluster, svc)
    _run_until_done(tb, warm, cap_s=120.0)
    assert warm.done and warm.exception is None

    FaultSchedule([cluster_outage(cluster, at=tb.sim.now + outage_at,
                                  duration_s=outage_s)]).install(tb.sim)

    samples: List[float] = []
    answered = 0
    hung = 0
    start = tb.sim.now
    for index in range(requests):
        next_at = start + index * gap_s
        if tb.sim.now < next_at:
            tb.run(until=next_at)
        request = tb.client(index % len(tb.timed_clients)).fetch(
            svc.service_id.addr, svc.service_id.port)
        if not _run_until_done(tb, request, cap_s=90.0, step_s=gap_s):
            hung += 1
            continue
        timing = request.result
        if timing.ok:
            answered += 1
            samples.append(timing.time_total)

    counters = snapshot_failures(controller=tb.controller)
    p50, p99 = _percentiles(samples)
    return {"breaker": "on" if use_breaker else "off",
            "answered": answered, "hung": hung, "p50_s": p50, "p99_s": p99,
            "breaker_opens": counters.breaker_opens,
            "retries": counters.retries,
            "gave_up": counters.deploy_exhausted,
            "cloud_fallbacks": counters.cloud_fallbacks}
