"""Robustness under injected failures (R1–R4).

The paper's prototype was only ever evaluated on a healthy testbed; these
drivers measure what the *platform promise* — the client never notices the
edge — costs to keep when the edge misbehaves (docs/faults.md):

* **R1** — availability and time_total percentiles as the injected image
  pull failure rate sweeps 0–20%. Every request is forced cold (images
  deleted between rounds) so each one exercises the full Pull/Create/
  Scale-Up pipeline against the armed fault plane. A request counts as
  *answered* when the client gets an HTTP 200 — whether from the edge after
  retries or from the cloud origin after the deployment engine gave up.
* **R2** — the circuit-breaker ablation: one edge cluster suffers a timed
  outage while clients keep requesting. Without the breaker every request
  during the outage pays the full retry-with-backoff latency before
  degrading to the cloud; with it, the cluster is excluded after
  ``failure_threshold`` consecutive failures and requests go straight to
  the cloud path until a probation probe succeeds. The tail (p99) shows
  the difference.
* **R3** — controller crash/warm-restart chaos: seeded crashes land while a
  :class:`~repro.workloads.scale.ClientBank` drives traffic. A restarted
  controller remembers nothing; it must reconcile from switch flow state
  (docs/faults.md). Measured: liveness detection, resync duration,
  flows reconciled vs. GC'd, packet-ins lost, and two invariants that must
  read 0 — clients permanently blackholed and flows serving a dead instance
  after the last resync.
* **R4** — mixed chaos sweep: per seed, a :class:`FaultSchedule` of
  controller crashes, control-channel outages, and client-link flaps plays
  over bank traffic. Same invariants as R3; byte-identical per seed (the
  chaos layer draws only from the seeded driver RNG).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.resilience import BreakerConfig, RetryPolicy
from repro.experiments.pool import Cell, run_cells
from repro.experiments.topologies import Testbed, build_testbed
from repro.metrics import Table
from repro.metrics.failures import snapshot_failures
from repro.openflow import Match
from repro.simcore.faults import (
    FaultSchedule,
    channel_outage,
    cluster_outage,
    controller_outage,
    link_flap,
)
from repro.workloads.scale import attach_client_bank, run_client_bank


def _run_until_done(tb: Testbed, process, cap_s: float, step_s: float = 1.0) -> bool:
    """Advance the simulation until ``process`` completes (True) or ``cap_s``
    simulated seconds passed without completion (False — a hung client)."""
    deadline = tb.sim.now + cap_s
    while not process.done and tb.sim.now < deadline:
        tb.run(until=min(deadline, tb.sim.now + step_s))
    return process.done


def _percentiles(samples: List[float]) -> Tuple[float, float]:
    if not samples:
        return 0.0, 0.0
    arr = np.asarray(samples, dtype=float)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


# --------------------------------------------------------------------------
# R1 — availability vs. injected pull-failure rate
# --------------------------------------------------------------------------


def r1_availability_vs_pull_failures(
        rates: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
        rounds: int = 40,
        seed: int = 7,
        retry_policy: Optional[RetryPolicy] = None) -> Table:
    """Cold-start a service ``rounds`` times per pull-failure rate; count
    how many requests are still answered (edge after retries, or cloud)."""
    table = Table(
        title="R1 — Availability vs. injected pull-failure rate (cold starts)",
        columns=["pull_fail_rate", "requests", "answered", "hung",
                 "availability", "p50_s", "p99_s",
                 "retries", "gave_up", "cloud_fallbacks"],
        note="answered = HTTP 200 from edge (incl. after retries) or cloud; "
             "every round deletes images so each request pulls again",
    )
    cells = [Cell(fn=r1_rate_cell, seed=seed,
                  kwargs=dict(rate=rate, rounds=rounds, seed=seed,
                              retry_policy=retry_policy))
             for rate in rates]
    for row in run_cells(cells):
        table.add(**row)
    return table


def r1_rate_cell(rate: float, rounds: int, seed: int = 7,
                 retry_policy: Optional[RetryPolicy] = None) -> dict:
    """One pull-failure rate of the R1 sweep, cold-started ``rounds`` times."""
    tb = build_testbed(
        seed=seed, n_clients=4, cluster_types=("docker",),
        use_private_registry=True,
        retry_policy=retry_policy,
        faults={"registry.pull": rate} if rate else None)
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    cluster = tb.clusters["docker-egs"]

    samples: List[float] = []
    answered = 0
    hung = 0
    for index in range(rounds):
        request = tb.client(index % len(tb.timed_clients)).fetch(
            svc.service_id.addr, svc.service_id.port)
        if not _run_until_done(tb, request, cap_s=90.0):
            hung += 1
            continue
        timing = request.result
        if timing.ok:
            answered += 1
            samples.append(timing.time_total)
        # Reset to a fully cold platform: forget decisions, drop every
        # IPv4 flow (service + route), remove instance AND images.
        tb.memory.clear()
        tb.switch.table.delete(Match(eth_type=0x0800))
        if cluster.is_created(svc.spec) or cluster.is_ready(svc.spec):
            remove = tb.engine.remove(cluster, svc, delete_images=True)
            _run_until_done(tb, remove, cap_s=30.0)
        else:
            cluster.delete_images(svc.spec)
        tb.run(until=tb.sim.now + 1.0)

    counters = snapshot_failures(controller=tb.controller)
    p50, p99 = _percentiles(samples)
    return {"pull_fail_rate": f"{rate:.2f}", "requests": rounds,
            "answered": answered, "hung": hung,
            "availability": answered / rounds,
            "p50_s": p50, "p99_s": p99,
            "retries": counters.retries,
            "gave_up": counters.deploy_exhausted,
            "cloud_fallbacks": counters.cloud_fallbacks}


# --------------------------------------------------------------------------
# R2 — circuit breaker on/off under a cluster outage
# --------------------------------------------------------------------------


def r2_breaker_outage_ablation(
        requests: int = 400,
        gap_s: float = 0.5,
        outage_at: float = 60.0,
        outage_s: float = 120.0,
        seed: int = 31) -> Table:
    """Same outage, with and without the per-cluster circuit breaker.

    The service is deployed warm; every request still traverses the
    controller (``use_flow_memory=False`` + short switch timeouts), so each
    one makes a live scheduling decision against the broken cluster."""
    table = Table(
        title="R2 — Circuit breaker under a cluster outage "
              f"({outage_s:.0f}s outage, {requests} requests)",
        columns=["breaker", "answered", "hung", "p50_s", "p99_s",
                 "breaker_opens", "retries", "gave_up", "cloud_fallbacks"],
        note="without the breaker every outage request pays retry+backoff "
             "before degrading to the cloud; with it only the tripping "
             "failures and probation probes do",
    )
    cells = [Cell(fn=r2_breaker_cell, seed=seed,
                  kwargs=dict(use_breaker=use_breaker, requests=requests,
                              gap_s=gap_s, outage_at=outage_at,
                              outage_s=outage_s, seed=seed))
             for use_breaker in (True, False)]
    for row in run_cells(cells):
        table.add(**row)
    return table


def r2_breaker_cell(use_breaker: bool, requests: int, gap_s: float,
                    outage_at: float, outage_s: float, seed: int = 31) -> dict:
    """One breaker arm of R2: warm service, timed outage, steady requests."""
    tb = build_testbed(
        seed=seed, n_clients=4, cluster_types=("docker",),
        use_flow_memory=False,
        switch_idle_timeout_s=0.3,
        use_breaker=use_breaker,
        breaker_config=BreakerConfig(failure_threshold=2,
                                     open_for_s=outage_s))
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    cluster = tb.clusters["docker-egs"]
    # Cloud-routed requests install plain route flows; keep their idle
    # timeout below the request gap so every request table-misses and
    # makes a fresh scheduling decision (the quantity under test).
    tb.controller.cfg.route_idle_timeout_s = 0.3
    warm = tb.engine.ensure_available(cluster, svc)
    _run_until_done(tb, warm, cap_s=120.0)
    assert warm.done and warm.exception is None

    FaultSchedule([cluster_outage(cluster, at=tb.sim.now + outage_at,
                                  duration_s=outage_s)]).install(tb.sim)

    samples: List[float] = []
    answered = 0
    hung = 0
    start = tb.sim.now
    for index in range(requests):
        next_at = start + index * gap_s
        if tb.sim.now < next_at:
            tb.run(until=next_at)
        request = tb.client(index % len(tb.timed_clients)).fetch(
            svc.service_id.addr, svc.service_id.port)
        if not _run_until_done(tb, request, cap_s=90.0, step_s=gap_s):
            hung += 1
            continue
        timing = request.result
        if timing.ok:
            answered += 1
            samples.append(timing.time_total)

    counters = snapshot_failures(controller=tb.controller)
    p50, p99 = _percentiles(samples)
    return {"breaker": "on" if use_breaker else "off",
            "answered": answered, "hung": hung, "p50_s": p50, "p99_s": p99,
            "breaker_opens": counters.breaker_opens,
            "retries": counters.retries,
            "gave_up": counters.deploy_exhausted,
            "cloud_fallbacks": counters.cloud_fallbacks}


# --------------------------------------------------------------------------
# R3 — controller crash / warm-restart chaos
# --------------------------------------------------------------------------


def _chaos_testbed(seed: int, heartbeat_s: float = 0.5):
    """A warm single-switch testbed with liveness armed on both sides."""
    tb = build_testbed(seed=seed, n_clients=2, cluster_types=("docker",),
                       use_flow_memory=True, switch_idle_timeout_s=10.0)
    svc = tb.register_catalog_service("nginx", with_cloud_origin=True)
    warm = tb.engine.ensure_available(tb.clusters["docker-egs"], svc)
    _run_until_done(tb, warm, cap_s=120.0)
    assert warm.done and warm.exception is None
    tb.manager.enable_heartbeat(interval_s=heartbeat_s, miss_limit=3)
    tb.switch.enable_liveness(interval_s=heartbeat_s, miss_limit=3)
    return tb, svc


def _chaos_row(tb, bank, crashes_scheduled: int) -> dict:
    """The shared measurement/invariant tail of an R3/R4 cell."""
    # Full data-plane verification at the quiesce point (V1–V5, strict
    # cookie accounting): a chaos cell must settle into a state the static
    # verifier certifies, not merely one whose counters look right. Local
    # import — repro.verify's scenario helpers import this module.
    from repro.verify import verify_testbed
    report = verify_testbed(tb)
    assert report.ok, \
        f"data-plane invariant violations at quiesce:\n{report.to_text()}"
    recovery = tb.manager.recovery.summary()
    stats = tb.controller.stats
    counters = snapshot_failures(controller=tb.controller)
    result = bank.result
    return {
        "clients": bank.n_clients,
        "served_ok": result.ok_count,
        "aborted": bank.aborted,
        # Invariant: every conversation terminated (served or watchdogged);
        # a nonzero count means a client was permanently blackholed.
        "blackholed": bank.n_clients - result.completed_count,
        "crashes": tb.manager.crashes,
        "crashes_scheduled": crashes_scheduled,
        "detect_switch": tb.switch.stats()["controller_outages_detected"],
        "detections": int(recovery["detections"]),
        "resyncs": int(recovery["resyncs"]),
        "resync_mean_s": recovery["resync_mean_s"],
        "flows_reconciled": stats["flows_reconciled"],
        "flows_gcd": stats["flows_gcd"],
        "packet_ins_lost": (tb.manager.events_lost
                            + stats["packet_ins_dropped_resync"]
                            + stats["pending_lost_on_crash"]),
        "ctrl_drops_up": counters.control_msgs_dropped_up,
        "ctrl_drops_down": counters.control_msgs_dropped_down,
        # Invariant: no installed flow redirects to a dead instance.
        "stale_flows": tb.controller.audit_stale_service_flows(),
    }


def r3_controller_crash_chaos(
        crash_counts: Tuple[int, ...] = (0, 1, 2),
        n_clients: int = 240,
        window: int = 16,
        seed: int = 101) -> Table:
    """Warm-restart chaos: ``crashes`` controller crashes land while the
    client bank runs; each crash wipes the controller's volatile state and
    the restart must reconcile it back from the switches."""
    table = Table(
        title="R3 — Controller crash/warm-restart chaos "
              f"({n_clients} clients, window {window})",
        columns=["crashes", "clients", "served_ok", "aborted", "blackholed",
                 "detect_switch", "resyncs", "resync_mean_s",
                 "flows_reconciled", "flows_gcd", "packet_ins_lost",
                 "stale_flows"],
        note="blackholed and stale_flows are invariants (must be 0): every "
             "client terminates and no flow serves a dead instance after "
             "the post-restart resync",
    )
    cells = [Cell(fn=r3_crash_cell, seed=seed,
                  kwargs=dict(crashes=crashes, n_clients=n_clients,
                              window=window, seed=seed))
             for crashes in crash_counts]
    for row in run_cells(cells):
        row.pop("crashes_scheduled", None)
        row.pop("ctrl_drops_up", None)
        row.pop("ctrl_drops_down", None)
        row.pop("detections", None)
        table.add(**row)
    return table


def r3_crash_cell(crashes: int, n_clients: int, window: int,
                  seed: int = 101) -> dict:
    """One arm of R3: ``crashes`` crashes triggered at seeded progress
    thresholds of the bank (guaranteed to land mid-traffic), each with a
    seeded downtime before the warm restart."""
    tb, svc = _chaos_testbed(seed)
    bank = attach_client_bank(tb, svc, n_clients=n_clients, window=window)

    rng = np.random.default_rng([seed, crashes])
    thresholds = sorted(int(f * n_clients)
                        for f in rng.uniform(0.10, 0.75, size=crashes))
    downtimes = list(rng.uniform(1.0, 4.0, size=crashes))

    bank.start(spacing_s=0.0005)
    fired = 0
    chunks = 0
    while not bank.done:
        # Fine-grained chunks: the crash must land MID-traffic, between two
        # launches, not after the bank drained (healthy conversations are
        # a few ms end-to-end).
        tb.run(until=tb.sim.now + 0.002)
        chunks += 1
        assert chunks < 200_000, "R3 bank stalled (blackholed clients?)"
        if (fired < crashes and bank.launched >= thresholds[fired]
                and tb.manager.alive):
            tb.manager.crash()
            tb.sim.schedule(downtimes[fired], tb.manager.restart)
            fired += 1
    # Let the last resync (and any straggling watchdogs) settle.
    tb.run(until=tb.sim.now + 5.0)
    return _chaos_row(tb, bank, crashes)


# --------------------------------------------------------------------------
# R4 — mixed chaos sweep (crashes + channel outages + link flaps)
# --------------------------------------------------------------------------


def r4_mixed_chaos_sweep(
        seeds: Tuple[int, ...] = (211, 223, 227),
        n_clients: int = 240,
        window: int = 16) -> Table:
    """Per seed: a declarative :class:`FaultSchedule` of one controller
    crash, two control-channel outages, and two client-link flaps plays
    over bank traffic. All times/durations come from the seeded driver
    RNG, so a seed fully determines the run (byte-identical traces)."""
    table = Table(
        title=f"R4 — Mixed chaos sweep ({n_clients} clients, "
              "crash + channel outages + link flaps)",
        columns=["seed", "served_ok", "aborted", "blackholed", "crashes",
                 "detections", "resyncs", "flows_reconciled", "flows_gcd",
                 "packet_ins_lost", "ctrl_drops_up", "ctrl_drops_down",
                 "stale_flows"],
        note="same invariants as R3; detections = controller-side heartbeat "
             "declarations of an unreachable switch",
    )
    cells = [Cell(fn=r4_chaos_cell, seed=seed,
                  kwargs=dict(seed=seed, n_clients=n_clients, window=window))
             for seed in seeds]
    for row in run_cells(cells):
        row["seed"] = row.pop("cell_seed")
        row.pop("clients", None)
        row.pop("crashes_scheduled", None)
        row.pop("detect_switch", None)
        row.pop("resync_mean_s", None)
        table.add(**row)
    return table


def r4_chaos_cell(seed: int, n_clients: int, window: int) -> dict:
    """One seed of R4: the full mixed fault schedule over bank traffic."""
    tb, svc = _chaos_testbed(seed)
    # Throttled shared link: the closed-loop bank drains a 1 Gbps link in
    # tens of milliseconds, faster than any fault window can land — at a
    # few hundred kbit/s the traffic span stretches over several seconds
    # so every window overlaps live conversations.
    bank = attach_client_bank(tb, svc, n_clients=n_clients, window=window,
                              bandwidth_bps=4e5)
    bank_link = tb.net.links[-1]  # the link attach_client_bank just wired
    channel = tb.manager.datapaths[tb.switch.dpid].channel

    rng = np.random.default_rng([seed, 4])
    start = tb.sim.now
    # Windows may overlap each other and the crash — exactly the
    # composition the refcounted FaultSchedule must get right.
    schedule = FaultSchedule()
    schedule.add(controller_outage(
        tb.manager, at=start + float(rng.uniform(0.2, 0.8)),
        duration_s=float(rng.uniform(1.0, 2.5))))
    # Long enough that the 3-miss heartbeat can declare the switch dead
    # (-> DEAD state change, revival resync when it comes back).
    for at in rng.uniform(0.3, 3.5, size=2):
        schedule.add(channel_outage(channel, at=start + float(at),
                                    duration_s=float(rng.uniform(0.8, 3.5))))
    for at in rng.uniform(0.3, 3.5, size=2):
        schedule.add(link_flap(bank_link, at=start + float(at),
                               duration_s=float(rng.uniform(0.1, 0.4))))
    schedule.install(tb.sim)

    run_client_bank(tb, bank, spacing_s=0.0005, chunk_s=0.5)
    # Heartbeat/liveness recovery slack past the last window.
    tb.run(until=tb.sim.now + 5.0)

    row = _chaos_row(tb, bank, crashes_scheduled=1)
    return {"cell_seed": seed, **row}
