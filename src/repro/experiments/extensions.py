"""Extension experiments: the paper's future work, measured.

* **E1 serverless side-by-side** (§VIII future work): the four Table-I
  services as WASM functions vs. Docker/Kubernetes containers — cold-start
  and first-request latency through the same transparent-access data path;
* **E2 follow-me handover**: a client moves to a different access zone; the
  handover invalidates its flows and the next request lands on the now-
  nearest edge;
* **E3 proactive deployment** (§I / Discussion): EWMA arrival prediction
  pre-deploys just in time, converting cold waits into warm hits under a
  periodic workload with aggressive auto scale-down.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.pool import Cell, run_cells
from repro.experiments.topologies import Testbed, build_testbed
from repro.metrics import Table, summarize

EXT_SERVICES = ("asm", "nginx", "resnet", "nginx+py")


def _request(tb: Testbed, svc, client_index: int = 0, window_s: float = 30.0):
    """Issue one timed request and advance the simulation by a bounded
    window (so idle timers don't all expire)."""
    request = tb.client(client_index).fetch(svc.service_id.addr,
                                            svc.service_id.port)
    tb.run(until=tb.sim.now + window_s)
    assert request.done, "request did not finish in window"
    timing = request.result
    assert timing.ok, f"request failed: {timing.error}"
    return timing


# --------------------------------------------------------------------------
# E1 — serverless vs. containers
# --------------------------------------------------------------------------


def e1_cold_request_cell(service_key: str, cluster_type: str,
                         cluster_name: str, seed: int = 61) -> float:
    """Cold first-request latency for one service on one backend (artifact
    cached and created, nothing running)."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=(cluster_type,))
    svc = tb.register_catalog_service(service_key)
    cluster = tb.clusters[cluster_name]

    def prepare():
        yield cluster.pull(svc.spec)
        yield cluster.create(svc.spec)

    tb.sim.spawn(prepare())
    tb.run(until=tb.sim.now + 120.0)
    assert cluster.has_images(svc.spec) and cluster.is_created(svc.spec)
    from repro.edge.services import EDGE_SERVICE_CATALOG

    behavior = EDGE_SERVICE_CATALOG[service_key].serving_behavior
    request = tb.client(0).fetch_service(svc.service_id.addr,
                                         svc.service_id.port, behavior)
    tb.run(until=tb.sim.now + 60.0)
    assert request.done and request.result.ok
    return request.result.time_total


E1_BACKENDS = (("serverless", "wasm-egs", "wasm_s"),
               ("docker", "docker-egs", "docker_s"),
               ("kubernetes", "k8s-egs", "k8s_s"))


def e1_serverless_vs_containers() -> Table:
    """First-request latency (module/image cached, nothing running) for the
    WASM runtime vs. Docker vs. Kubernetes — fig. 11's experiment with the
    serverless backend added."""
    table = Table(
        title="E1 — Cold first request: WASM function vs. Docker vs. Kubernetes",
        columns=["service", "wasm_s", "docker_s", "k8s_s", "wasm_speedup_vs_docker"],
        note="artifacts cached; created; nothing running (scale-up only)",
    )
    cells = [Cell(fn=e1_cold_request_cell, seed=61,
                  kwargs=dict(service_key=key, cluster_type=cluster_type,
                              cluster_name=cluster_name, seed=61))
             for key in EXT_SERVICES
             for cluster_type, cluster_name, _ in E1_BACKENDS]
    times = run_cells(cells)
    per_backend = len(E1_BACKENDS)
    for index, key in enumerate(EXT_SERVICES):
        row: Dict[str, float] = {}
        for offset, (_, _, column) in enumerate(E1_BACKENDS):
            row[column] = times[index * per_backend + offset]
        table.add(service=key, wasm_s=row["wasm_s"], docker_s=row["docker_s"],
                  k8s_s=row["k8s_s"],
                  wasm_speedup_vs_docker=f"{row['docker_s'] / row['wasm_s']:.0f}x")
    return table


def e1_artifact_sizes() -> Table:
    """Artifact size comparison: container image vs. WASM module."""
    from repro.edge.serverless import wasm_function_for_catalog
    from repro.edge.services import EDGE_SERVICE_CATALOG

    table = Table(
        title="E1b — Artifact sizes: container image(s) vs. WASM module",
        columns=["service", "image_bytes", "module_bytes", "ratio"],
        time_columns=set(),
    )
    for key in EXT_SERVICES:
        entry = EDGE_SERVICE_CATALOG[key]
        function = wasm_function_for_catalog(key)
        ratio = entry.total_size_bytes / function.module_size_bytes
        table.add(service=key,
                  image_bytes=entry.total_size_bytes,
                  module_bytes=function.module_size_bytes,
                  ratio=f"{ratio:.2f}x" if ratio < 1 else f"{ratio:.0f}x")
    return table


# --------------------------------------------------------------------------
# E2 — follow-me handover
# --------------------------------------------------------------------------


def e2_follow_me_handover() -> Table:
    """A UE moves from zone A (near edge A) to zone B (near edge B).

    Without a handover the old flows keep sending it across the topology to
    edge A; with the handover the next request re-dispatches to edge B.
    """
    table = Table(
        title="E2 — Follow-me handover after a client moves zones",
        columns=["phase", "request_s", "served_by"],
        time_columns={"request_s"},
    )
    tb = build_testbed(seed=67, n_clients=1, cluster_types=("docker",),
                       memory_idle_timeout_s=3600.0,
                       switch_idle_timeout_s=3600.0)
    # second edge cluster in zone B, reachable over a farther link
    from repro.core.controller import AttachmentPoint
    from repro.edge import Containerd, DockerCluster, DockerEngine

    node_b = tb.net.add_host("egs-b", gateway=None, prefix_len=32)
    port_no = max(tb.switch.port_numbers) + 1
    tb.net.connect(node_b, 0, tb.switch, port_no, latency_s=0.004)
    runtime_b = Containerd(tb.sim, node_b, tb.hub)
    edge_b = DockerCluster(tb.sim, "docker-b", DockerEngine(tb.sim, runtime_b),
                           zone="zone-b")
    tb.clusters[edge_b.name] = edge_b
    tb.dispatcher.clusters.append(edge_b)
    tb.controller.cluster_attachments[edge_b.name] = AttachmentPoint(
        dpid=tb.switch.dpid, port_no=port_no, mac=node_b.mac, ip=node_b.ip)
    # zone A = "access" (near docker-egs/"edge"); zone B near docker-b
    tb.zones.set_rtt("access", "zone-b", 0.008)
    tb.zones.set_rtt("zone-b-access", "zone-b", 0.001)
    tb.zones.set_rtt("zone-b-access", "edge", 0.008)

    svc = tb.register_catalog_service("nginx")
    for cluster in tb.clusters.values():
        cluster.pull(svc.spec)
    tb.run(until=tb.sim.now + 60.0)

    def measure(phase):
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 30.0)
        assert request.done and request.result.ok
        remembered = tb.memory.peek(tb.clients[0].ip, svc.service_id)
        table.add(phase=phase, request_s=request.result.time_total,
                  served_by=remembered.cluster.name if remembered else "(flows)")
        return request.result

    measure("at zone A (cold)")
    measure("at zone A (warm)")
    # the client moves; WITHOUT handover its stale flows still hit edge A
    tb.zones.assign_client(tb.clients[0].ip, "zone-b-access")
    measure("moved to B, no handover")
    # follow-me handover invalidates the stale state
    tb.move_client(0, "zone-b-access")
    tb.run(until=tb.sim.now + 1.0)
    measure("moved to B, after handover")
    return table


# --------------------------------------------------------------------------
# E4 — hierarchical edge escape path
# --------------------------------------------------------------------------


def e4_hierarchical_escape() -> Table:
    """§IV-A2's hierarchy exploited by the scheduler.

    Three tiers: the client's access edge (cold, nothing cached), an
    aggregation edge on the route to the cloud (images cached), a regional
    edge (nothing), plus the cloud origin. Tight latency budget, nothing
    running anywhere.

    * flat proximity: no ready instance exists → the first request goes all
      the way to the **cloud** while the access edge pulls + deploys;
    * hierarchical: the first request is served by the **aggregation edge**
      after a pull-free cold start — traffic stays at the edge (the paper's
      locality/bandwidth argument), trading a little first-request latency.
    """
    table = Table(
        title="E4 — Flat proximity vs. hierarchical scheduling "
              "(cold access edge, cached aggregation edge)",
        columns=["scheduler", "first_request_s", "first_served_by",
                 "edge_local", "later_request_s", "later_served_by"],
        time_columns={"first_request_s", "later_request_s"},
        note="tight 50 ms budget; nothing running anywhere at t0",
    )
    cells = [Cell(fn=e4_hierarchy_cell, seed=73,
                  kwargs=dict(flavour=flavour, seed=73))
             for flavour in ("proximity", "hierarchical")]
    for row in run_cells(cells):
        table.add(**row)
    return table


def e4_hierarchy_cell(flavour: str, seed: int = 73) -> Dict[str, object]:
    """One scheduler flavour over the three-tier hierarchy testbed."""
    from repro.core.hierarchy import EdgeHierarchy, HierarchicalScheduler
    from repro.core.scheduler import ProximityScheduler
    from repro.experiments.topologies import add_docker_cluster

    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       cloud_rtt_s=0.030,
                       switch_idle_timeout_s=3.0, memory_idle_timeout_s=6.0)
    access = tb.clusters["docker-egs"]  # zone "edge", rtt 1 ms
    aggregation = add_docker_cluster(tb, "docker-agg", zone="aggregation",
                                     link_latency_s=0.0025,
                                     access_rtt_s=0.005)
    regional = add_docker_cluster(tb, "docker-regional", zone="regional",
                                  link_latency_s=0.006,
                                  access_rtt_s=0.012)
    hierarchy = EdgeHierarchy({access.name: aggregation.name,
                               aggregation.name: regional.name,
                               regional.name: None})
    if flavour == "hierarchical":
        tb.dispatcher.scheduler = HierarchicalScheduler(tb.zones, hierarchy)
    else:
        tb.dispatcher.scheduler = ProximityScheduler(tb.zones)
    svc = tb.register_catalog_service("nginx", max_initial_delay_s=0.05,
                                      with_cloud_origin=True)
    pre = aggregation.pull(svc.spec)  # only the aggregation tier caches
    tb.run(until=tb.sim.now + 60.0)
    assert pre.done and pre.exception is None

    first = _request(tb, svc, window_s=2.0)
    first_served = tb.memory.peek(tb.clients[0].ip, svc.service_id)
    first_by = first_served.cluster.name if first_served else "cloud"
    # wait out flows+memory, then see where steady-state requests land
    tb.run(until=tb.sim.now + 30.0)
    later = _request(tb, svc, window_s=5.0)
    later_served = tb.memory.peek(tb.clients[0].ip, svc.service_id)
    later_by = later_served.cluster.name if later_served else "cloud"
    return {"scheduler": flavour,
            "first_request_s": first.time_total,
            "first_served_by": first_by,
            "edge_local": first_by != "cloud",
            "later_request_s": later.time_total,
            "later_served_by": later_by}


# --------------------------------------------------------------------------
# E5 — Kubernetes autoscaling under load
# --------------------------------------------------------------------------


def e5_autoscaling_under_load(
    load_rps: float = 8.0,
    duration_s: float = 90.0,
    request_cpu_s: float = 0.18,
) -> Table:
    """The Discussion's K8s selling point, quantified: "Kubernetes provides
    us with automated management and scaling of container instances."

    A CPU-heavy (ResNet-class) service takes sustained load beyond one
    instance's capacity (~5.5 rps at 180 ms/request). Without the HPA the
    single pod's queue grows without bound; with it, replicas scale out and
    latency stays near the service time.
    """
    table = Table(
        title="E5 — K8s horizontal autoscaling under sustained overload",
        columns=["autoscaler", "median_s", "p95_s", "max_s",
                 "peak_replicas", "scale_events"],
        time_columns={"median_s", "p95_s", "max_s"},
        note=f"{load_rps:.0f} rps of {request_cpu_s * 1e3:.0f} ms-CPU requests "
             f"for {duration_s:.0f}s; 1 pod handles ~{1 / request_cpu_s:.1f} rps",
    )
    cells = [Cell(fn=e5_autoscaling_cell, seed=79,
                  kwargs=dict(use_hpa=use_hpa, load_rps=load_rps,
                              duration_s=duration_s, seed=79))
             for use_hpa in (False, True)]
    for row in run_cells(cells):
        table.add(**row)
    return table


def e5_autoscaling_cell(use_hpa: bool, load_rps: float = 8.0,
                        duration_s: float = 90.0,
                        seed: int = 79) -> Dict[str, object]:
    """One autoscaler arm of E5 under the sustained-overload workload."""
    from repro.edge.kubernetes import HorizontalPodAutoscaler
    from repro.edge.services import catalog_behavior

    tb = build_testbed(seed=seed, n_clients=16, cluster_types=("kubernetes",),
                       memory_idle_timeout_s=3600.0,
                       switch_idle_timeout_s=3600.0)
    svc = tb.register_catalog_service("resnet")
    cluster = tb.clusters["k8s-egs"]
    warm = tb.engine.ensure_available(cluster, svc)
    tb.run(until=tb.sim.now + 120.0)
    assert warm.done and warm.exception is None
    hpa = None
    if use_hpa:
        hpa = HorizontalPodAutoscaler(
            cluster.k8s, svc.name, target_rps_per_pod=3.0,
            min_replicas=1, max_replicas=6, sync_period_s=5.0)

    behavior = catalog_behavior("resnet")
    requests = []
    gap = 1.0 / load_rps
    n_requests = int(duration_s * load_rps)

    def issue(index):
        client = tb.client(index % len(tb.timed_clients))
        requests.append(client.fetch_service(
            svc.service_id.addr, svc.service_id.port, behavior))

    for index in range(n_requests):
        tb.sim.schedule(index * gap, issue, index)
    tb.run(until=tb.sim.now + duration_s + 120.0)
    timings = [r.result for r in requests if r.done]
    assert len(timings) == n_requests
    ok = [t.time_total for t in timings if t.ok]
    assert len(ok) == n_requests
    stats = summarize(ok)
    peak = 1
    if hpa is not None and hpa.scale_events:
        peak = max(to for _, _, to in hpa.scale_events)
    row: Dict[str, object] = {
        "autoscaler": "on" if use_hpa else "off",
        "median_s": stats.median, "p95_s": stats.p95, "max_s": stats.maximum,
        "peak_replicas": peak,
        "scale_events": len(hpa.scale_events) if hpa else 0,
    }
    if hpa:
        hpa.stop()
    return row


# --------------------------------------------------------------------------
# E3 — proactive deployment
# --------------------------------------------------------------------------


def e3_proactive_deployment(period_s: float = 45.0, cycles: int = 8) -> Table:
    """Periodic requests with a period exceeding the idle scale-down
    timeout: reactively, every request after the first finds the instance
    scaled down and waits for a cold start; the EWMA predictor re-deploys
    just in time instead."""
    table = Table(
        title="E3 — Proactive vs. reactive deployment (periodic workload, "
              "aggressive scale-to-zero)",
        columns=["mode", "median_s", "p95_s", "cold_requests", "predeployments"],
        time_columns={"median_s", "p95_s"},
        note=f"request period {period_s:.0f}s > 30s idle scale-down",
    )
    cells = [Cell(fn=e3_proactive_cell, seed=71,
                  kwargs=dict(proactive=proactive, period_s=period_s,
                              cycles=cycles, seed=71))
             for proactive in (False, True)]
    for row in run_cells(cells):
        table.add(**row)
    return table


def e3_proactive_cell(proactive: bool, period_s: float = 45.0,
                      cycles: int = 8, seed: int = 71) -> Dict[str, object]:
    """One arm (reactive or proactive) of E3's periodic workload."""
    tb = build_testbed(seed=seed, n_clients=1, cluster_types=("docker",),
                       memory_idle_timeout_s=30.0, auto_scale_down=True)
    deployer = tb.attach_predeployer(lead_time_s=2.0) if proactive else None
    svc = tb.register_catalog_service("nginx")
    tb.clusters["docker-egs"].pull(svc.spec)
    tb.run(until=tb.sim.now + 60.0)

    samples: List[float] = []
    cold = 0
    for _cycle in range(cycles):
        request = tb.client(0).fetch(svc.service_id.addr, svc.service_id.port)
        tb.run(until=tb.sim.now + 20.0)
        assert request.done and request.result.ok
        samples.append(request.result.time_total)
        if request.result.time_total > 0.2:
            cold += 1
        # advance to the next period boundary
        tb.run(until=tb.sim.now + period_s - 20.0)
    stats = summarize(samples)
    return {"mode": "proactive" if proactive else "reactive",
            "median_s": stats.median, "p95_s": stats.p95,
            "cold_requests": cold,
            "predeployments": deployer.stats.predeployed if deployer else 0}
