"""Multi-switch fabric testbed (fig. 1/2's general case).

Topology::

    clients ── access-sw-0 ──┐
                             ├── core-sw ── EGS (docker [, k8s]) / cloud
    clients ── access-sw-1 ──┘

Each switch has its own control channel to the one controller; the fabric
topology is configured statically (what LLDP would discover). Redirection
flows span the whole path: rewrite at the client's ingress access switch,
plain 5-tuple forwarding at the core, endpoint MAC rewrite at the egress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import (
    AttachmentPoint,
    ControllerConfig,
    DeploymentEngine,
    Dispatcher,
    FlowMemory,
    ProximityScheduler,
    ServiceRegistry,
    TransparentEdgeController,
    ZoneMap,
)
from repro.core.annotate import AnnotationConfig
from repro.core.fabric import FabricTopology
from repro.edge import Containerd, DockerCluster, DockerEngine, Registry, RegistryHub
from repro.edge.cluster import KubernetesEdgeCluster
from repro.edge.kubernetes import KubernetesCluster
from repro.edge.registry import DOCKER_HUB_TIMING, GCR_TIMING, PRIVATE_LAN_TIMING
from repro.edge.services import all_catalog_images
from repro.experiments.topologies import VGW_IP, VGW_MAC, Testbed
from repro.netsim import Network
from repro.netsim.host import Host
from repro.openflow import ControlChannel, OpenFlowSwitch
from repro.ryuapp import AppManager
from repro.simcore import TraceLog
from repro.workloads.clients import TimedHTTPClient

CORE_DPID = 100


def build_multiswitch_testbed(
    seed: int = 0,
    n_access_switches: int = 2,
    clients_per_switch: int = 3,
    cluster_types: Tuple[str, ...] = ("docker",),
    client_latency_s: float = 0.00015,
    interswitch_latency_s: float = 0.0005,
    control_latency_s: float = 0.0002,
    switch_idle_timeout_s: float = 10.0,
    memory_idle_timeout_s: float = 60.0,
    trace: Optional[TraceLog] = None,
) -> Testbed:
    """Build the access/core fabric; returns the same :class:`Testbed`
    surface as :func:`build_testbed` (``tb.switch`` is the core switch)."""
    net = Network(seed=seed, trace=trace)
    sim = net.sim

    # ---- switches + fabric ---------------------------------------------
    fabric = FabricTopology()
    core = OpenFlowSwitch(sim, "core-sw", dpid=CORE_DPID)
    net.add_device(core)
    fabric.add_switch(CORE_DPID)
    access_switches: List[OpenFlowSwitch] = []
    core_port = 0
    for index in range(n_access_switches):
        dpid = index + 1
        switch = OpenFlowSwitch(sim, f"access-sw-{index}", dpid=dpid)
        net.add_device(switch)
        fabric.add_switch(dpid)
        access_switches.append(switch)
    #: uplink port on each access switch (after its client ports)
    uplink_port = clients_per_switch + 1
    for switch in access_switches:
        core_port += 1
        net.connect(switch, uplink_port, core, core_port,
                    latency_s=interswitch_latency_s, bandwidth_bps=10e9)
        fabric.add_link(switch.dpid, uplink_port, CORE_DPID, core_port,
                        weight=interswitch_latency_s)

    # ---- registries -------------------------------------------------------
    docker_hub = Registry("docker-hub", DOCKER_HUB_TIMING)
    gcr = Registry("gcr.io", GCR_TIMING)
    private = Registry("private-lan", PRIVATE_LAN_TIMING)
    for image in all_catalog_images():
        (gcr if image.ref.registry == "gcr.io" else docker_hub).push(image)
        private.push(image)
    hub = RegistryHub(docker_hub)
    hub.add("gcr.io", gcr)

    # ---- clients ------------------------------------------------------------
    zones = ZoneMap(default_rtt_s=0.050)
    clients: List[Host] = []
    for index, switch in enumerate(access_switches):
        zone = f"access-{index}"
        zones.set_rtt(zone, "edge", 0.001 + index * 0.0005)
        for port in range(1, clients_per_switch + 1):
            client = net.add_host(f"ue-{index}-{port - 1:02d}",
                                  gateway=VGW_IP, prefix_len=32)
            net.connect(client, 0, switch, port,
                        latency_s=client_latency_s, bandwidth_bps=1e9)
            zones.assign_client(client.ip, zone)
            clients.append(client)

    # ---- EGS + clusters on the core switch -----------------------------------
    clusters: Dict[str, object] = {}
    cluster_attachments: Dict[str, AttachmentPoint] = {}
    egs = net.add_host("egs", gateway=VGW_IP, prefix_len=32)
    core_port += 1
    net.connect(egs, 0, core, core_port, latency_s=0.0001, bandwidth_bps=10e9)
    egs_attachment = AttachmentPoint(dpid=CORE_DPID, port_no=core_port,
                                     mac=egs.mac, ip=egs.ip)
    runtime = Containerd(sim, egs, hub)
    for cluster_type in cluster_types:
        if cluster_type == "docker":
            cluster = DockerCluster(sim, "docker-egs",
                                    DockerEngine(sim, runtime), zone="edge")
        elif cluster_type == "kubernetes":
            k8s = KubernetesCluster(sim)
            k8s.add_node(runtime)
            cluster = KubernetesEdgeCluster(sim, "k8s-egs", k8s, egs, runtime,
                                            zone="edge")
        else:
            raise ValueError(f"unsupported cluster type {cluster_type!r}")
        cluster.probe_rtt_s = 2 * control_latency_s
        clusters[cluster.name] = cluster
        cluster_attachments[cluster.name] = egs_attachment

    # ---- control plane --------------------------------------------------------
    registry = ServiceRegistry(AnnotationConfig())
    engine = DeploymentEngine(sim)
    memory = FlowMemory(sim, idle_timeout_s=memory_idle_timeout_s)
    dispatcher = Dispatcher(sim, list(clusters.values()),
                            ProximityScheduler(zones), engine, memory,
                            zones=zones)
    manager = AppManager(sim, service_time_s=0.0002)
    controller = manager.register(
        TransparentEdgeController,
        registry=registry, dispatcher=dispatcher, memory=memory,
        config=ControllerConfig(vgw_ip=VGW_IP, vgw_mac=VGW_MAC,
                                switch_idle_timeout_s=switch_idle_timeout_s,
                                fabric=fabric),
        cluster_attachments=cluster_attachments)
    for switch in [core] + access_switches:
        manager.connect_switch(switch, ControlChannel(sim, latency_s=control_latency_s))

    testbed = Testbed(
        net=net, switch=core, manager=manager, controller=controller,
        registry=registry, dispatcher=dispatcher, engine=engine, memory=memory,
        zones=zones, hub=hub, private_registry=private, clusters=clusters,
        egs=egs, clients=clients,
        timed_clients=[TimedHTTPClient(c) for c in clients],
        cloud_hosts={},
    )
    testbed.access_switches = access_switches  # type: ignore[attr-defined]
    testbed.fabric = fabric  # type: ignore[attr-defined]
    net.run(until=0.01)
    return testbed
