"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments                # everything (quick repeats)
    python -m repro.experiments --part b       # only Table I + figs. 9-16
    python -m repro.experiments --part a       # only A1-A4
    python -m repro.experiments --part ablations
    python -m repro.experiments --part ext     # future-work extensions
    python -m repro.experiments --full         # paper-faithful 42 repeats
    python -m repro.experiments --out results.txt
    python -m repro.experiments --jobs 4       # fan cells over 4 workers
    python -m repro.experiments --domains 4    # 4 domain workers (A7)
    python -m repro.experiments --only A7      # one artifact by name
    python -m repro.experiments --no-cache     # always re-simulate
    python -m repro.experiments --profile      # cProfile per artifact → .pstats

Parallelism never changes the numbers: cells are independently seeded and
merged in seed order, so ``--jobs N`` output is byte-identical to serial,
and domain-sharded scenarios merge deterministically, so ``--domains N``
output is byte-identical to ``--domains 1`` (see docs/sharding.md).
The on-disk cache (``--cache-dir``, default ``.repro-cache``) is keyed by a
fingerprint of the ``repro`` source tree, so any code edit invalidates it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, List, Optional, Tuple

from repro.experiments import ablations, churn, extensions, parta, partb, robustness
from repro.experiments import domains as domains_exp
from repro.experiments.cache import DEFAULT_CACHE_DIR, ArtifactCache
from repro.experiments.pool import pooled
from repro.simcore.domains import domain_workers
from repro.metrics import ArtifactTiming, RunReport, Series, Table, perf, render_series, render_table


def _render(artifact) -> str:
    if isinstance(artifact, Table):
        return render_table(artifact)
    if isinstance(artifact, Series):
        return render_series(artifact)
    return str(artifact)


def artifact_registry(full: bool) -> List[Tuple[str, str, Callable]]:
    """(part, name, driver) for every regenerable artifact.

    Raises ``ValueError`` if two artifacts would silently share a CSV file
    name (``_csv_name`` is lossy, so this is checked at build time).
    """
    repeats = 42 if full else 7
    entries: List[Tuple[str, str, Callable]] = [
        ("b", "Table I", partb.table1_catalog),
        ("b", "Fig. 9", partb.fig9_request_distribution),
        ("b", "Fig. 10 (trace)", partb.fig10_deployment_distribution),
        ("b", "Fig. 10 (measured)", partb.fig10_measured_deployments),
        ("b", "Fig. 11", lambda: partb.fig11_scale_up(repeats=repeats)),
        ("b", "Fig. 12", lambda: partb.fig12_create_scale_up(repeats=repeats)),
        ("b", "Fig. 13", partb.fig13_pull_times),
        ("b", "Fig. 14", lambda: partb.fig14_wait_after_scale_up(repeats=repeats)),
        ("b", "Fig. 15", lambda: partb.fig15_wait_after_create_scale_up(repeats=repeats)),
        ("b", "Fig. 16", partb.fig16_running_instance),
        ("a", "A1", parta.a1_edge_vs_cloud),
        ("a", "A2", parta.a2_first_packet_overhead),
        ("a", "A2b", parta.a2b_control_latency_sweep),
        ("a", "A3", parta.a3_controller_scaling),
        ("a", "A3b", parta.a3_service_count_scaling),
        ("a", "A4", parta.a4_flowtable_occupancy),
        ("a", "A5", parta.a5_multiswitch_overhead),
        ("a", "A6", parta.a6_scale),
        ("a", "A7", domains_exp.a7_sharded_domains),
        ("ablations", "FlowMemory", ablations.ablation_flow_memory),
        ("ablations", "Waiting modes", ablations.ablation_waiting_modes),
        ("ablations", "Hybrid Docker→K8s", ablations.ablation_hybrid_docker_then_k8s),
        ("ablations", "Schedulers", ablations.ablation_schedulers),
        ("ablations", "Registry/cache", ablations.ablation_registry_cache),
        ("ext", "E1 serverless", extensions.e1_serverless_vs_containers),
        ("ext", "E1b artifact sizes", extensions.e1_artifact_sizes),
        ("ext", "E2 follow-me", extensions.e2_follow_me_handover),
        ("ext", "E3 proactive", extensions.e3_proactive_deployment),
        ("ext", "E4 hierarchy", extensions.e4_hierarchical_escape),
        ("ext", "E5 autoscaling", extensions.e5_autoscaling_under_load),
        ("churn", "C1 registry churn", churn.c1_registry_churn),
        ("robustness", "R1 availability", robustness.r1_availability_vs_pull_failures),
        ("robustness", "R2 breaker", robustness.r2_breaker_outage_ablation),
        ("robustness", "R3 crash chaos", robustness.r3_controller_crash_chaos),
        ("robustness", "R4 mixed chaos", robustness.r4_mixed_chaos_sweep),
    ]
    _check_csv_collisions(entries)
    return entries


def _check_csv_collisions(entries: List[Tuple[str, str, Callable]]) -> None:
    seen: dict = {}
    for part, name, _ in entries:
        csv = _csv_name(f"{part}_{name}")
        if csv in seen:
            other_part, other_name = seen[csv]
            raise ValueError(
                f"artifact CSV name collision: ({other_part!r}, {other_name!r}) "
                f"and ({part!r}, {name!r}) both map to {csv!r}")
        seen[csv] = (part, name)


def _csv_name(name: str) -> str:
    out = "".join(ch.lower() if ch.isalnum() else "_" for ch in name)
    while "__" in out:
        out = out.replace("__", "_")
    return out.strip("_") + ".csv"


def _csv_payload(artifact) -> str:
    from repro.metrics import series_to_csv, table_to_csv

    if isinstance(artifact, Table):
        return table_to_csv(artifact)
    if isinstance(artifact, Series):
        return series_to_csv(artifact)
    return str(artifact)  # pragma: no cover - future artifact kinds


def run(parts: Optional[List[str]] = None, full: bool = False,
        out=None, csv_dir: Optional[str] = None,
        jobs: int = 1, cache_dir: Optional[str] = None,
        profile: bool = False, domains: int = 1,
        only: Optional[List[str]] = None) -> int:
    """Regenerate the selected artifacts; returns the number regenerated.

    With ``csv_dir``, every Table/Series is also written as raw CSV for
    downstream plotting. ``jobs > 1`` fans each driver's cells over that
    many worker processes (output stays byte-identical to serial).
    ``domains > 1`` runs domain-sharded scenarios (A7) over that many
    lockstep worker processes — also byte-identical to serial.
    ``only`` restricts to artifacts by exact name (e.g. ``["A7"]``).
    ``cache_dir`` enables the content-addressed result cache there.
    ``profile`` wraps each regenerated (non-cached) artifact in cProfile
    and dumps ``<artifact>.pstats`` next to its CSV (or into the current
    directory without ``csv_dir``); cells executed by pool workers are
    outside the parent profile, so profile with ``jobs=1``.
    """
    import cProfile
    import os

    stream = out if out is not None else sys.stdout
    if csv_dir is not None:
        os.makedirs(csv_dir, exist_ok=True)
    repeats = 42 if full else 7
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    report = RunReport(jobs=max(1, int(jobs)), cache_enabled=cache is not None)
    profiles: List[str] = []
    count = 0
    with pooled(jobs) as pool, domain_workers(domains):
        for part, name, driver in artifact_registry(full):
            if parts and part not in parts:
                continue
            if only and name not in only:
                continue
            # Real wall/CPU time of regenerating the artifact (reporting
            # only; never feeds back into any simulation).
            started = time.perf_counter()  # repro: noqa[REP001] host-side timing
            cpu_started = time.process_time()  # repro: noqa[REP001] host-side timing
            cells_before = pool.cells_run
            worker_cpu_before = pool.worker_cpu_s
            worker_perf_before = pool.worker_perf
            perf_before = perf.snapshot()
            cached = cache.load(part, name, repeats) if cache is not None else None
            if cached is not None:
                rendered = cached["render"]
                payload = cached["csv"]
            else:
                if profile:
                    profiler = cProfile.Profile()
                    artifact = profiler.runcall(driver)
                    pstats_path = os.path.join(
                        csv_dir if csv_dir is not None else ".",
                        _csv_name(f"{part}_{name}")[:-len(".csv")] + ".pstats")
                    profiler.dump_stats(pstats_path)
                    profiles.append(pstats_path)
                else:
                    artifact = driver()
                rendered = _render(artifact)
                payload = _csv_payload(artifact)
                if cache is not None:
                    cache.store(part, name, repeats, render=rendered, csv=payload)
            elapsed = time.perf_counter() - started  # repro: noqa[REP001] host-side timing
            cpu_s = (time.process_time() - cpu_started  # repro: noqa[REP001] host-side timing
                     + pool.worker_cpu_s - worker_cpu_before)
            if cached is not None:
                header = f"\n### [{part}] {name}  (cache hit)\n"
            else:
                header = f"\n### [{part}] {name}  (regenerated in {elapsed:.1f}s wall)\n"
            print(header, file=stream)
            print(rendered, file=stream)
            if csv_dir is not None:
                path = os.path.join(csv_dir, _csv_name(f"{part}_{name}"))
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
            report.add(ArtifactTiming(
                part=part, name=name, wall_s=elapsed, cpu_s=cpu_s,
                cells=pool.cells_run - cells_before,
                cache_hit=cached is not None,
                perf=perf.delta(perf_before) + (pool.worker_perf - worker_perf_before)))
            count += 1
    if cache is not None:
        report.cache_stores = cache.stores
    if count:
        print(f"\n{report.render()}", file=stream)
    if profiles:
        print(f"\nprofiles ({len(profiles)}, inspect with "
              f"`python -m pstats <path>`):", file=stream)
        for path in profiles:
            print(f"  {path}", file=stream)
    return count


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("--part",
                        choices=["a", "b", "ablations", "ext", "churn",
                                 "robustness"],
                        action="append", dest="parts",
                        help="restrict to one part (repeatable)")
    parser.add_argument("--full", action="store_true",
                        help="paper-faithful 42 repeats per cell (slower)")
    parser.add_argument("--out", type=str, default=None,
                        help="write to a file instead of stdout")
    parser.add_argument("--csv-dir", type=str, default=None,
                        help="also dump every artifact as raw CSV here")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan experiment cells over N worker processes "
                             "(output is byte-identical to serial)")
    parser.add_argument("--domains", type=int, default=1, metavar="N",
                        help="run domain-sharded scenarios (A7) over N "
                             "lockstep worker processes (output is "
                             "byte-identical to serial)")
    parser.add_argument("--only", type=str, action="append", metavar="NAME",
                        help="restrict to artifacts by exact name, e.g. "
                             "--only A7 (repeatable)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and don't populate the result cache")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each regenerated artifact and dump "
                             "<artifact>.pstats next to its CSV (implies "
                             "--no-cache so there is work to profile; use "
                             "with --jobs 1 to capture cell work)")
    parser.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                        help="result cache location (default: %(default)s)")
    args = parser.parse_args(argv)
    cache_dir = None if (args.no_cache or args.profile) else args.cache_dir
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            count = run(args.parts, args.full, out=handle, csv_dir=args.csv_dir,
                        jobs=args.jobs, cache_dir=cache_dir,
                        profile=args.profile, domains=args.domains,
                        only=args.only)
        print(f"wrote {count} artifacts to {args.out}")
    else:
        count = run(args.parts, args.full, csv_dir=args.csv_dir,
                    jobs=args.jobs, cache_dir=cache_dir, profile=args.profile,
                    domains=args.domains, only=args.only)
    return 0 if count else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
